"""repro -- reproduction of "Symmetry Breaking in the Plane: Rendezvous by
Robots with Unknown Attributes" (Czyzowicz, Gąsieniec, Killick, Kranakis,
PODC 2019).

The package is organised as:

* :mod:`repro.geometry`   -- planar geometry substrate (vectors, frames,
  the attribute transforms of Lemmas 4-5);
* :mod:`repro.motion`     -- exact piecewise-analytic trajectories;
* :mod:`repro.robots`     -- hidden attributes and the canonical robot pair;
* :mod:`repro.algorithms` -- the paper's Algorithms 1-7 plus baselines;
* :mod:`repro.simulation` -- the continuous-time event-driven simulator;
* :mod:`repro.core`       -- feasibility, closed-form bounds, schedules and
  the engine-level ``solve_search`` / ``solve_rendezvous`` entry points;
* :mod:`repro.api`        -- the unified facade: serializable problem
  specs, pluggable solver backends (analytic / simulation / auto) and
  batched execution -- the recommended front door;
* :mod:`repro.analysis`, :mod:`repro.workloads`, :mod:`repro.viz`,
  :mod:`repro.experiments` -- the evaluation harness reproducing every
  theorem, lemma and figure of the paper.

Quickstart::

    from repro.api import RendezvousProblem, solve

    spec = RendezvousProblem(distance=2.2, visibility=0.25, speed=1.5)
    result = solve(spec)
    print(result.summary())
    print(result.to_json(indent=2))

The pre-facade entry points (``solve_search`` / ``solve_rendezvous`` on
rich instances) remain available as thin compatibility shims; see
``CHANGES.md`` for the deprecation policy.
"""

from ._version import __version__
from .api import (
    BatchRunner,
    GatheringMember,
    GatheringProblem,
    ProblemSpec,
    RendezvousProblem,
    SearchProblem,
    SolveResult,
    solve,
    solve_batch,
    spec_from_dict,
    spec_from_json,
)
from .algorithms import (
    MobilityAlgorithm,
    SearchAll,
    SearchAllRev,
    SearchAnnulus,
    SearchCircle,
    SearchRound,
    UniversalSearch,
    WaitAndSearchRendezvous,
    create_algorithm,
)
from .core import (
    FeasibilityVerdict,
    RendezvousReport,
    SearchReport,
    is_feasible,
    rendezvous_time_bound,
    solve_rendezvous,
    solve_search,
    theorem1_search_bound as search_time_bound,
)
from .errors import (
    HorizonExceededError,
    InfeasibleConfigurationError,
    InvalidParameterError,
    ReproError,
    SimulationError,
    TrajectoryError,
)
from .geometry import Vec2
from .robots import REFERENCE_ATTRIBUTES, Robot, RobotAttributes, RobotPair, make_pair
from .simulation import (
    RendezvousInstance,
    SearchInstance,
    SimulationOutcome,
    simulate_rendezvous,
    simulate_search,
)

__all__ = [
    "__version__",
    "BatchRunner",
    "GatheringMember",
    "GatheringProblem",
    "ProblemSpec",
    "RendezvousProblem",
    "SearchProblem",
    "SolveResult",
    "solve",
    "solve_batch",
    "spec_from_dict",
    "spec_from_json",
    "MobilityAlgorithm",
    "SearchAll",
    "SearchAllRev",
    "SearchAnnulus",
    "SearchCircle",
    "SearchRound",
    "UniversalSearch",
    "WaitAndSearchRendezvous",
    "create_algorithm",
    "FeasibilityVerdict",
    "RendezvousReport",
    "SearchReport",
    "is_feasible",
    "rendezvous_time_bound",
    "search_time_bound",
    "solve_rendezvous",
    "solve_search",
    "HorizonExceededError",
    "InfeasibleConfigurationError",
    "InvalidParameterError",
    "ReproError",
    "SimulationError",
    "TrajectoryError",
    "Vec2",
    "REFERENCE_ATTRIBUTES",
    "Robot",
    "RobotAttributes",
    "RobotPair",
    "make_pair",
    "RendezvousInstance",
    "SearchInstance",
    "SimulationOutcome",
    "simulate_rendezvous",
    "simulate_search",
]
