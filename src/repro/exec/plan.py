"""Planning: turn ``(specs, backend)`` into a declarative execution plan.

The :class:`Planner` performs every *decision* the old monolithic
``BatchRunner.run`` made inline -- deduplication, the LRU tier, the
persistent-store tier, the kernel-batchable group, pool eligibility --
and records the outcome as an :class:`ExecutionPlan`: five disjoint
tiers plus the reassembly key sequence.  Planning resolves the cheap
tiers (LRU, store) eagerly, so a plan already *contains* those results;
the remaining tiers name work an :mod:`~repro.exec.executors` strategy
still has to perform.

Planning is synchronous and touches shared runner state (the LRU order,
store-hit insertion), so callers that share a runner across threads must
plan under the runner's lock; execution of the resulting plan is free of
shared mutable state and can proceed concurrently.

This module must stay importable before ``repro.api`` finishes its own
import (``api.batch`` is rebuilt on top of it), so runtime imports from
``repro.api`` are deferred into the functions that need them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - type-only, avoids the import cycle
    from ..api.result import SolveResult
    from ..api.spec import ProblemSpec

#: The cache/store key of one unique request: ``(backend name, spec hash)``.
Key = tuple[str, str]


@dataclass(frozen=True, slots=True)
class PlannedSpec:
    """One unique spec an executor still has to solve."""

    key: Key
    spec: "ProblemSpec"

    @property
    def spec_hash(self) -> str:
        return self.key[1]


@dataclass(frozen=True, slots=True)
class ResolvedSpec:
    """One unique spec the planner already answered (LRU or store tier)."""

    key: Key
    result: "SolveResult"


@dataclass(frozen=True, slots=True)
class ExecutionPlan:
    """A declarative recipe for solving one batch.

    The five tiers partition the batch's *unique* keys exactly:

    * ``cached`` -- answered by the runner's in-memory LRU;
    * ``stored`` -- answered by the persistent result store;
    * ``batch``  -- the kernel-batchable group (one array-at-a-time
      backend call solves all of them);
    * ``pooled`` -- misses eligible for multiprocessing fan-out
      (non-empty only when ``use_pool``);
    * ``serial`` -- the leftovers, solved one spec at a time.

    ``keys`` holds the per-input-spec key sequence (duplicates included),
    which is all a caller needs to reassemble completion-ordered results
    into input order -- see ``BatchRunner.run``.
    """

    backend: str
    keys: tuple[Key, ...]
    cached: tuple[ResolvedSpec, ...]
    stored: tuple[ResolvedSpec, ...]
    batch: tuple[PlannedSpec, ...]
    pooled: tuple[PlannedSpec, ...]
    serial: tuple[PlannedSpec, ...]
    processes: int = 1
    chunksize: int = 1
    use_pool: bool = False

    @property
    def total(self) -> int:
        """Number of input specs (duplicates included)."""
        return len(self.keys)

    @property
    def unique(self) -> int:
        """Number of unique keys (the tiers partition exactly this many)."""
        return (
            len(self.cached)
            + len(self.stored)
            + len(self.batch)
            + len(self.pooled)
            + len(self.serial)
        )

    @property
    def pending(self) -> int:
        """Unique keys an executor still has to solve."""
        return len(self.batch) + len(self.pooled) + len(self.serial)

    def describe(self) -> str:
        """One-line tier summary for logs and debugging."""
        pool_text = (
            f"pool[{len(self.pooled)}]x{self.processes}/cs{self.chunksize}"
            if self.use_pool
            else "no pool"
        )
        return (
            f"plan[{self.backend}]: {self.total} specs, {self.unique} unique = "
            f"{len(self.cached)} cached + {len(self.stored)} stored + "
            f"{len(self.batch)} batch + {len(self.pooled)} pooled + "
            f"{len(self.serial)} serial ({pool_text})"
        )


@dataclass(slots=True)
class Planner:
    """Builds :class:`ExecutionPlan` objects from spec iterables.

    Args:
        cache_get: LRU lookup, ``key -> SolveResult | None`` (None
            disables the cache tier).  Looked-up hits count as the
            ``cached`` tier.
        store: persistent tier with a ``get_many(backend, hashes)``
            method (None disables the store tier).
        processes: requested pool size (``None``/1 plans no pool tier).
        chunksize: requested pool chunk size (None derives the default).
        pool_safe: predicate deciding whether a backend name resolves
            identically in a fresh worker process; a backend that does
            not is never planned onto the pool tier.
    """

    cache_get: Optional[Callable[[Key], Optional["SolveResult"]]] = None
    store: Optional[Any] = None
    processes: Optional[int] = None
    chunksize: Optional[int] = None
    pool_safe: Optional[Callable[[str], bool]] = None

    def plan(
        self,
        specs: Sequence["ProblemSpec"],
        backend: str,
        backend_obj: Optional[Any] = None,
    ) -> ExecutionPlan:
        """Plan one batch: dedupe, resolve cheap tiers, tier the misses.

        ``backend_obj`` is the instantiated backend (created when omitted);
        passing it lets the caller reuse one instance for planning *and*
        execution.
        """
        if backend_obj is None:
            from ..api.backends import create_backend

            backend_obj = create_backend(backend)

        keys: list[Key] = []
        seen: set[Key] = set()
        cached: list[ResolvedSpec] = []
        lru_misses: list[PlannedSpec] = []
        for spec in specs:
            key = (backend, spec.canonical_hash())
            keys.append(key)
            if key in seen:
                continue
            seen.add(key)
            hit = self.cache_get(key) if self.cache_get is not None else None
            if hit is not None:
                cached.append(ResolvedSpec(key, hit))
            else:
                lru_misses.append(PlannedSpec(key, spec))

        # The store tier answers LRU misses in one batched read (one file
        # open per segment) before anything is solved.
        stored: list[ResolvedSpec] = []
        misses = lru_misses
        if self.store is not None and lru_misses:
            stored_map = self.store.get_many(
                backend, [planned.spec_hash for planned in lru_misses]
            )
            misses = []
            for planned in lru_misses:
                hit = stored_map.get(planned.spec_hash)
                if hit is not None:
                    stored.append(ResolvedSpec(planned.key, hit))
                else:
                    misses.append(planned)

        # A backend exposing ``solve_specs`` solves homogeneous groups
        # array-at-a-time (vectorized kernel, auto routing).  Only the
        # group the backend reports as batchable skips the pool; the
        # remaining misses still fan out when a pool was requested, so a
        # mixed workload gets the kernel *and* the requested parallelism.
        batch: list[PlannedSpec] = []
        rest = misses
        if hasattr(backend_obj, "solve_specs") and len(misses) > 1:
            if hasattr(backend_obj, "batchable_indices"):
                indices = set(
                    backend_obj.batchable_indices([planned.spec for planned in misses])
                )
            else:
                # A custom batch backend with no batchability report
                # takes the whole miss list.
                indices = set(range(len(misses)))
            if len(indices) >= 2:
                batch = [planned for i, planned in enumerate(misses) if i in indices]
                rest = [planned for i, planned in enumerate(misses) if i not in indices]

        processes = self.processes or 1
        safe = self.pool_safe(backend) if self.pool_safe is not None else False
        use_pool = processes > 1 and len(rest) > 1 and safe
        chunksize = self.chunksize or max(1, len(rest) // (4 * processes) or 1)

        return ExecutionPlan(
            backend=backend,
            keys=tuple(keys),
            cached=tuple(cached),
            stored=tuple(stored),
            batch=tuple(batch),
            pooled=tuple(rest) if use_pool else (),
            serial=() if use_pool else tuple(rest),
            processes=processes if use_pool else 1,
            chunksize=chunksize if use_pool else 1,
            use_pool=use_pool,
        )


@dataclass(frozen=True, slots=True)
class PlanPartition:
    """One shard's slice of a partitioned sweep.

    ``specs`` and ``hashes`` are parallel: ``hashes[i]`` is the canonical
    hash of ``specs[i]``.  Partitions of one sweep are disjoint by spec
    hash (the coordinator dedupes before assigning), so per-shard results
    union without cross-shard dedup.
    """

    node: Any
    specs: tuple["ProblemSpec", ...]
    hashes: tuple[str, ...]


def partition_specs(
    specs: Sequence["ProblemSpec"],
    backend: str,
    assign: Callable[[str], Any],
) -> tuple[list[PlanPartition], int, int]:
    """Dedupe a suite by ``(backend, spec hash)`` and group it by shard.

    ``assign`` maps a canonical spec hash to a shard identity (for the
    cluster: ``ring.lookup(shard_key(backend, spec_hash))``), so a
    distributed sweep lands each spec on the same worker a routed
    ``solve`` would pick -- warm LRU/store tiers stay warm.

    Returns ``(partitions, total, unique)`` with partitions ordered by
    shard identity; ``total`` counts input specs (duplicates included),
    ``unique`` is the number of deduplicated specs across all partitions.
    """
    total = 0
    seen: set[Key] = set()
    buckets: dict[Any, tuple[list["ProblemSpec"], list[str]]] = {}
    for spec in specs:
        total += 1
        spec_hash = spec.canonical_hash()
        key = (backend, spec_hash)
        if key in seen:
            continue
        seen.add(key)
        bucket = buckets.setdefault(assign(spec_hash), ([], []))
        bucket[0].append(spec)
        bucket[1].append(spec_hash)
    partitions = [
        PlanPartition(node=node, specs=tuple(group), hashes=tuple(hashes))
        for node, (group, hashes) in sorted(buckets.items(), key=lambda item: str(item[0]))
    ]
    return partitions, total, len(seen)


@dataclass(frozen=True, slots=True)
class SpecFailure:
    """One spec that failed to solve, identified by its hash.

    ``exception`` carries the original exception object when the spec
    failed in this process (serial / batch / threaded tiers); a pool
    worker ships only the type name and message across the process
    boundary, so there it stays None.
    """

    key: Key
    spec_hash: str
    error_type: str
    message: str
    exception: Optional[BaseException] = field(default=None, compare=False)

    def describe(self) -> str:
        return f"{self.key[0]}:{self.spec_hash[:12]}: {self.error_type}: {self.message}"


@dataclass(frozen=True, slots=True)
class Completion:
    """One unique key finishing, emitted in completion order.

    Exactly one of ``result`` / ``failure`` is set.  ``latency`` is the
    time from execution start to this completion's emission (serving
    latency, not backend wall time -- the latter lives in the result's
    provenance); planner-resolved tiers (``cache`` / ``store``) report
    ~0.
    """

    key: Key
    source: str  # "cache" | "store" | "batch" | "pool" | "serial"
    result: Optional["SolveResult"] = None
    failure: Optional[SpecFailure] = None
    latency: float = 0.0

    @property
    def ok(self) -> bool:
        return self.failure is None
