"""``repro.exec`` -- the planner/executor split behind the batch facade.

Architecture
------------

Solving a batch used to be one ~120-line method interleaving decisions
and work.  It is now an explicit two-stage pipeline::

    specs --Planner--> ExecutionPlan --Executor--> stream of Completions

**Stage 1 -- planning** (:mod:`repro.exec.plan`).  A :class:`Planner`
deduplicates the input, resolves the cheap tiers eagerly (the runner's
LRU, the persistent :class:`~repro.api.store.ResultStore`) and tiers
the remaining misses: the kernel-batchable group (what the backend's
``batchable_indices`` reports), the pool-eligible group (only when a
pool was requested *and* the backend resolves identically in a fresh
worker process), and the serial leftovers.  The outcome is a frozen
:class:`ExecutionPlan` -- five disjoint tiers partitioning the unique
keys, plus the per-input key sequence needed to reassemble input order.
Planning is the only stage that touches shared runner state, so a
thread-safe runner plans under its lock and executes outside it.

**Stage 2 -- execution** (:mod:`repro.exec.executors`).  An
:class:`Executor` strategy consumes a plan and emits
:class:`Completion` objects **in completion order**, each carrying the
key, the tier it was answered from (``cache`` / ``store`` / ``batch`` /
``pool`` / ``serial``), the per-result latency, and either a
:class:`~repro.api.result.SolveResult` or a :class:`SpecFailure` --
failures never abort the stream, so everything that solved is still
delivered (and cached/flushed) when one spec blows up.  Strategies:
:class:`SerialExecutor` (in-process, one kernel call for the batch
tier), :class:`PoolExecutor` (multiprocessing fan-out streaming back
unordered, kernel batch running concurrently in-process) and
:class:`ThreadedExecutor` (thread fan-out; works with
runtime-registered backends that cannot cross a process boundary).

How ``run()`` is reconstructed from ``run_iter()``
--------------------------------------------------

``BatchRunner.run_iter`` *is* the pipeline: plan, then yield the
executor's completion stream (recording fresh results into the LRU and
store as they pass).  ``BatchRunner.run`` is a thin collect-and-reorder
wrapper over the same stream: it drains ``run_iter``, counts each
completion's ``source`` into the :class:`~repro.api.batch.BatchStats`
partition (``cache_hits`` / ``solved_from_store`` / ``solved_in_batch``
/ ``solved_in_pool``), then maps the completed results back through
``plan.keys`` -- the per-input key sequence -- to restore input order
and duplicate multiplicity.  Nothing about the observable contract
changed: byte-identical result fingerprints, the same stats partition,
the same return shape.  The streaming form is what the serving tier
(:mod:`repro.service`) and progress reporting build on.
"""

from .executors import Executor, PoolExecutor, SerialExecutor, ThreadedExecutor
from .plan import (
    Completion,
    ExecutionPlan,
    Key,
    PlannedSpec,
    Planner,
    PlanPartition,
    ResolvedSpec,
    SpecFailure,
    partition_specs,
)

__all__ = [
    "Completion",
    "ExecutionPlan",
    "Executor",
    "Key",
    "PlannedSpec",
    "Planner",
    "PlanPartition",
    "PoolExecutor",
    "ResolvedSpec",
    "SerialExecutor",
    "SpecFailure",
    "ThreadedExecutor",
    "partition_specs",
]
