"""Executor strategies: consume an :class:`~repro.exec.plan.ExecutionPlan`.

An executor turns a plan into a stream of
:class:`~repro.exec.plan.Completion` objects, emitted **in completion
order** -- the caller decides whether to stream them onward
(``BatchRunner.run_iter``, service progress) or collect and reorder
(``BatchRunner.run``).  All three strategies emit the planner-resolved
tiers (``cache`` / ``store``) first and immediately, then work through
the pending tiers:

* :class:`SerialExecutor`   -- everything in this process, one kernel
  call for the batch tier, one ``solve`` per remaining spec;
* :class:`PoolExecutor`     -- dispatches the pooled tier onto a
  ``multiprocessing`` pool *first* (unordered, streaming back as workers
  finish), runs the kernel batch and serial leftovers concurrently with
  it in this process;
* :class:`ThreadedExecutor` -- fans every pending spec (and the kernel
  batch as one task) over an in-process thread pool; genuinely useful
  when solves release the GIL or when runtime-registered backends rule
  the process pool out.

Failures never abort the stream: a spec that raises becomes a
``Completion`` carrying a :class:`~repro.exec.plan.SpecFailure` (spec
hash, error type, message) and every other spec still completes.

Like :mod:`repro.exec.plan`, runtime imports from ``repro.api`` are
deferred so this module is importable while ``repro.api`` is still
mid-import.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional, Sequence

from .plan import Completion, ExecutionPlan, PlannedSpec, SpecFailure

if TYPE_CHECKING:  # pragma: no cover - type-only
    from ..api.result import SolveResult

__all__ = [
    "Executor",
    "SerialExecutor",
    "PoolExecutor",
    "ThreadedExecutor",
]


def _solve_serialized_indexed(
    payload: tuple[int, str, dict[str, Any]]
) -> tuple[int, dict[str, Any]]:
    """Pool worker: solve one spec shipped as its wire-format dict.

    Never raises: an exception becomes an ``{"ok": False, ...}`` outcome,
    so one failing spec cannot abort the whole ``imap`` stream (the
    satellite fix for the all-or-nothing pool batch).
    """
    index, backend_name, spec_dict = payload
    try:
        from ..api.backends import solve
        from ..api.spec import spec_from_dict

        spec = spec_from_dict(spec_dict)
        result = solve(spec, backend=backend_name)
        return index, {"ok": True, "result": result.to_dict()}
    except Exception as error:  # noqa: BLE001 - shipped back, re-raised batch-side
        return index, {
            "ok": False,
            "error_type": type(error).__name__,
            "message": str(error),
        }


def _failure(planned: PlannedSpec, error: BaseException) -> SpecFailure:
    return SpecFailure(
        key=planned.key,
        spec_hash=planned.spec_hash,
        error_type=type(error).__name__,
        message=str(error),
        exception=error,
    )


def _resolved_completions(
    plan: ExecutionPlan, clock: Callable[[], float]
) -> Iterator[Completion]:
    """The planner-resolved tiers, emitted first and effectively instantly."""
    for resolved in plan.cached:
        yield Completion(key=resolved.key, source="cache", result=resolved.result, latency=clock())
    for resolved in plan.stored:
        yield Completion(key=resolved.key, source="store", result=resolved.result, latency=clock())


def _solve_group(
    plan: ExecutionPlan,
    backend_obj: Any,
    clock: Callable[[], float],
) -> Iterator[Completion]:
    """Solve the kernel-batchable tier with one array-at-a-time call."""
    if not plan.batch:
        return
    group = [planned.spec for planned in plan.batch]
    try:
        results: Sequence["SolveResult"] = backend_obj.solve_specs(group)
        if len(results) != len(group):  # pragma: no cover - backend contract breach
            raise RuntimeError(
                f"batch backend returned {len(results)} results for {len(group)} specs"
            )
    except Exception as error:  # noqa: BLE001 - every group member fails, stream survives
        for planned in plan.batch:
            yield Completion(
                key=planned.key, source="batch", failure=_failure(planned, error), latency=clock()
            )
        return
    for planned, result in zip(plan.batch, results):
        yield Completion(key=planned.key, source="batch", result=result, latency=clock())


def _solve_one(
    planned: PlannedSpec,
    backend_obj: Any,
    source: str,
    clock: Callable[[], float],
) -> Completion:
    try:
        result = backend_obj.solve(planned.spec)
    except Exception as error:  # noqa: BLE001 - captured per spec
        return Completion(
            key=planned.key, source=source, failure=_failure(planned, error), latency=clock()
        )
    return Completion(key=planned.key, source=source, result=result, latency=clock())


def _make_backend(name: str) -> Any:
    from ..api.backends import create_backend

    return create_backend(name)


class Executor:
    """Base strategy: ``execute(plan)`` yields completions as they happen."""

    def execute(
        self, plan: ExecutionPlan, backend_obj: Optional[Any] = None
    ) -> Iterator[Completion]:
        """Yield one :class:`Completion` per unique pending/resolved key."""
        raise NotImplementedError


class SerialExecutor(Executor):
    """Everything in this process, one spec (or kernel group) at a time.

    A plan's ``pooled`` tier (normally empty without a pool) is treated
    like ``serial``, so a serial strategy can execute any plan.
    """

    def execute(
        self, plan: ExecutionPlan, backend_obj: Optional[Any] = None
    ) -> Iterator[Completion]:
        start = time.perf_counter()
        clock = lambda: time.perf_counter() - start  # noqa: E731
        if backend_obj is None:
            backend_obj = _make_backend(plan.backend)
        yield from _resolved_completions(plan, clock)
        yield from _solve_group(plan, backend_obj, clock)
        for planned in plan.pooled:
            yield _solve_one(planned, backend_obj, "pool", clock)
        for planned in plan.serial:
            yield _solve_one(planned, backend_obj, "serial", clock)


class PoolExecutor(Executor):
    """Multiprocessing fan-out for the pooled tier, kernel batch alongside.

    The pool is dispatched *before* the in-process kernel batch so the
    two run concurrently; pooled completions stream back unordered as
    workers finish (``imap_unordered``), each one independently ok or
    failed.
    """

    def execute(
        self, plan: ExecutionPlan, backend_obj: Optional[Any] = None
    ) -> Iterator[Completion]:
        start = time.perf_counter()
        clock = lambda: time.perf_counter() - start  # noqa: E731
        if backend_obj is None:
            backend_obj = _make_backend(plan.backend)
        yield from _resolved_completions(plan, clock)
        if not plan.pooled:
            yield from _solve_group(plan, backend_obj, clock)
            for planned in plan.serial:
                yield _solve_one(planned, backend_obj, "serial", clock)
            return

        import multiprocessing

        from ..api.result import SolveResult
        from ..simulation import arena as _arena

        payloads = [
            (index, plan.backend, planned.spec.to_dict())
            for index, planned in enumerate(plan.pooled)
        ]
        # Share one compiled-trajectory arena with the pool workers so a
        # chunk compiled by any of them (or by this process) is mapped
        # zero-copy by the rest instead of recompiled per process.  On
        # arena failure the workers simply run with private caches.
        shared = _arena.ensure_process_arena()
        initializer = _arena.attach_in_worker if shared is not None else None
        initargs = (shared.name,) if shared is not None else ()
        pool = multiprocessing.Pool(plan.processes, initializer=initializer, initargs=initargs)
        drained = False
        try:
            pending = pool.imap_unordered(
                _solve_serialized_indexed, payloads, chunksize=plan.chunksize
            )
            yield from _solve_group(plan, backend_obj, clock)
            for planned in plan.serial:
                yield _solve_one(planned, backend_obj, "serial", clock)
            for index, outcome in pending:
                planned = plan.pooled[index]
                if outcome["ok"]:
                    yield Completion(
                        key=planned.key,
                        source="pool",
                        result=SolveResult.from_dict(outcome["result"]),
                        latency=clock(),
                    )
                else:
                    yield Completion(
                        key=planned.key,
                        source="pool",
                        failure=SpecFailure(
                            key=planned.key,
                            spec_hash=planned.spec_hash,
                            error_type=outcome["error_type"],
                            message=outcome["message"],
                        ),
                        latency=clock(),
                    )
            drained = True
        finally:
            if drained:
                pool.close()
            else:  # consumer abandoned the stream: don't wait on workers
                pool.terminate()
            pool.join()


class ThreadedExecutor(Executor):
    """In-process thread fan-out for every pending tier.

    Each pending spec is one task (the kernel batch is one task for the
    whole group); completions are yielded genuinely as tasks finish.
    Threads share the process, so runtime-registered backends work here
    -- the trade-off is the GIL for pure-python solves.
    """

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers!r}")
        self.max_workers = max_workers

    def execute(
        self, plan: ExecutionPlan, backend_obj: Optional[Any] = None
    ) -> Iterator[Completion]:
        from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait

        start = time.perf_counter()
        clock = lambda: time.perf_counter() - start  # noqa: E731
        if backend_obj is None:
            backend_obj = _make_backend(plan.backend)
        yield from _resolved_completions(plan, clock)

        def group_task() -> list[Completion]:
            # Each task builds its own backend: instances are cheap and
            # not guaranteed thread-safe.
            return list(_solve_group(plan, _make_backend(plan.backend), clock))

        def one_task(planned: PlannedSpec, source: str) -> list[Completion]:
            return [_solve_one(planned, _make_backend(plan.backend), source, clock)]

        with ThreadPoolExecutor(max_workers=self.max_workers) as threads:
            futures = set()
            if plan.batch:
                futures.add(threads.submit(group_task))
            for planned in plan.pooled:
                futures.add(threads.submit(one_task, planned, "pool"))
            for planned in plan.serial:
                futures.add(threads.submit(one_task, planned, "serial"))
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    yield from future.result()
