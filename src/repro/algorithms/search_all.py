"""Algorithms 5 and 6 of the paper: ``SearchAll(n)`` and ``SearchAllRev(n)``.

``SearchAll(n)`` performs ``Search(1), ..., Search(n)`` (a truncated
Algorithm 4); ``SearchAllRev(n)`` performs the same rounds in reverse
order ``Search(n), ..., Search(1)``.  Both take exactly the same total
time ``S(n) = 12(pi+1) n 2^n``.  Algorithm 7 runs them back to back in
its active phases; running the rounds both forward and backward is what
guarantees that a long-enough overlap with the other robot's inactive
phase contains a *complete* run of the first ``k`` rounds, regardless of
where inside the active phase the overlap falls.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import InvalidParameterError
from ..motion import MotionSegment
from .base import FiniteMobilityAlgorithm
from .search_round import emit_search_round

__all__ = ["SearchAll", "SearchAllRev"]


def _check_n(n: int) -> None:
    if not isinstance(n, int) or n < 1:
        raise InvalidParameterError(f"n must be a positive integer, got {n!r}")


class SearchAll(FiniteMobilityAlgorithm):
    """Algorithm 5: ``Search(k)`` for ``k = 1 .. n``."""

    name = "search-all"

    def __init__(self, n: int) -> None:
        _check_n(n)
        self.n = n

    def segments(self) -> Iterator[MotionSegment]:
        for k in range(1, self.n + 1):
            yield from emit_search_round(k)

    def describe(self) -> str:
        return f"SearchAll(n={self.n})"


class SearchAllRev(FiniteMobilityAlgorithm):
    """Algorithm 6: ``Search(k)`` for ``k = n .. 1``."""

    name = "search-all-rev"

    def __init__(self, n: int) -> None:
        _check_n(n)
        self.n = n

    def segments(self) -> Iterator[MotionSegment]:
        for k in range(self.n, 0, -1):
            yield from emit_search_round(k)

    def describe(self) -> str:
        return f"SearchAllRev(n={self.n})"
