"""Algorithm 4 of the paper: the universal search algorithm.

Algorithm 4 simply performs ``Search(1)``, ``Search(2)``, ``Search(3)``,
... forever.  Theorem 1 shows that a robot running it finds a static
target at distance ``d`` with visibility ``r`` in time less than
``6(pi+1) log(d^2/r) d^2/r``; Theorem 2 shows that the *same* algorithm,
run by both robots, solves rendezvous whenever the robots' clocks agree
and the configuration is feasible.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ..errors import InvalidParameterError
from ..motion import MotionSegment
from .base import FiniteMobilityAlgorithm, MobilityAlgorithm
from .search_round import emit_search_round

__all__ = ["UniversalSearch", "TruncatedUniversalSearch"]


class UniversalSearch(MobilityAlgorithm):
    """Algorithm 4: run ``Search(k)`` for ``k = 1, 2, 3, ...`` forever."""

    name = "universal-search"

    def __init__(self, first_round: int = 1) -> None:
        if not isinstance(first_round, int) or first_round < 1:
            raise InvalidParameterError(
                f"the first round must be a positive integer, got {first_round!r}"
            )
        self.first_round = first_round

    def segments(self) -> Iterator[MotionSegment]:
        for k in itertools.count(self.first_round):
            yield from emit_search_round(k)

    def describe(self) -> str:
        return f"UniversalSearch(first_round={self.first_round})"


class TruncatedUniversalSearch(FiniteMobilityAlgorithm):
    """Algorithm 4 stopped after a fixed number of rounds.

    Useful for materialising finite prefixes in tests and for the timing
    experiments that check Lemma 2's closed form for "the first k rounds
    of Algorithm 4".
    """

    name = "universal-search-truncated"

    def __init__(self, rounds: int) -> None:
        if not isinstance(rounds, int) or rounds < 1:
            raise InvalidParameterError(
                f"the number of rounds must be a positive integer, got {rounds!r}"
            )
        self.rounds = rounds

    def segments(self) -> Iterator[MotionSegment]:
        for k in range(1, self.rounds + 1):
            yield from emit_search_round(k)

    def describe(self) -> str:
        return f"UniversalSearch truncated to {self.rounds} round(s)"
