"""The paper's mobility algorithms (Algorithms 1-7) and baseline searchers."""

from .base import FiniteMobilityAlgorithm, MobilityAlgorithm
from .baselines import ConcentricCoverageSearch, DiagonalHedgingSearch, ExpandingSquareSearch
from .primitives import (
    SearchAnnulus,
    SearchCircle,
    annulus_circle_radii,
    emit_search_annulus,
    emit_search_circle,
)
from .registry import algorithm_names, create_algorithm, register_algorithm
from .search_all import SearchAll, SearchAllRev
from .search_round import (
    SearchRound,
    annulus_granularity,
    annulus_inner_radius,
    annulus_outer_radius,
    emit_search_round,
    terminal_wait_duration,
)
from .universal_search import TruncatedUniversalSearch, UniversalSearch
from .wait_search import TruncatedWaitAndSearch, WaitAndSearchRendezvous, search_all_duration

__all__ = [
    "FiniteMobilityAlgorithm",
    "MobilityAlgorithm",
    "ConcentricCoverageSearch",
    "DiagonalHedgingSearch",
    "ExpandingSquareSearch",
    "SearchAnnulus",
    "SearchCircle",
    "annulus_circle_radii",
    "emit_search_annulus",
    "emit_search_circle",
    "algorithm_names",
    "create_algorithm",
    "register_algorithm",
    "SearchAll",
    "SearchAllRev",
    "SearchRound",
    "annulus_granularity",
    "annulus_inner_radius",
    "annulus_outer_radius",
    "emit_search_round",
    "terminal_wait_duration",
    "TruncatedUniversalSearch",
    "UniversalSearch",
    "TruncatedWaitAndSearch",
    "WaitAndSearchRendezvous",
    "search_all_duration",
]
