"""Algorithm 7 of the paper: rendezvous with asymmetric clocks.

Algorithm 7 proceeds in rounds ``n = 1, 2, 3, ...``.  Round ``n`` is:

1. **Inactive phase** -- wait at the initial position for ``2 S(n)`` local
   time units, where ``S(n) = 12(pi+1) n 2^n`` is the duration of
   ``SearchAll(n)``.
2. **Active phase** -- perform ``SearchAll(n)`` followed by
   ``SearchAllRev(n)`` (total ``2 S(n)``).

Each round therefore lasts ``4 S(n)`` local time units.  Because the two
robots measure these equal-looking phases with *different* clocks
(``tau != 1``), the phases drift relative to each other and eventually the
active phase of one robot overlaps the inactive phase of the other long
enough for a complete search to succeed against a stationary partner
(Lemmas 9-13, Theorem 3).  The paper shows the same algorithm also wins
when only the speeds or only the orientation differ, which makes it the
*universal* rendezvous algorithm of Theorem 4.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ..constants import SEARCH_ALL_FACTOR
from ..errors import InvalidParameterError
from ..geometry import ORIGIN
from ..motion import MotionSegment, WaitMotion
from .base import FiniteMobilityAlgorithm, MobilityAlgorithm
from .search_round import emit_search_round

__all__ = ["search_all_duration", "WaitAndSearchRendezvous", "TruncatedWaitAndSearch"]


def search_all_duration(n: int) -> float:
    """Duration ``S(n) = 12(pi+1) n 2^n`` of ``SearchAll(n)`` (equation (1))."""
    if not isinstance(n, int) or n < 1:
        raise InvalidParameterError(f"n must be a positive integer, got {n!r}")
    return SEARCH_ALL_FACTOR * n * 2.0**n


def _emit_round(n: int) -> Iterator[MotionSegment]:
    """Yield the segments of round ``n`` of Algorithm 7."""
    yield WaitMotion(ORIGIN, 2.0 * search_all_duration(n))
    for k in range(1, n + 1):
        yield from emit_search_round(k)
    for k in range(n, 0, -1):
        yield from emit_search_round(k)


class WaitAndSearchRendezvous(MobilityAlgorithm):
    """Algorithm 7: the universal wait-and-search rendezvous algorithm."""

    name = "wait-and-search"

    def __init__(self, first_round: int = 1) -> None:
        if not isinstance(first_round, int) or first_round < 1:
            raise InvalidParameterError(
                f"the first round must be a positive integer, got {first_round!r}"
            )
        self.first_round = first_round

    def segments(self) -> Iterator[MotionSegment]:
        for n in itertools.count(self.first_round):
            yield from _emit_round(n)

    def describe(self) -> str:
        return f"WaitAndSearchRendezvous(first_round={self.first_round})"


class TruncatedWaitAndSearch(FiniteMobilityAlgorithm):
    """Algorithm 7 stopped after a fixed number of rounds.

    Used by the schedule experiments (E07, F01, F02), which need the exact
    finite trajectory of the first rounds to compare against Lemma 8's
    closed forms ``I(n)`` and ``A(n)``.
    """

    name = "wait-and-search-truncated"

    def __init__(self, rounds: int) -> None:
        if not isinstance(rounds, int) or rounds < 1:
            raise InvalidParameterError(
                f"the number of rounds must be a positive integer, got {rounds!r}"
            )
        self.rounds = rounds

    def segments(self) -> Iterator[MotionSegment]:
        for n in range(1, self.rounds + 1):
            yield from _emit_round(n)

    def describe(self) -> str:
        return f"WaitAndSearch truncated to {self.rounds} round(s)"
