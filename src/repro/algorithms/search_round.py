"""Algorithm 3 of the paper: one round ``Search(k)``.

``Search(k)`` searches ``2k`` successive annuli.  The ``j``-th annulus
(``j = 0 .. 2k-1``) has inner radius ``2^{-k+j}`` and outer radius
``2^{-k+j+1}``, and is searched with granularity ``rho_{j,k} =
2^{-3k+2j-1}``.  The specific choice makes the ratio ``delta_{j,k}^2 /
rho_{j,k} = 2^{k+1}`` independent of ``j``, which is what drives the
Theorem 1 bound.  The round ends with a calibrated wait of
``3(pi+1)(2^k + 2^{-k})`` local time units whose only purpose is to round
the total duration of the round to ``3(pi+1)(k+1) 2^{k+1}`` (Lemma 2).
"""

from __future__ import annotations

from typing import Iterator

from ..constants import SEARCH_ROUND_FACTOR
from ..errors import InvalidParameterError
from ..geometry import ORIGIN
from ..motion import MotionSegment, WaitMotion
from .base import FiniteMobilityAlgorithm
from .primitives import emit_search_annulus

__all__ = [
    "annulus_inner_radius",
    "annulus_outer_radius",
    "annulus_granularity",
    "terminal_wait_duration",
    "emit_search_round",
    "SearchRound",
]


def _check_round(k: int) -> None:
    if not isinstance(k, int) or k < 1:
        raise InvalidParameterError(f"the round index k must be a positive integer, got {k!r}")


def _check_subround(k: int, j: int) -> None:
    _check_round(k)
    if not isinstance(j, int) or j < 0 or j > 2 * k - 1:
        raise InvalidParameterError(
            f"the sub-round index j must satisfy 0 <= j <= 2k-1 = {2 * k - 1}, got {j!r}"
        )


def annulus_inner_radius(k: int, j: int) -> float:
    """Inner radius ``delta_{j,k} = 2^{-k+j}`` of sub-round ``j`` of round ``k``."""
    _check_subround(k, j)
    return 2.0 ** (-k + j)


def annulus_outer_radius(k: int, j: int) -> float:
    """Outer radius ``delta_{j,k+1} = 2^{-k+j+1}`` of sub-round ``j`` of round ``k``."""
    _check_subround(k, j)
    return 2.0 ** (-k + j + 1)


def annulus_granularity(k: int, j: int) -> float:
    """Granularity ``rho_{j,k} = 2^{-3k+2j-1}`` of sub-round ``j`` of round ``k``."""
    _check_subround(k, j)
    return 2.0 ** (-3 * k + 2 * j - 1)


def terminal_wait_duration(k: int) -> float:
    """Duration ``3(pi+1)(2^k + 2^{-k})`` of the wait ending ``Search(k)``."""
    _check_round(k)
    return SEARCH_ROUND_FACTOR * (2.0**k + 2.0 ** (-k))


def emit_search_round(k: int) -> Iterator[MotionSegment]:
    """Yield the segments of ``Search(k)`` (Algorithm 3)."""
    _check_round(k)
    for j in range(2 * k):
        yield from emit_search_annulus(
            annulus_inner_radius(k, j),
            annulus_outer_radius(k, j),
            annulus_granularity(k, j),
        )
    yield WaitMotion(ORIGIN, terminal_wait_duration(k))


class SearchRound(FiniteMobilityAlgorithm):
    """Algorithm 3 as a standalone mobility algorithm."""

    name = "search-round"

    def __init__(self, k: int) -> None:
        _check_round(k)
        self.k = k

    def segments(self) -> Iterator[MotionSegment]:
        return emit_search_round(self.k)

    def sub_rounds(self) -> list[tuple[float, float, float]]:
        """The ``(inner, outer, granularity)`` triples of the round."""
        return [
            (
                annulus_inner_radius(self.k, j),
                annulus_outer_radius(self.k, j),
                annulus_granularity(self.k, j),
            )
            for j in range(2 * self.k)
        ]

    def describe(self) -> str:
        return f"Search(k={self.k})"
