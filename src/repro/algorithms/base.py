"""The mobility-algorithm interface.

A *mobility algorithm* in the paper is a single deterministic trajectory
``S(t)`` that every robot executes in its own reference frame.  Here an
algorithm is an object producing a stream of local-frame motion segments;
the stream may be infinite (Algorithms 4 and 7 never stop on their own --
the simulation stops them when the rendezvous/search event fires).

Two structural rules keep the implementation faithful to the model:

* algorithms receive **no attribute information** -- their constructor
  parameters are only the integers/reals the paper's pseudocode takes;
* algorithms work in **local units**: the robot moves at local speed 1 and
  measures local time, and the frame transform (applied elsewhere) is what
  creates the asymmetry between the two robots.
"""

from __future__ import annotations

import abc
from typing import Iterator

from ..motion import MotionSegment, Trajectory

__all__ = ["MobilityAlgorithm", "FiniteMobilityAlgorithm"]


class MobilityAlgorithm(abc.ABC):
    """Base class for all mobility algorithms."""

    #: Short identifier used by the registry, the CLI and reports.
    name: str = "algorithm"

    @abc.abstractmethod
    def segments(self) -> Iterator[MotionSegment]:
        """Yield the local-frame motion segments of the algorithm, in order.

        Implementations must start at the local origin and may be infinite.
        Each call returns a *fresh* iterator (algorithms are reusable).
        """

    @property
    def is_finite(self) -> bool:
        """True when the segment stream is guaranteed to terminate."""
        return False

    def describe(self) -> str:
        """Human-readable description (overridden by parameterised algorithms)."""
        return self.name


class FiniteMobilityAlgorithm(MobilityAlgorithm):
    """A mobility algorithm with a finite segment stream."""

    @property
    def is_finite(self) -> bool:
        return True

    def local_trajectory(self) -> Trajectory:
        """Materialise the whole local-frame trajectory.

        Only meaningful for finite algorithms; used heavily by the timing
        tests that compare trajectory durations against Lemma 2's closed
        forms.
        """
        return Trajectory(list(self.segments()))

    def duration(self) -> float:
        """Total local duration of the algorithm."""
        return self.local_trajectory().duration

    def path_length(self) -> float:
        """Total local path length of the algorithm."""
        return self.local_trajectory().path_length()
