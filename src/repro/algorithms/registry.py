"""Name-based registry of mobility algorithms.

The CLI and the experiment configuration files refer to algorithms by
name; this registry maps those names to factories.  Factories receive
keyword arguments parsed from the command line / experiment config.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..errors import InvalidParameterError
from .base import MobilityAlgorithm
from .baselines import ConcentricCoverageSearch, DiagonalHedgingSearch, ExpandingSquareSearch
from .primitives import SearchAnnulus, SearchCircle
from .search_all import SearchAll, SearchAllRev
from .search_round import SearchRound
from .universal_search import TruncatedUniversalSearch, UniversalSearch
from .wait_search import TruncatedWaitAndSearch, WaitAndSearchRendezvous

__all__ = ["algorithm_names", "create_algorithm", "register_algorithm"]

AlgorithmFactory = Callable[..., MobilityAlgorithm]

_REGISTRY: Dict[str, AlgorithmFactory] = {
    "search-circle": SearchCircle,
    "search-annulus": SearchAnnulus,
    "search-round": SearchRound,
    "universal-search": UniversalSearch,
    "universal-search-truncated": TruncatedUniversalSearch,
    "search-all": SearchAll,
    "search-all-rev": SearchAllRev,
    "wait-and-search": WaitAndSearchRendezvous,
    "wait-and-search-truncated": TruncatedWaitAndSearch,
    "concentric-coverage": ConcentricCoverageSearch,
    "expanding-square": ExpandingSquareSearch,
    "diagonal-hedging": DiagonalHedgingSearch,
}


def algorithm_names() -> list[str]:
    """Sorted list of registered algorithm names."""
    return sorted(_REGISTRY)


def register_algorithm(name: str, factory: AlgorithmFactory) -> None:
    """Register (or replace) a factory under ``name``."""
    if not name:
        raise InvalidParameterError("algorithm name must be non-empty")
    _REGISTRY[name] = factory


def create_algorithm(name: str, **parameters: object) -> MobilityAlgorithm:
    """Instantiate the algorithm registered under ``name``.

    Raises:
        InvalidParameterError: when the name is unknown or the parameters
            do not match the factory's signature.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError as error:
        raise InvalidParameterError(
            f"unknown algorithm {name!r}; available: {', '.join(algorithm_names())}"
        ) from error
    try:
        return factory(**parameters)
    except TypeError as error:
        raise InvalidParameterError(
            f"invalid parameters {parameters!r} for algorithm {name!r}: {error}"
        ) from error
