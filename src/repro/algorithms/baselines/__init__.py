"""Baseline search algorithms used as comparators in experiment E10."""

from .concentric import ConcentricCoverageSearch
from .diagonal import DiagonalHedgingSearch
from .expanding_square import ExpandingSquareSearch

__all__ = [
    "ConcentricCoverageSearch",
    "DiagonalHedgingSearch",
    "ExpandingSquareSearch",
]
