"""Clairvoyant concentric-circle search baseline.

This baseline *knows the visibility radius* ``r`` (something the paper's
model forbids) and traces concentric circles spaced ``2 r`` apart:
radii ``r, 3r, 5r, ...``.  Every point of the plane at distance at most
``(2i+1) r`` from the origin is within ``r`` of one of the first ``i+1``
circles, so the baseline is correct, and its search time is
``Theta(d^2 / r)`` -- a ``log`` factor better than the universal
Algorithm 4.  Comparing the two in experiment E10 quantifies the price of
not knowing ``r``.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ...errors import InvalidParameterError
from ...motion import MotionSegment
from ..base import MobilityAlgorithm
from ..primitives import emit_search_circle

__all__ = ["ConcentricCoverageSearch"]


class ConcentricCoverageSearch(MobilityAlgorithm):
    """Concentric circles spaced ``2 * visibility`` apart, forever."""

    name = "concentric-coverage"

    def __init__(self, visibility: float) -> None:
        if visibility <= 0.0:
            raise InvalidParameterError(f"visibility must be positive, got {visibility!r}")
        self.visibility = float(visibility)

    def circle_radius(self, index: int) -> float:
        """Radius of the ``index``-th circle (0-based): ``(2 index + 1) r``."""
        if index < 0:
            raise InvalidParameterError(f"index must be non-negative, got {index!r}")
        return (2 * index + 1) * self.visibility

    def segments(self) -> Iterator[MotionSegment]:
        for index in itertools.count():
            yield from emit_search_circle(self.circle_radius(index))

    def describe(self) -> str:
        return f"ConcentricCoverageSearch(visibility={self.visibility:.6g})"
