"""Clairvoyant expanding-square (square lawnmower) search baseline.

The robot traces concentric axis-aligned squares whose half-sides grow by
``spacing`` each ring, connected by short radial moves along the +x axis.
Every point within Chebyshev distance ``k * spacing`` of the origin is
within Euclidean distance ``spacing`` of one of the first ``k`` rings, so
with ``spacing = visibility`` the baseline is a correct searcher that, like
the concentric-circle baseline, needs to know the visibility radius.

It exists to give E10 a second "folk" comparator with a different constant
(square rings are ``8/(2*pi) ~ 1.27`` times longer than circles of the same
reach) so the benchmark can show that Algorithm 4's advantage is about the
*log factor and universality*, not about beating one specific curve.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ...errors import InvalidParameterError
from ...geometry import ORIGIN, Vec2
from ...motion import MotionSegment, TrajectoryBuilder
from ..base import MobilityAlgorithm

__all__ = ["ExpandingSquareSearch"]


class ExpandingSquareSearch(MobilityAlgorithm):
    """Concentric square rings spaced ``spacing`` apart, forever."""

    name = "expanding-square"

    def __init__(self, spacing: float) -> None:
        if spacing <= 0.0:
            raise InvalidParameterError(f"spacing must be positive, got {spacing!r}")
        self.spacing = float(spacing)

    def ring_half_side(self, index: int) -> float:
        """Half side length of the ``index``-th ring (0-based)."""
        if index < 0:
            raise InvalidParameterError(f"index must be non-negative, got {index!r}")
        return (index + 1) * self.spacing

    def _emit_ring(self, half_side: float) -> Iterator[MotionSegment]:
        builder = TrajectoryBuilder(ORIGIN)
        builder.move_to(Vec2(half_side, 0.0))
        corners = [
            Vec2(half_side, half_side),
            Vec2(-half_side, half_side),
            Vec2(-half_side, -half_side),
            Vec2(half_side, -half_side),
            Vec2(half_side, 0.0),
        ]
        for corner in corners:
            builder.move_to(corner)
        builder.move_to(ORIGIN)
        yield from builder.drain()

    def segments(self) -> Iterator[MotionSegment]:
        for index in itertools.count():
            yield from self._emit_ring(self.ring_half_side(index))

    def describe(self) -> str:
        return f"ExpandingSquareSearch(spacing={self.spacing:.6g})"
