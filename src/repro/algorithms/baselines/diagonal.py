"""A universal (non-clairvoyant) diagonal-enumeration search baseline.

Like Algorithm 4, this baseline knows neither ``d`` nor ``r``.  It hedges
over both by enumerating guesses along diagonals: in phase ``m`` it tries
every guess ``d <= 2^i`` with granularity ``2^{i-m}`` for ``i = 0 .. m``,
sweeping the disc of radius ``2^i`` with concentric circles spaced
``2^{i-m+1}`` apart.  The guess ``(i, m)`` with ``2^i >= d`` and
``2^{i-m} <= r`` succeeds, so the baseline is correct for every ``(d, r)``.

Its time, however, is a full phase sum ``sum_i 2^{2i - (i-m)} = O(4^m)``
per phase instead of Algorithm 4's carefully balanced annuli, which makes
it polynomially slower in ``d^2/r``  (the balanced per-annulus granularity
is exactly the design choice E11 ablates).
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ...motion import MotionSegment
from ..base import MobilityAlgorithm
from ..primitives import emit_search_annulus

__all__ = ["DiagonalHedgingSearch"]


class DiagonalHedgingSearch(MobilityAlgorithm):
    """Diagonal enumeration over (distance, granularity) guesses."""

    name = "diagonal-hedging"

    def segments(self) -> Iterator[MotionSegment]:
        for phase in itertools.count(1):
            for i in range(phase + 1):
                outer = 2.0**i
                granularity = 2.0 ** (i - phase)
                yield from emit_search_annulus(0.0, outer, granularity)

    def describe(self) -> str:
        return "DiagonalHedgingSearch()"
