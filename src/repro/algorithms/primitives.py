"""Algorithms 1 and 2 of the paper: ``SearchCircle`` and ``SearchAnnulus``.

``SearchCircle(delta)`` (Algorithm 1)
    Move along the +x axis from the origin to radial position ``delta``,
    traverse the circle of radius ``delta`` centred at the origin once, and
    move back to the origin.  At local speed 1 this takes ``2(pi+1) delta``
    local time units (Lemma 2).

``SearchAnnulus(delta1, delta2, rho)`` (Algorithm 2)
    Call ``SearchCircle(delta1 + 2 i rho)`` for ``i = 0 .. ceil((delta2 -
    delta1) / (2 rho))``.  Every point of the annulus with radii
    ``[delta1, delta2]`` comes within ``rho`` of the robot.
"""

from __future__ import annotations

import math
from typing import Iterator

from ..errors import InvalidParameterError
from ..geometry import ORIGIN, Vec2
from ..motion import MotionSegment, TrajectoryBuilder
from .base import FiniteMobilityAlgorithm

__all__ = [
    "emit_search_circle",
    "emit_search_annulus",
    "annulus_circle_radii",
    "SearchCircle",
    "SearchAnnulus",
]


def emit_search_circle(delta: float) -> Iterator[MotionSegment]:
    """Yield the three segments of ``SearchCircle(delta)`` from the origin."""
    if delta <= 0.0:
        raise InvalidParameterError(f"SearchCircle needs a positive radius, got {delta!r}")
    builder = TrajectoryBuilder(ORIGIN)
    builder.move_to(Vec2(delta, 0.0))
    builder.full_circle_around(ORIGIN)
    builder.move_to(ORIGIN)
    yield from builder.drain()


def annulus_circle_radii(delta1: float, delta2: float, rho: float) -> list[float]:
    """Radii of the circles traced by ``SearchAnnulus(delta1, delta2, rho)``.

    The paper's loop runs ``i = 0 .. ceil((delta2 - delta1) / (2 rho))``
    inclusive, tracing the circle of radius ``delta1 + 2 i rho`` each time.
    """
    if delta1 < 0.0:
        raise InvalidParameterError(f"inner radius must be non-negative, got {delta1!r}")
    if delta2 <= delta1:
        raise InvalidParameterError(
            f"outer radius {delta2!r} must exceed inner radius {delta1!r}"
        )
    if rho <= 0.0:
        raise InvalidParameterError(f"granularity must be positive, got {rho!r}")
    steps = math.ceil((delta2 - delta1) / (2.0 * rho))
    return [delta1 + 2.0 * i * rho for i in range(steps + 1)]


def emit_search_annulus(delta1: float, delta2: float, rho: float) -> Iterator[MotionSegment]:
    """Yield the segments of ``SearchAnnulus(delta1, delta2, rho)``."""
    for radius in annulus_circle_radii(delta1, delta2, rho):
        if radius <= 0.0:
            # The paper allows delta1 = 0; a zero-radius "circle" is a no-op.
            continue
        yield from emit_search_circle(radius)


class SearchCircle(FiniteMobilityAlgorithm):
    """Algorithm 1 as a standalone mobility algorithm."""

    name = "search-circle"

    def __init__(self, delta: float) -> None:
        if delta <= 0.0:
            raise InvalidParameterError(f"SearchCircle needs a positive radius, got {delta!r}")
        self.delta = float(delta)

    def segments(self) -> Iterator[MotionSegment]:
        return emit_search_circle(self.delta)

    def describe(self) -> str:
        return f"SearchCircle(delta={self.delta:.6g})"


class SearchAnnulus(FiniteMobilityAlgorithm):
    """Algorithm 2 as a standalone mobility algorithm."""

    name = "search-annulus"

    def __init__(self, delta1: float, delta2: float, rho: float) -> None:
        # Validation is shared with the emitter.
        annulus_circle_radii(delta1, delta2, rho)
        self.delta1 = float(delta1)
        self.delta2 = float(delta2)
        self.rho = float(rho)

    def segments(self) -> Iterator[MotionSegment]:
        return emit_search_annulus(self.delta1, self.delta2, self.rho)

    def circle_radii(self) -> list[float]:
        """Radii of the circles the algorithm traces."""
        return annulus_circle_radii(self.delta1, self.delta2, self.rho)

    def describe(self) -> str:
        return (
            f"SearchAnnulus(delta1={self.delta1:.6g}, delta2={self.delta2:.6g}, "
            f"rho={self.rho:.6g})"
        )
