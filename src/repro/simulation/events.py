"""Simulation outcomes and events."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..geometry import Vec2

__all__ = ["DetectionEvent", "SimulationOutcome"]


@dataclass(frozen=True, slots=True)
class DetectionEvent:
    """The first time the sought proximity condition held.

    Attributes:
        time: global time of the detection.
        gap: the measured distance at that time (at most the visibility,
            up to the detector's tolerance).
        position_reference: world position of the (reference) robot.
        position_other: world position of the target or of the other robot.
    """

    time: float
    gap: float
    position_reference: Vec2
    position_other: Vec2


@dataclass(frozen=True, slots=True)
class SimulationOutcome:
    """Result of a search or rendezvous simulation run.

    Attributes:
        solved: True when the event fired before the horizon.
        event: the detection event (None when unsolved).
        horizon: the time horizon the simulation was allowed to run to.
        segments_processed: number of elementary segment intervals examined
            (a proxy for simulation effort, reported by benchmarks).
        gap_evaluations: number of exact gap evaluations performed.
    """

    solved: bool
    event: Optional[DetectionEvent]
    horizon: float
    segments_processed: int
    gap_evaluations: int

    @property
    def time(self) -> float:
        """Detection time; raises when the run did not solve the problem."""
        if not self.solved or self.event is None:
            raise ValueError("the simulation did not reach the sought event")
        return self.event.time

    def describe(self) -> str:
        """Human-readable outcome summary."""
        if self.solved and self.event is not None:
            return (
                f"solved at t={self.event.time:.6g} (gap={self.event.gap:.4g}, "
                f"{self.segments_processed} intervals, {self.gap_evaluations} evaluations)"
            )
        return (
            f"not solved within horizon {self.horizon:.6g} "
            f"({self.segments_processed} intervals examined)"
        )
