"""Problem instances: what the adversary chooses and the robots do not know.

A *search instance* is a static target position and a visibility radius.
A *rendezvous instance* is the separation vector ``d`` between the two
robots, the common visibility radius ``r`` and the hidden attribute vector
of robot R'.  Instances are pure data: the simulation engine combines them
with a mobility algorithm to produce an outcome.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import InvalidParameterError
from ..geometry import Vec2
from ..robots import REFERENCE_ATTRIBUTES, RobotAttributes, RobotPair, make_pair

__all__ = ["SearchInstance", "RendezvousInstance"]


@dataclass(frozen=True, slots=True)
class SearchInstance:
    """A single-robot search problem.

    Attributes:
        target: world position of the static target.
        visibility: the robot's visibility radius ``r > 0``.
        attributes: attributes of the searching robot (defaults to the
            reference robot; a non-reference searcher is used to model the
            "scaled" searches appearing in the Theorem 2 reduction).
    """

    target: Vec2
    visibility: float
    attributes: RobotAttributes = field(default_factory=lambda: REFERENCE_ATTRIBUTES)

    def __post_init__(self) -> None:
        if not (self.visibility > 0.0 and math.isfinite(self.visibility)):
            raise InvalidParameterError(
                f"visibility must be positive and finite, got {self.visibility!r}"
            )
        if self.target.norm() == 0.0:
            raise InvalidParameterError("the target must not coincide with the robot's start")

    @property
    def distance(self) -> float:
        """Initial distance ``d`` from the robot (at the origin) to the target."""
        return self.target.norm()

    @property
    def difficulty(self) -> float:
        """The paper's difficulty measure ``d^2 / r``."""
        return self.distance**2 / self.visibility

    def describe(self) -> str:
        """Human-readable instance summary."""
        return (
            f"search: target=({self.target.x:.4g}, {self.target.y:.4g}), "
            f"d={self.distance:.4g}, r={self.visibility:.4g}, d^2/r={self.difficulty:.4g}"
        )


@dataclass(frozen=True, slots=True)
class RendezvousInstance:
    """A two-robot rendezvous problem in the paper's canonical form.

    Robot R starts at the origin with the reference attributes; robot R'
    starts at ``separation`` and carries ``attributes``.
    """

    separation: Vec2
    visibility: float
    attributes: RobotAttributes

    def __post_init__(self) -> None:
        if not (self.visibility > 0.0 and math.isfinite(self.visibility)):
            raise InvalidParameterError(
                f"visibility must be positive and finite, got {self.visibility!r}"
            )
        if self.separation.norm() == 0.0:
            raise InvalidParameterError("the robots must start at different locations")

    @property
    def distance(self) -> float:
        """Initial distance ``d`` between the robots."""
        return self.separation.norm()

    @property
    def difficulty(self) -> float:
        """The paper's difficulty measure ``d^2 / r``."""
        return self.distance**2 / self.visibility

    def robot_pair(self) -> RobotPair:
        """The canonical robot pair of this instance."""
        return make_pair(self.separation, self.attributes)

    def already_solved(self) -> bool:
        """True when the robots can already see each other at time 0."""
        return self.distance <= self.visibility

    def describe(self) -> str:
        """Human-readable instance summary."""
        return (
            f"rendezvous: d=({self.separation.x:.4g}, {self.separation.y:.4g}) "
            f"|d|={self.distance:.4g}, r={self.visibility:.4g}, "
            f"attrs=[{self.attributes.describe()}]"
        )
