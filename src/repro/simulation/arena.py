"""Cross-process shared-memory arena for compiled trajectories.

The kernel's compiled-chunk cache (:mod:`repro.simulation.kernel`) is
per-process: an N-worker fleet compiles every trajectory N times.  A
:class:`TrajectoryArena` moves the :class:`~repro.motion.compiled.
CompiledTrajectory` structure-of-arrays into one
``multiprocessing.shared_memory`` segment with a content-keyed index, so
a chunk compiled once by *any* process is mapped by every other process
as zero-copy read-only numpy views.

Layout (all little-endian, offsets 8-byte aligned)::

    header   64 B   magic, version, slot_count, data_capacity,
                    data_used, published_count
    index    slot_count x 64 B
                    digest[16], chunk_index, data_offset, n_segments,
                    flags, final_x, final_y
    data     data_capacity B
                    per chunk: 10 float64 arrays (start_times,
                    durations, speeds, ax, ay, bx, by, radius, theta0,
                    omega) then int8 kinds, padded to 8 bytes

Concurrency model -- **single-writer append, lock-free readers**:

* Writers serialise on a cross-process ``flock`` file lock (an
  ``multiprocessing.Lock`` cannot reach cluster workers, which are
  spawned as detached subprocesses, so the lock rides on a file derived
  from the arena name).  Under the lock a writer re-checks for a raced
  duplicate, appends the chunk data, fills the next index slot, and
  bumps ``published_count`` **last** -- so a reader scanning up to
  ``published_count`` only ever sees fully written slots.
* Readers never take any lock: a lookup scans newly published slots
  into a per-process dict and maps the hit as read-only views.

Lifecycle -- **creator unlinks, attachers close**:

* :meth:`TrajectoryArena.create` builds a fresh segment (the creator
  records its pid; :meth:`destroy` in a forked child is a no-op so pool
  workers cannot unlink the segment under their parent).
* :meth:`TrajectoryArena.attach` maps an existing segment by name and
  deregisters it from the resource tracker, so an attaching process
  exiting neither warns nor unlinks a segment it does not own.
* ``REPRO_ARENA=<name>`` in the environment attaches lazily on first
  kernel cache use (:func:`active_arena`); any failure falls back to
  the plain in-process cache.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import struct
import tempfile
import threading
from typing import Any, Optional

import numpy as np

from ..errors import ReproError
from ..motion.compiled import FLOAT_FIELDS, CompiledTrajectory, packed_chunk_nbytes

__all__ = [
    "ARENA_ENV",
    "ARENA_SIZE_ENV",
    "ArenaError",
    "TrajectoryArena",
    "activate",
    "active_arena",
    "attach_from_env",
    "cache_digest",
    "deactivate",
    "ensure_process_arena",
]

#: Environment variable carrying the arena name for worker processes.
ARENA_ENV = "REPRO_ARENA"
#: Optional override of the data-region size (bytes) for created arenas.
ARENA_SIZE_ENV = "REPRO_ARENA_SIZE"

_MAGIC = 0x414E_4552_4154  # "TARENA" little-endian
_VERSION = 1

_HEADER_STRUCT = struct.Struct("<qqqqqq")  # magic, version, slots, capacity, used, published
_HEADER_SIZE = 64
_SLOT_STRUCT = struct.Struct("<16sqqqqdd")
_SLOT_SIZE = 64
assert _SLOT_STRUCT.size <= _SLOT_SIZE

_DEFAULT_SLOTS = 4096
_DEFAULT_DATA_BYTES = 32 * 1024 * 1024

#: Slot flags.
_FLAG_FINAL = 1  # the stream ends at this slot (a chunk or a bare terminator)
_FLAG_HAS_FINAL_POS = 2  # final_x / final_y are meaningful


class ArenaError(ReproError):
    """A shared-memory arena could not be created, attached or parsed."""


def cache_digest(key: Any) -> bytes:
    """16-byte content digest of a kernel cache key (stable across processes)."""
    return hashlib.sha256(repr(key).encode("utf-8")).digest()[:16]


class _FileLock:
    """Cross-process writer exclusion on a file derived from the arena name."""

    def __init__(self, path: str) -> None:
        self._path = path
        self._fd: Optional[int] = None
        # flock is per-open-file, not per-thread: threads of one process
        # must also serialise or they would share the same lock grant.
        self._thread_lock = threading.Lock()

    def __enter__(self) -> "_FileLock":
        self._thread_lock.acquire()
        try:
            import fcntl

            self._fd = os.open(self._path, os.O_CREAT | os.O_RDWR, 0o600)
            fcntl.flock(self._fd, fcntl.LOCK_EX)
        except Exception:
            self._fd = None  # degrade to thread-local exclusion
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._fd is not None:
            try:
                import fcntl

                fcntl.flock(self._fd, fcntl.LOCK_UN)
            finally:
                os.close(self._fd)
                self._fd = None
        self._thread_lock.release()

    def remove(self) -> None:
        try:
            os.unlink(self._path)
        except OSError:
            pass


class TrajectoryArena:
    """One shared-memory segment of published compiled-trajectory chunks."""

    def __init__(self, shm: Any, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self._owner_pid = os.getpid() if owner else -1
        self._closed = False
        self._lock_file = _FileLock(
            os.path.join(tempfile.gettempdir(), f"repro-arena-{shm.name.lstrip('/')}.lock")
        )
        buf = shm.buf
        self._header = np.frombuffer(buf, dtype=np.int64, count=6, offset=0)
        slots = int(self._header[2])
        self._slot_region = (_HEADER_SIZE, slots)
        self._data_start = _HEADER_SIZE + slots * _SLOT_SIZE
        # Per-process read cache over the index: slot position by key.
        self._index: dict[tuple[bytes, int], int] = {}
        self._scanned = 0
        self._index_lock = threading.Lock()
        # Per-process observability counters.
        self._stats_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._publishes = 0
        self._races = 0
        self._full_drops = 0

    # -- construction ----------------------------------------------------------
    @classmethod
    def create(
        cls,
        slots: int = _DEFAULT_SLOTS,
        data_bytes: Optional[int] = None,
        name: Optional[str] = None,
    ) -> "TrajectoryArena":
        """Create a fresh arena; the caller owns (and must unlink) it."""
        from multiprocessing import shared_memory

        if data_bytes is None:
            try:
                data_bytes = int(os.environ.get(ARENA_SIZE_ENV, _DEFAULT_DATA_BYTES))
            except ValueError:
                data_bytes = _DEFAULT_DATA_BYTES
        total = _HEADER_SIZE + slots * _SLOT_SIZE + data_bytes
        try:
            shm = shared_memory.SharedMemory(create=True, name=name, size=total)
        except OSError as error:
            raise ArenaError(f"cannot create shared-memory arena: {error}") from error
        # The header must be in place *before* the object is built:
        # __init__ derives the data-region offset from the slot count it
        # reads back, so a late header write would leave the creator
        # believing the data region starts where the slot table lives.
        _HEADER_STRUCT.pack_into(shm.buf, 0, _MAGIC, _VERSION, slots, data_bytes, 0, 0)
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "TrajectoryArena":
        """Map an existing arena by name (read/extend, never unlink)."""
        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(name=name)
        except OSError as error:
            raise ArenaError(f"cannot attach arena {name!r}: {error}") from error
        # The resource tracker registers *every* SharedMemory handle on
        # Python < 3.13 and unlinks it when this process exits -- an
        # attacher would tear the arena down under its creator.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
        except Exception:  # pragma: no cover - tracker internals moved
            pass
        arena = cls(shm, owner=False)
        if int(arena._header[0]) != _MAGIC or int(arena._header[1]) != _VERSION:
            shm.close()
            raise ArenaError(f"arena {name!r} has an unknown layout")
        return arena

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def owner(self) -> bool:
        return self._owner

    # -- publishing ------------------------------------------------------------
    def publish_chunk(self, digest: bytes, chunk_index: int, chunk: CompiledTrajectory) -> bool:
        """Publish one compiled chunk; False when the arena is full.

        Idempotent under races: a chunk already published by another
        process is detected under the writer lock and skipped.
        """
        n = len(chunk)
        arrays = [np.ascontiguousarray(getattr(chunk, field)) for field in FLOAT_FIELDS]
        kinds = np.ascontiguousarray(chunk.kinds, dtype=np.int8)
        return self._publish(digest, chunk_index, n, arrays, kinds, flags=0, final_pos=None)

    def publish_final(
        self, digest: bytes, chunk_index: int, final_pos: Optional[tuple[float, float]]
    ) -> bool:
        """Publish a bare end-of-stream terminator slot (no chunk data)."""
        flags = _FLAG_FINAL
        if final_pos is not None:
            flags |= _FLAG_HAS_FINAL_POS
        return self._publish(digest, chunk_index, 0, [], None, flags=flags, final_pos=final_pos)

    def _publish(
        self,
        digest: bytes,
        chunk_index: int,
        n: int,
        arrays: list[np.ndarray],
        kinds: Optional[np.ndarray],
        flags: int,
        final_pos: Optional[tuple[float, float]],
    ) -> bool:
        if self._closed:
            return False
        size = packed_chunk_nbytes(n) if n else 0
        with self._lock_file:
            published = int(self._header[5])
            self._refresh_index(published)
            if (digest, chunk_index) in self._index:
                with self._stats_lock:
                    self._races += 1
                return True
            data_used = int(self._header[4])
            if published >= int(self._header[2]) or data_used + size > int(self._header[3]):
                with self._stats_lock:
                    self._full_drops += 1
                return False
            offset = self._data_start + data_used
            if n:
                buf = self._shm.buf
                cursor = offset
                for array in arrays:
                    view = np.frombuffer(buf, dtype=np.float64, count=n, offset=cursor)
                    view[:] = array
                    cursor += 8 * n
                kview = np.frombuffer(buf, dtype=np.int8, count=n, offset=cursor)
                kview[:] = kinds
            fx, fy = final_pos if final_pos is not None else (0.0, 0.0)
            slot_offset = _HEADER_SIZE + published * _SLOT_SIZE
            _SLOT_STRUCT.pack_into(
                self._shm.buf, slot_offset, digest, chunk_index, data_used, n, flags, fx, fy
            )
            self._header[4] = data_used + size
            # Publish order matters: data, slot, then the count readers
            # scan by -- a concurrent reader never sees a partial slot.
            self._header[5] = published + 1
        with self._stats_lock:
            self._publishes += 1
        return True

    # -- reading ---------------------------------------------------------------
    def _refresh_index(self, published: int) -> None:
        with self._index_lock:
            while self._scanned < published:
                slot_offset = _HEADER_SIZE + self._scanned * _SLOT_SIZE
                digest, chunk_index, *_ = _SLOT_STRUCT.unpack_from(self._shm.buf, slot_offset)
                self._index[(digest, int(chunk_index))] = self._scanned
                self._scanned += 1

    def get(
        self, digest: bytes, chunk_index: int
    ) -> Optional[tuple[Optional[CompiledTrajectory], bool, Optional[tuple[float, float]]]]:
        """Look one chunk up: ``(chunk or None, stream_final, final_pos)``.

        A bare terminator slot returns ``(None, True, pos)``.  Returns
        None when nothing under that key has been published; callers
        compile locally and publish (the arena never blocks a read).
        """
        if self._closed:
            return None
        key = (digest, chunk_index)
        slot = self._index.get(key)
        if slot is None:
            self._refresh_index(int(self._header[5]))
            slot = self._index.get(key)
        if slot is None:
            with self._stats_lock:
                self._misses += 1
            return None
        slot_offset = _HEADER_SIZE + slot * _SLOT_SIZE
        _, _, data_offset, n, flags, fx, fy = _SLOT_STRUCT.unpack_from(self._shm.buf, slot_offset)
        final = bool(flags & _FLAG_FINAL)
        final_pos = (fx, fy) if flags & _FLAG_HAS_FINAL_POS else None
        with self._stats_lock:
            self._hits += 1
        if n == 0:
            return None, final, final_pos
        buf = self._shm.buf
        cursor = self._data_start + int(data_offset)
        floats = {}
        for field in FLOAT_FIELDS:
            view = np.frombuffer(buf, dtype=np.float64, count=int(n), offset=cursor)
            view.flags.writeable = False
            floats[field] = view
            cursor += 8 * int(n)
        kinds = np.frombuffer(buf, dtype=np.int8, count=int(n), offset=cursor)
        kinds.flags.writeable = False
        chunk = CompiledTrajectory(kinds=kinds, **floats)
        return chunk, final, final_pos

    # -- observability ---------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """JSON-safe arena document: shared occupancy + this process's traffic."""
        published = int(self._header[5])
        self._refresh_index(published)
        with self._index_lock:
            digests = {digest for digest, _ in self._index}
            finals = 0
            chunks = 0
            for slot in range(self._scanned):
                _, _, _, n, flags, _, _ = _SLOT_STRUCT.unpack_from(
                    self._shm.buf, _HEADER_SIZE + slot * _SLOT_SIZE
                )
                if flags & _FLAG_FINAL:
                    finals += 1
                if n:
                    chunks += 1
        with self._stats_lock:
            process = {
                "hits": self._hits,
                "misses": self._misses,
                "publishes": self._publishes,
                "races": self._races,
                "full_drops": self._full_drops,
            }
        return {
            "name": self.name,
            "owner": self._owner,
            "slots": int(self._header[2]),
            "published_slots": published,
            "published_chunks": chunks,
            "published_finals": finals,
            "unique_trajectories": len(digests),
            "data_used": int(self._header[4]),
            "data_capacity": int(self._header[3]),
            "process": process,
        }

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (the segment itself stays)."""
        if self._closed:
            return
        self._closed = True
        self._header = None  # type: ignore[assignment]
        self._index.clear()
        try:
            self._shm.close()
        except BufferError:
            # Cached CompiledTrajectory views still point into the
            # mapping; unmapping under them would turn reads into
            # segfaults.  Neutralise the handle instead -- the views
            # keep the mmap alive, the OS reclaims it when they die --
            # so SharedMemory.__del__ does not retry and raise at exit.
            self._shm._buf = None  # noqa: SLF001
            self._shm._mmap = None  # noqa: SLF001
            fd = getattr(self._shm, "_fd", -1)
            if fd >= 0:
                try:
                    os.close(fd)
                except OSError:  # pragma: no cover - fd already gone
                    pass
                self._shm._fd = -1  # noqa: SLF001

    def unlink(self) -> None:
        """Remove the segment; only the creating process may do this."""
        if not self._owner or os.getpid() != self._owner_pid:
            return
        try:
            # An attach() in this same process deregistered the name (so
            # attachers never unlink segments they do not own); re-register
            # before unlinking or the tracker logs a spurious KeyError for
            # the unregister that unlink() itself sends.
            from multiprocessing import resource_tracker

            resource_tracker.register(self._shm._name, "shared_memory")  # noqa: SLF001
        except Exception:  # pragma: no cover - tracker internals moved
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self._lock_file.remove()

    def destroy(self) -> None:
        """Close and (for the owner) unlink; idempotent, fork-safe."""
        self.unlink()
        self.close()


# -- process-wide active arena -------------------------------------------------

_ACTIVE: Optional[TrajectoryArena] = None
_ENV_CHECKED = False
_PROCESS_ARENA: Optional[TrajectoryArena] = None
_MODULE_LOCK = threading.Lock()


def active_arena() -> Optional[TrajectoryArena]:
    """The arena this process reads/extends, if any (env-attach lazily)."""
    if _ACTIVE is None and not _ENV_CHECKED:
        attach_from_env()
    return _ACTIVE


def activate(arena: Optional[TrajectoryArena]) -> None:
    """Make ``arena`` the process-wide arena used by the kernel cache."""
    global _ACTIVE
    with _MODULE_LOCK:
        _ACTIVE = arena


def deactivate() -> None:
    """Detach the kernel cache from any arena (fallback to private cache)."""
    global _ACTIVE, _ENV_CHECKED
    with _MODULE_LOCK:
        _ACTIVE = None
        _ENV_CHECKED = True


def attach_from_env() -> Optional[TrajectoryArena]:
    """Attach to ``$REPRO_ARENA`` once; any failure means no arena."""
    global _ACTIVE, _ENV_CHECKED
    with _MODULE_LOCK:
        if _ENV_CHECKED or _ACTIVE is not None:
            return _ACTIVE
        _ENV_CHECKED = True
        name = os.environ.get(ARENA_ENV)
        if not name:
            return None
        try:
            _ACTIVE = TrajectoryArena.attach(name)
        except Exception:
            _ACTIVE = None
        return _ACTIVE


def reset_env_attach() -> None:
    """Forget a previous env attach decision (tests flip ``REPRO_ARENA``)."""
    global _ENV_CHECKED
    with _MODULE_LOCK:
        _ENV_CHECKED = False


def ensure_process_arena() -> Optional[TrajectoryArena]:
    """An arena for this process's pool workers, created once on demand.

    Reuses the active arena when one exists (a cluster worker's pool
    children then share the fleet arena).  Creation failure degrades to
    None -- callers run with private caches.  The created arena is
    unlinked at interpreter exit; ``destroy`` is a no-op in forked
    children, so pool workers cannot unlink it under the parent.
    """
    global _ACTIVE, _PROCESS_ARENA
    existing = active_arena()
    if existing is not None:
        return existing
    with _MODULE_LOCK:
        if _PROCESS_ARENA is None:
            try:
                arena = TrajectoryArena.create()
            except Exception:
                return None
            atexit.register(arena.destroy)
            _PROCESS_ARENA = arena
        _ACTIVE = _PROCESS_ARENA
        return _PROCESS_ARENA


def attach_in_worker(name: str) -> None:
    """Pool-worker initializer: attach (or adopt the forked mapping) by name."""
    current = _ACTIVE
    if current is not None and current.name == name:
        return
    try:
        activate(TrajectoryArena.attach(name))
    except Exception:
        activate(None)
