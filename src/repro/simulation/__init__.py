"""Continuous-time simulation of search and rendezvous."""

from .closest_approach import CrossingSearchResult, find_first_crossing, interval_minimum_lower_bound
from .engine import (
    simulate_rendezvous,
    simulate_robot_pair,
    simulate_search,
    simulate_search_trajectory,
    simulate_trajectory_pair,
)
from .events import DetectionEvent, SimulationOutcome
from .gap import (
    first_time_within_linear_relative,
    first_time_within_pair,
    first_time_within_static,
    static_min_distance,
)
from .horizon import HorizonPolicy, bound_multiple_horizon, fixed_horizon
from .instance import RendezvousInstance, SearchInstance
from .arena import TrajectoryArena
from .kernel import (
    clear_compiled_cache,
    kernel_cache_stats,
    kernel_simulate_rendezvous,
    kernel_simulate_search,
    simulate_robot_pair_kernel,
    simulate_search_batch,
)
from .trace import Trace, record_trace

__all__ = [
    "CrossingSearchResult",
    "find_first_crossing",
    "interval_minimum_lower_bound",
    "simulate_rendezvous",
    "simulate_robot_pair",
    "simulate_search",
    "simulate_search_trajectory",
    "simulate_trajectory_pair",
    "DetectionEvent",
    "SimulationOutcome",
    "first_time_within_linear_relative",
    "first_time_within_pair",
    "first_time_within_static",
    "static_min_distance",
    "HorizonPolicy",
    "bound_multiple_horizon",
    "fixed_horizon",
    "RendezvousInstance",
    "SearchInstance",
    "TrajectoryArena",
    "clear_compiled_cache",
    "kernel_cache_stats",
    "kernel_simulate_rendezvous",
    "kernel_simulate_search",
    "simulate_robot_pair_kernel",
    "simulate_search_batch",
    "Trace",
    "record_trace",
]
