"""Vectorized batch simulation kernel.

The scalar engine (:mod:`repro.simulation.engine`) answers one instance at
a time, paying a Python dispatch per segment per instance.  The kernel
answers *batches*: trajectories are lowered into
:class:`~repro.motion.compiled.CompiledTrajectory` chunks and the
first-crossing question is evaluated with array arithmetic across all
instances (search) or all elementary windows (rendezvous) at once.

The numerics deliberately mirror the scalar engine case by case:

* static and linear--linear windows use the exact quadratic closed form
  (:func:`_quadratic_first_crossing` is an array transcription of
  ``gap._first_crossing_quadratic``);
* windows involving arcs use a Lipschitz branch-and-bound that explores
  the *same dyadic interval tree* as
  :func:`~repro.simulation.closest_approach.find_first_crossing`, so the
  reported event times agree with the scalar detector to floating-point
  noise and always within the configured time tolerance.

Chunked compilation keeps memory bounded: ``Search(k)`` emits on the
order of ``2^{2k}`` segments per round, so the kernel compiles a bounded
number of segments, resolves every instance it can, drops solved
instances from the batch and only then compiles further.

The scalar engine remains the reference implementation; the property
tests in ``tests/properties/test_kernel_parity.py`` assert agreement
within ``TIME_TOLERANCE`` on random suites.
"""

from __future__ import annotations

import itertools
import math
import threading
from collections import OrderedDict
from typing import Callable, Optional, Sequence

import numpy as np

from ..algorithms.base import MobilityAlgorithm
from ..constants import TIME_TOLERANCE
from ..errors import InvalidParameterError
from ..geometry import ORIGIN, Vec2
from ..motion import (
    KIND_ARC,
    KIND_LINEAR,
    KIND_WAIT,
    CompiledTrajectory,
    SegmentStreamCompiler,
    WaitMotion,
)
from ..motion.transform import is_identity_frame, transform_segments
from ..robots import Robot
from .events import DetectionEvent, SimulationOutcome
from .horizon import MIN_WINDOW as _MIN_WINDOW
from .horizon import HorizonPolicy, resolve_horizon as _resolve_horizon
from .instance import RendezvousInstance, SearchInstance

__all__ = [
    "simulate_search_batch",
    "simulate_robot_pair_kernel",
    "kernel_simulate_search",
    "kernel_simulate_rendezvous",
    "kernel_cache_stats",
    "clear_compiled_cache",
]

_TWO_PI = 2.0 * math.pi

#: Fixed chunk size for cacheable compiled trajectories -- chunk
#: boundaries must not depend on the batch, or cached chunks could not be
#: shared across calls.  Small-ish chunks let easy instances drop out of
#: the batch before the per-chunk matrices grow.
_CACHED_CHUNK_SEGMENTS = 512

#: Cap on the number of segments kept per cached trajectory (the arrays
#: cost ~90 bytes per segment; the cap bounds each entry at ~25 MB).
_CACHE_SEGMENT_CAP = 1 << 18


#: Cross-process / cross-batch cache observability.  ``cache_capped``
#: counts entries whose prefix hit ``_CACHE_SEGMENT_CAP`` -- streams that
#: long keep solving through the uncached continuation path, they just
#: stop extending the shared prefix.  Reset by :func:`clear_compiled_cache`.
_STATS_LOCK = threading.Lock()
_STATS = {
    "local_compiles": 0,
    "arena_hits": 0,
    "arena_misses": 0,
    "arena_publishes": 0,
    "arena_drops": 0,
    "cache_capped": 0,
}


def _count(counter: str, amount: int = 1) -> None:
    with _STATS_LOCK:
        _STATS[counter] += amount


def kernel_cache_stats() -> dict:
    """JSON-safe snapshot of the compiled-chunk cache and arena counters."""
    from . import arena as _arena

    with _STATS_LOCK:
        stats = dict(_STATS)
    with _CHUNK_CACHE_LOCK:
        stats["entries"] = len(_CHUNK_CACHE)
    active = _arena.active_arena()
    stats["arena_attached"] = active is not None
    stats["arena"] = active.stats() if active is not None else None
    return stats


class _CacheEntry:
    """Compiled prefix of one reference-frame trajectory, shared by key.

    The prefix has two backing tiers: this process's ``chunks`` list and,
    when a :mod:`repro.simulation.arena` is active, the cross-process
    shared-memory arena.  Extension checks the arena first (adopting
    zero-copy views another process already compiled), compiles locally
    on a miss, and publishes what it compiled -- so any trajectory is
    compiled once fleet-wide.  ``stream_done`` distinguishes a genuinely
    exhausted stream from a cap-limited prefix; adopting arena chunks
    leaves the local compiler stale (``compiler`` None), and a later
    local extension rebuilds it by skipping the covered prefix.
    """

    __slots__ = (
        "algorithm",
        "digest",
        "chunks",
        "compiler",
        "segment_total",
        "done",
        "stream_done",
        "final_pos",
        "lock",
    )

    def __init__(self, algorithm: MobilityAlgorithm, digest: bytes) -> None:
        self.algorithm = algorithm
        self.digest = digest
        self.chunks: list[CompiledTrajectory] = []
        self.compiler: Optional[SegmentStreamCompiler] = SegmentStreamCompiler(
            algorithm.segments()
        )
        self.segment_total = 0
        self.done = False  # stream exhausted or cache cap reached
        self.stream_done = False  # the underlying stream is known exhausted
        self.final_pos: Optional[Vec2] = None
        # Entries are shared across every thread solving the same
        # algorithm (the serving tier does exactly that); the compiler
        # is a stateful stream, so extending the prefix must be
        # serialised or concurrent solves read corrupted trajectories.
        self.lock = threading.Lock()

    def _mark_capped(self) -> None:
        if self.segment_total >= _CACHE_SEGMENT_CAP and not self.done:
            self.done = True
            _count("cache_capped")

    def _extend(self) -> None:
        """Grow the prefix by one chunk (arena first, then local compile)."""
        from . import arena as _arena

        shared = _arena.active_arena()
        next_index = len(self.chunks)
        if shared is not None:
            found = shared.get(self.digest, next_index)
            if found is not None:
                compiled, final, final_pos = found
                _count("arena_hits")
                if compiled is not None:
                    self.chunks.append(compiled)
                    self.segment_total += len(compiled)
                    self.compiler = None  # local stream now lags the prefix
                if final:
                    self.stream_done = True
                    self.done = True
                    if final_pos is not None:
                        self.final_pos = Vec2(final_pos[0], final_pos[1])
                else:
                    self._mark_capped()
                return
            _count("arena_misses")
        if self.compiler is None:
            # Arena-adopted chunks outpaced the local stream: regenerate
            # it and skip the prefix we already hold.
            skipped = itertools.islice(self.algorithm.segments(), self.segment_total, None)
            start = self.chunks[-1].t_end if self.chunks else 0.0
            self.compiler = SegmentStreamCompiler(skipped, start_time=start)
        compiled = self.compiler.next_chunk(max_segments=_CACHED_CHUNK_SEGMENTS)
        if compiled is None:
            self.stream_done = True
            self.done = True
            try:
                self.final_pos = self.compiler.final_position()
            except Exception:
                self.final_pos = None
            if self.final_pos is None and self.chunks:
                self.final_pos = self.chunks[-1].end_position()
            if shared is not None:
                pos = None
                if self.final_pos is not None:
                    pos = (self.final_pos.x, self.final_pos.y)
                if shared.publish_final(self.digest, next_index, pos):
                    _count("arena_publishes")
                else:
                    _count("arena_drops")
            return
        self.chunks.append(compiled)
        self.segment_total += len(compiled)
        _count("local_compiles")
        if shared is not None:
            if shared.publish_chunk(self.digest, next_index, compiled):
                _count("arena_publishes")
            else:
                _count("arena_drops")
        self._mark_capped()

    def chunk(self, index: int) -> Optional[CompiledTrajectory]:
        """The ``index``-th fixed-size chunk, compiling (and caching) as needed."""
        with self.lock:
            while index >= len(self.chunks) and not self.done:
                self._extend()
            if index < len(self.chunks):
                return self.chunks[index]
            return None


#: Maximum number of distinct trajectories kept compiled at once.  Each
#: entry is bounded by _CACHE_SEGMENT_CAP (~25 MB); the LRU bound keeps a
#: long-lived process that sweeps many algorithm parameterisations from
#: growing without limit.
_CACHE_ENTRY_CAP = 8

_CHUNK_CACHE: "OrderedDict[tuple, _CacheEntry]" = OrderedDict()

#: Guards the cache mapping itself (entry creation, LRU order/eviction);
#: each entry carries its own lock for compilation.
_CHUNK_CACHE_LOCK = threading.Lock()


def clear_compiled_cache() -> None:
    """Drop every cached compiled trajectory and reset the cache counters."""
    with _CHUNK_CACHE_LOCK:
        _CHUNK_CACHE.clear()
    with _STATS_LOCK:
        for counter in _STATS:
            _STATS[counter] = 0


def _cache_key(algorithm: MobilityAlgorithm) -> tuple:
    cls = type(algorithm)
    # describe() alone is not collision-safe (its %.6g formatting merges
    # parameters differing beyond six significant digits), so the full
    # repr of the instance attributes joins the key.
    try:
        parameters = tuple(sorted((k, repr(v)) for k, v in vars(algorithm).items()))
    except TypeError:  # no __dict__ (e.g. slotted custom algorithm)
        parameters = ()
    return (cls.__module__, cls.__qualname__, algorithm.describe(), parameters)


def _cache_entry_for(algorithm: MobilityAlgorithm) -> _CacheEntry:
    key = _cache_key(algorithm)
    with _CHUNK_CACHE_LOCK:
        entry = _CHUNK_CACHE.get(key)
        if entry is None:
            from .arena import cache_digest

            entry = _CacheEntry(algorithm, cache_digest(key))
            _CHUNK_CACHE[key] = entry
        _CHUNK_CACHE.move_to_end(key)
        while len(_CHUNK_CACHE) > _CACHE_ENTRY_CAP:
            _CHUNK_CACHE.popitem(last=False)
        return entry


class _ChunkSource:
    """Sequential compiled chunks of one robot's world trajectory.

    Identity-frame trajectories (the reference robot R -- identical for
    every instance of a canonical batch) are served from the module-level
    compiled-chunk cache, so repeated batches over the same algorithm
    skip both segment generation and compilation.  Other frames compile
    on the fly.
    """

    __slots__ = (
        "_entry",
        "_compiler",
        "_index",
        "_covered",
        "_exhausted",
        "_chunk_segments",
        "_next_size",
        "_last_chunk",
    )

    def __init__(
        self,
        algorithm: MobilityAlgorithm,
        robot: Robot,
        chunk_segments: int,
        use_cache: bool = True,
    ) -> None:
        self._index = 0
        self._covered = 0.0
        self._exhausted = False
        self._chunk_segments = chunk_segments
        self._last_chunk: Optional[CompiledTrajectory] = None
        # Uncached streams compile per run, so start small and grow: most
        # pair simulations meet within a few dozen segments, and eagerly
        # compiling a full-size chunk of the other robot's trajectory was
        # the dominant cost of the pair path.
        self._next_size = min(32, chunk_segments)
        if use_cache and is_identity_frame(robot.frame):
            self._entry = _cache_entry_for(algorithm)
            self._compiler = None
        else:
            self._entry = None
            self._compiler = SegmentStreamCompiler(
                transform_segments(algorithm.segments(), robot.frame)
            )

    @property
    def covered(self) -> float:
        """Global time covered by the chunks handed out so far."""
        return self._covered

    def final_position(self) -> Vec2:
        """Final position of an exhausted finite stream."""
        if self._entry is not None:
            if self._entry.final_pos is not None:
                return self._entry.final_pos
        elif self._compiler is not None:
            try:
                return self._compiler.final_position()
            except Exception:
                pass
        # A cache-cap continuation that produced no further segments (the
        # stream ended exactly at the cap) still knows where the last
        # handed-out chunk stopped.
        if self._last_chunk is not None:
            return self._last_chunk.end_position()
        raise InvalidParameterError("the compiled stream has no final position")

    def next_chunk(self, until_time: Optional[float] = None) -> Optional[CompiledTrajectory]:
        """The next chunk in time order, or None once the stream ends.

        ``until_time`` only bounds how far an *uncached* stream compiles
        ahead; cached streams use fixed chunk boundaries so the cache is
        batch-independent.
        """
        if self._exhausted:
            return None
        if self._entry is not None:
            entry = self._entry
            compiled = entry.chunk(self._index)
            if compiled is None:
                if entry.stream_done:
                    self._exhausted = True
                    return None
                # Cache cap reached: compile onward without caching, by
                # regenerating the stream and skipping the cached prefix.
                skipped = itertools.islice(
                    entry.algorithm.segments(), entry.segment_total, None
                )
                self._entry = None
                self._compiler = SegmentStreamCompiler(skipped, start_time=self._covered)
                return self.next_chunk(until_time)
            self._index += 1
            self._covered = compiled.t_end
            self._last_chunk = compiled
            return compiled
        compiled = self._compiler.next_chunk(
            max_segments=self._next_size, until_time=until_time
        )
        self._next_size = min(self._next_size * 4, self._chunk_segments)
        if compiled is None:
            self._exhausted = True
            return None
        self._covered = compiled.t_end
        self._last_chunk = compiled
        return compiled


# -- batched first-crossing primitives -----------------------------------------------


def _quadratic_first_crossing(
    off_x: np.ndarray,
    off_y: np.ndarray,
    vel_x: np.ndarray,
    vel_y: np.ndarray,
    threshold: np.ndarray,
    duration: np.ndarray,
) -> np.ndarray:
    """Array version of ``gap._first_crossing_quadratic`` (NaN = no crossing).

    Earliest local ``t`` in ``[0, duration]`` with
    ``|offset + velocity t| <= threshold``, elementwise over the inputs.
    """
    a = vel_x * vel_x + vel_y * vel_y
    b = 2.0 * (off_x * vel_x + off_y * vel_y)
    c = off_x * off_x + off_y * off_y - threshold * threshold
    out = np.full(np.shape(c), np.nan)
    out = np.where(c <= 0.0, 0.0, out)
    moving = (c > 0.0) & (a > 0.0)
    discriminant = b * b - 4.0 * a * c
    ok = moving & (discriminant >= 0.0)
    sqrt_disc = np.sqrt(np.where(ok, discriminant, 0.0))
    safe_a = np.where(a > 0.0, a, 1.0)
    root_low = (-b - sqrt_disc) / (2.0 * safe_a)
    root_high = (-b + sqrt_disc) / (2.0 * safe_a)
    hit = ok & (root_high >= 0.0) & (root_low <= duration)
    return np.where(hit, np.maximum(root_low, 0.0), out)


GapFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _lipschitz_first_crossing(
    gap_fn: GapFunction,
    lo: np.ndarray,
    hi: np.ndarray,
    lipschitz: np.ndarray,
    threshold: np.ndarray,
    time_tolerance: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched leftmost branch-and-bound over ``n`` independent problems.

    ``gap_fn(problems, times)`` evaluates problem-specific gap functions
    at the given times.  Explores the same dyadic subdivision tree with
    the same tent-bound pruning as the scalar
    :func:`~repro.simulation.closest_approach.find_first_crossing`, so the
    earliest evaluated crossing point per problem coincides with the
    scalar result (intervals to the right of a found crossing are pruned
    early, which only skips work past the answer).

    Returns ``(crossing times with NaN where none, per-problem gap
    evaluation counts)``.
    """
    n = int(lo.shape[0])
    best = np.full(n, np.nan)
    counts = np.full(n, 2, dtype=np.int64)
    problems = np.arange(n)

    g_lo = gap_fn(problems, lo)
    g_hi = gap_fn(problems, hi)
    np.fmin.at(best, problems[g_lo <= threshold], lo[g_lo <= threshold])
    np.fmin.at(best, problems[g_hi <= threshold], hi[g_hi <= threshold])

    def _prune(
        p: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        gl: np.ndarray,
        gr: np.ndarray,
        thr: np.ndarray,
        lip: np.ndarray,
    ) -> np.ndarray:
        width = right - left
        tent = 0.5 * (gl + gr - lip * width)
        lower = np.minimum(np.minimum(gl, gr), tent)
        alive = (width > time_tolerance) & (lower <= thr)
        # An interval entirely at or right of the best known crossing
        # cannot contain an earlier one (NaN best compares False: kept).
        alive &= ~(left >= best[p])
        return alive

    thr = threshold
    lip = lipschitz
    keep = _prune(problems, lo, hi, g_lo, g_hi, thr, lip)
    p, left, right = problems[keep], lo[keep], hi[keep]
    gl, gr, thr, lip = g_lo[keep], g_hi[keep], thr[keep], lip[keep]

    # Binary bisection wavefront: every pass halves all live intervals at
    # once, exploring exactly the scalar detector's dyadic tree with the
    # same tent-bound pruning, so the earliest recorded crossing lands in
    # ``[t*, t* + time_tolerance]`` just like the scalar result.  The
    # per-interval thresholds and Lipschitz constants ride along to avoid
    # re-gathering them every pass.
    concat = np.concatenate
    while p.size:
        mid = 0.5 * (left + right)
        g_mid = gap_fn(p, mid)
        np.add.at(counts, p, 1)
        crossed = g_mid <= thr
        np.fmin.at(best, p[crossed], mid[crossed])

        child_p = concat([p, p])
        child_l = concat([left, mid])
        child_r = concat([mid, right])
        child_gl = concat([gl, g_mid])
        child_gr = concat([g_mid, gr])
        child_thr = concat([thr, thr])
        child_lip = concat([lip, lip])
        alive = _prune(child_p, child_l, child_r, child_gl, child_gr, child_thr, child_lip)
        p, left, right = child_p[alive], child_l[alive], child_r[alive]
        gl, gr = child_gl[alive], child_gr[alive]
        thr, lip = child_thr[alive], child_lip[alive]
    return best, counts


# -- batched search ------------------------------------------------------------------


def _point_segment_distances(
    px: np.ndarray, py: np.ndarray, x0: np.ndarray, y0: np.ndarray, x1: np.ndarray, y1: np.ndarray
) -> np.ndarray:
    """Elementwise distance from points to segments (broadcasting allowed)."""
    dx = x1 - x0
    dy = y1 - y0
    length_squared = dx * dx + dy * dy
    tpx = px - x0
    tpy = py - y0
    safe = np.where(length_squared > 0.0, length_squared, 1.0)
    fraction = np.clip((tpx * dx + tpy * dy) / safe, 0.0, 1.0)
    fraction = np.where(length_squared > 0.0, fraction, 0.0)
    return np.hypot(tpx - dx * fraction, tpy - dy * fraction)


def _point_subarc_distances(
    px: np.ndarray,
    py: np.ndarray,
    cx: np.ndarray,
    cy: np.ndarray,
    radius: np.ndarray,
    theta0: np.ndarray,
    sweep: np.ndarray,
) -> np.ndarray:
    """Elementwise ``geometry.point_arc_distance`` over arrays."""
    off_x = px - cx
    off_y = py - cy
    rho = np.hypot(off_x, off_y)
    on_circle = np.abs(rho - radius)
    full = np.abs(sweep) >= _TWO_PI - 1e-15
    point_angle = np.arctan2(off_y, off_x)
    relative = np.where(
        sweep >= 0.0,
        np.mod(point_angle - theta0, _TWO_PI),
        np.mod(theta0 - point_angle, _TWO_PI),
    )
    within = relative <= np.abs(sweep)
    start_x = cx + radius * np.cos(theta0)
    start_y = cy + radius * np.sin(theta0)
    end_angle = theta0 + sweep
    end_x = cx + radius * np.cos(end_angle)
    end_y = cy + radius * np.sin(end_angle)
    endpoint = np.minimum(
        np.hypot(px - start_x, py - start_y), np.hypot(px - end_x, py - end_y)
    )
    distance = np.where(full | within, on_circle, endpoint)
    return np.where(rho == 0.0, radius, distance)


def simulate_search_batch(
    algorithm: MobilityAlgorithm,
    instances: Sequence[SearchInstance],
    horizons: Sequence[HorizonPolicy | float],
    time_tolerance: float = TIME_TOLERANCE,
    chunk_segments: int = _CACHED_CHUNK_SEGMENTS,
) -> list[SimulationOutcome]:
    """Run one search algorithm against a whole batch of instances.

    Every instance must share the searcher's attributes (the batch is
    *homogeneous*): the world trajectory is then identical across the
    batch and is compiled once, while targets, visibilities and horizons
    vary per instance.  Results match :func:`~repro.simulation.engine.
    simulate_search` run per instance, with event times agreeing within
    ``time_tolerance``.

    ``chunk_segments`` only tunes *uncached* (non-reference-attribute)
    streams: identity-frame trajectories come from the shared compiled
    cache, whose chunk boundaries are fixed at ``_CACHED_CHUNK_SEGMENTS``
    so chunks stay reusable across batches.
    """
    instances = list(instances)
    horizons = list(horizons)
    if len(horizons) != len(instances):
        raise InvalidParameterError(
            f"got {len(instances)} instances but {len(horizons)} horizons"
        )
    if not instances:
        return []
    attributes = instances[0].attributes
    for instance in instances[1:]:
        if instance.attributes != attributes:
            raise InvalidParameterError(
                "a batched search needs identical searcher attributes across instances"
            )
    limits = np.array([_resolve_horizon(h) for h in horizons], dtype=float)

    robot = Robot(name="R", start=ORIGIN, attributes=attributes)
    stream = _ChunkSource(algorithm, robot, chunk_segments)

    n = len(instances)
    target_x = np.array([instance.target.x for instance in instances], dtype=float)
    target_y = np.array([instance.target.y for instance in instances], dtype=float)
    visibility = np.array([instance.visibility for instance in instances], dtype=float)

    times = np.full(n, np.nan)
    event_x = np.zeros(n)
    event_y = np.zeros(n)
    windows = np.zeros(n, dtype=np.int64)
    evaluations = np.zeros(n, dtype=np.int64)
    active = np.ones(n, dtype=bool)

    while np.any(active):
        horizon_cap = float(limits[active].max())
        chunk = stream.next_chunk(until_time=horizon_cap)
        if chunk is None or chunk.t_begin >= horizon_cap:
            break
        _process_search_chunk(
            chunk,
            np.where(active)[0],
            target_x,
            target_y,
            visibility,
            limits,
            times,
            event_x,
            event_y,
            windows,
            evaluations,
            time_tolerance,
        )
        active &= np.isnan(times)
        # Every later segment starts at or after the chunk end, so
        # instances whose horizon the chunk already reached are final.
        active &= limits > chunk.t_end

    outcomes = []
    for i, instance in enumerate(instances):
        solved = not math.isnan(times[i])
        event = None
        if solved:
            position = Vec2(float(event_x[i]), float(event_y[i]))
            event = DetectionEvent(
                time=float(times[i]),
                gap=position.distance_to(instance.target),
                position_reference=position,
                position_other=instance.target,
            )
        outcomes.append(
            SimulationOutcome(
                solved=solved,
                event=event,
                horizon=float(limits[i]),
                segments_processed=int(windows[i]),
                gap_evaluations=int(evaluations[i]),
            )
        )
    return outcomes


def _process_search_chunk(
    chunk: CompiledTrajectory,
    sub: np.ndarray,
    target_x: np.ndarray,
    target_y: np.ndarray,
    visibility: np.ndarray,
    limits: np.ndarray,
    times: np.ndarray,
    event_x: np.ndarray,
    event_y: np.ndarray,
    windows: np.ndarray,
    evaluations: np.ndarray,
    time_tolerance: float,
) -> None:
    """Resolve one compiled chunk against the active instance subset."""
    m = len(chunk)
    k = sub.size
    t0 = chunk.start_times
    durations = chunk.durations
    tx = target_x[sub]
    ty = target_y[sub]
    vis = visibility[sub]

    # Per (segment, instance) windows: local [0, local_hi], clipped at the
    # instance horizon exactly like the scalar engine clips at its limit.
    slack = limits[sub][None, :] - t0[:, None]
    local_hi = np.minimum(durations[:, None], slack)
    valid = (local_hi > _MIN_WINDOW) | ((durations[:, None] == 0.0) & (slack >= 0.0))
    local_hi = np.clip(local_hi, 0.0, None)

    # Exact minimum distance from each target to each windowed sub-path.
    rows = np.arange(m)
    start_x, start_y = chunk.local_positions(rows, np.zeros(m))
    arc_moving = (chunk.kinds == KIND_ARC) & (durations > 0.0)
    other = ~arc_moving

    min_distance = np.empty((m, k))
    if np.any(other):
        o = np.where(other)[0]
        end_x = start_x[o][:, None] + chunk.bx[o][:, None] * local_hi[o]
        end_y = start_y[o][:, None] + chunk.by[o][:, None] * local_hi[o]
        min_distance[o] = _point_segment_distances(
            tx[None, :], ty[None, :], start_x[o][:, None], start_y[o][:, None], end_x, end_y
        )
    if np.any(arc_moving):
        a = np.where(arc_moving)[0]
        min_distance[a] = _point_subarc_distances(
            tx[None, :],
            ty[None, :],
            chunk.ax[a][:, None],
            chunk.ay[a][:, None],
            chunk.radius[a][:, None],
            chunk.theta0[a][:, None],
            chunk.omega[a][:, None] * local_hi[a],
        )

    candidate = valid & (min_distance <= vis[None, :])
    window_counts = np.cumsum(valid, axis=0)

    resolved_time = np.full(k, np.nan)
    resolved_x = np.zeros(k)
    resolved_y = np.zeros(k)
    pending = candidate.any(axis=0)
    while np.any(pending):
        first_row = np.argmax(candidate, axis=0)
        cols = np.where(pending)[0]
        rows_now = first_row[cols]
        kinds_now = chunk.kinds[rows_now]
        durations_now = durations[rows_now]
        local = np.full(cols.shape, np.nan)

        # Waits and zero-duration segments: the exact rejection already
        # established proximity, the crossing is at the window start.
        instant = (kinds_now == KIND_WAIT) | (durations_now == 0.0)
        local[instant] = 0.0

        linear = (kinds_now == KIND_LINEAR) & (durations_now > 0.0)
        if np.any(linear):
            r = rows_now[linear]
            c = cols[linear]
            local[linear] = _quadratic_first_crossing(
                chunk.ax[r] - tx[c],
                chunk.ay[r] - ty[c],
                chunk.bx[r],
                chunk.by[r],
                vis[c],
                local_hi[r, c],
            )

        arc = (kinds_now == KIND_ARC) & (durations_now > 0.0)
        if np.any(arc):
            r = rows_now[arc]
            c = cols[arc]
            arc_cx = chunk.ax[r]
            arc_cy = chunk.ay[r]
            arc_r = chunk.radius[r]
            arc_t0 = chunk.theta0[r]
            arc_w = chunk.omega[r]
            point_x = tx[c]
            point_y = ty[c]

            def gap_fn(problems: np.ndarray, local_times: np.ndarray) -> np.ndarray:
                angle = arc_t0[problems] + arc_w[problems] * local_times
                gx = arc_cx[problems] + arc_r[problems] * np.cos(angle) - point_x[problems]
                gy = arc_cy[problems] + arc_r[problems] * np.sin(angle) - point_y[problems]
                return np.hypot(gx, gy)

            crossing, counts = _lipschitz_first_crossing(
                gap_fn,
                np.zeros(r.size),
                local_hi[r, c],
                chunk.speeds[r],
                vis[c],
                time_tolerance,
            )
            local[arc] = crossing
            np.add.at(evaluations, sub[c], counts)

        found = ~np.isnan(local)
        if np.any(found):
            fc = cols[found]
            fr = rows_now[found]
            resolved_time[fc] = t0[fr] + local[found]
            fx, fy = chunk.local_positions(fr, local[found])
            resolved_x[fc] = fx
            resolved_y[fc] = fy
            windows[sub[fc]] += window_counts[fr, fc]
            candidate[:, fc] = False
        missed = ~found
        if np.any(missed):
            # The detector ignored a dip shallower than its tolerance
            # (exactly like the scalar engine): move to the next candidate.
            candidate[rows_now[missed], cols[missed]] = False
        pending = candidate.any(axis=0) & np.isnan(resolved_time)

    solved_here = ~np.isnan(resolved_time)
    if np.any(solved_here):
        indices = sub[solved_here]
        times[indices] = resolved_time[solved_here]
        event_x[indices] = resolved_x[solved_here]
        event_y[indices] = resolved_y[solved_here]
    unsolved = ~solved_here
    if np.any(unsolved) and m:
        windows[sub[unsolved]] += window_counts[-1, unsolved]


# -- pair (rendezvous) kernel --------------------------------------------------------


class _RobotStream:
    """Chunked compiled view of one robot's world trajectory.

    Parks the robot at its final position (a virtual wait, like the
    engine's ``_segment_or_parked``) when a finite algorithm runs out of
    segments before the horizon.
    """

    __slots__ = ("_source", "_limit", "_chunk", "_fallback_start")

    def __init__(
        self,
        robot: Robot,
        algorithm: MobilityAlgorithm,
        limit: float,
        chunk_segments: int,
    ) -> None:
        self._source = _ChunkSource(algorithm, robot, chunk_segments)
        self._limit = limit
        self._chunk: Optional[CompiledTrajectory] = None
        self._fallback_start = robot.start

    def chunk_covering(self, t: float) -> CompiledTrajectory:
        """The compiled chunk whose span contains time ``t`` onwards."""
        while self._chunk is None or self._chunk.t_end <= t + _MIN_WINDOW:
            nxt = self._source.next_chunk()
            if nxt is not None:
                self._chunk = nxt
                continue
            try:
                position = self._source.final_position()
            except Exception:
                position = self._fallback_start
            parked = WaitMotion(
                position, max(self._limit - self._source.covered, 0.0) + 1.0
            )
            self._chunk = CompiledTrajectory.from_segments(
                [parked], start_time=self._source.covered
            )
            break
        return self._chunk


#: Windows resolved per vectorized pass of the pair kernel.  The pass is
#: all-or-nothing (no early exit inside it), so the batch bounds how much
#: work past the first crossing can be wasted.
_PAIR_WINDOW_BATCH = 96


def simulate_robot_pair_kernel(
    algorithm: MobilityAlgorithm,
    robot_reference: Robot,
    robot_other: Robot,
    visibility: float,
    horizon: HorizonPolicy | float,
    time_tolerance: float = TIME_TOLERANCE,
    chunk_segments: int = _CACHED_CHUNK_SEGMENTS,
) -> SimulationOutcome:
    """Kernel counterpart of :func:`~repro.simulation.engine.simulate_robot_pair`.

    Both trajectories are compiled chunk by chunk; the chunks' segment
    boundaries are merged into elementary windows and whole window
    batches are classified and resolved with array arithmetic (constant /
    quadratic closed forms, Lipschitz branch-and-bound for windows
    involving arcs).
    """
    if visibility <= 0.0 or not math.isfinite(visibility):
        raise InvalidParameterError(f"visibility must be positive and finite, got {visibility!r}")
    limit = _resolve_horizon(horizon)

    initial_gap = robot_reference.start.distance_to(robot_other.start)
    if initial_gap <= visibility:
        event = DetectionEvent(
            time=0.0,
            gap=initial_gap,
            position_reference=robot_reference.start,
            position_other=robot_other.start,
        )
        return SimulationOutcome(
            solved=True, event=event, horizon=limit, segments_processed=0, gap_evaluations=1
        )

    reference = _RobotStream(robot_reference, algorithm, limit, chunk_segments)
    other = _RobotStream(robot_other, algorithm, limit, chunk_segments)

    intervals = 0
    evaluations = 0
    t = 0.0
    while t < limit:
        chunk_ref = reference.chunk_covering(t)
        chunk_oth = other.chunk_covering(t)
        t_next = min(chunk_ref.t_end, chunk_oth.t_end, limit)

        boundaries_ref = chunk_ref.start_times
        boundaries_oth = chunk_oth.start_times
        edges = np.unique(
            np.concatenate(
                [
                    np.array([t, t_next]),
                    boundaries_ref[(boundaries_ref > t) & (boundaries_ref < t_next)],
                    boundaries_oth[(boundaries_oth > t) & (boundaries_oth < t_next)],
                ]
            )
        )
        lo = edges[:-1]
        hi = edges[1:]
        keep = hi - lo > _MIN_WINDOW
        lo, hi = lo[keep], hi[keep]
        # Resolve windows in bounded, time-ordered batches with an early
        # exit, mirroring the scalar engine's stop-at-first-crossing --
        # without this, a whole chunk span would be resolved even when
        # the robots meet in its very first window.
        for offset in range(0, lo.size, _PAIR_WINDOW_BATCH):
            crossing, n_windows, n_evals = _resolve_pair_windows(
                chunk_ref,
                chunk_oth,
                lo[offset : offset + _PAIR_WINDOW_BATCH],
                hi[offset : offset + _PAIR_WINDOW_BATCH],
                visibility,
                time_tolerance,
            )
            intervals += n_windows
            evaluations += n_evals
            if crossing is not None:
                position_ref = chunk_ref.position_at(crossing)
                position_oth = chunk_oth.position_at(crossing)
                event = DetectionEvent(
                    time=crossing,
                    gap=position_ref.distance_to(position_oth),
                    position_reference=position_ref,
                    position_other=position_oth,
                )
                return SimulationOutcome(
                    solved=True,
                    event=event,
                    horizon=limit,
                    segments_processed=intervals,
                    gap_evaluations=evaluations,
                )
        if t_next >= limit:
            break
        t = t_next
    return SimulationOutcome(
        solved=False,
        event=None,
        horizon=limit,
        segments_processed=intervals,
        gap_evaluations=evaluations,
    )


def _resolve_pair_windows(
    chunk_ref: CompiledTrajectory,
    chunk_oth: CompiledTrajectory,
    lo: np.ndarray,
    hi: np.ndarray,
    visibility: float,
    time_tolerance: float,
) -> tuple[Optional[float], int, int]:
    """Earliest crossing across a batch of elementary windows.

    Windows are disjoint and time-ordered; within each window both robots
    follow a single compiled segment.  Returns ``(global time or None,
    windows examined, gap evaluations)``.
    """
    w = lo.size
    idx_ref = chunk_ref.segment_indices(lo)
    idx_oth = chunk_oth.segment_indices(lo)
    x_ref, y_ref = chunk_ref.local_positions(idx_ref, lo - chunk_ref.start_times[idx_ref])
    x_oth, y_oth = chunk_oth.local_positions(idx_oth, lo - chunk_oth.start_times[idx_oth])
    speed_ref = chunk_ref.speeds[idx_ref]
    speed_oth = chunk_oth.speeds[idx_oth]
    width = hi - lo
    threshold = np.full(w, visibility)

    arc_ref = (chunk_ref.kinds[idx_ref] == KIND_ARC) & (speed_ref > 0.0)
    arc_oth = (chunk_oth.kinds[idx_oth] == KIND_ARC) & (speed_oth > 0.0)
    has_arc = arc_ref | arc_oth

    crossing = np.full(w, np.nan)
    evaluations = 0

    plain = ~has_arc
    if np.any(plain):
        local = _quadratic_first_crossing(
            (x_ref - x_oth)[plain],
            (y_ref - y_oth)[plain],
            (chunk_ref.bx[idx_ref] - chunk_oth.bx[idx_oth])[plain],
            (chunk_ref.by[idx_ref] - chunk_oth.by[idx_oth])[plain],
            threshold[plain],
            width[plain],
        )
        crossing[plain] = lo[plain] + local

    if np.any(has_arc):
        aw = np.where(has_arc)[0]
        lipschitz = (speed_ref + speed_oth)[aw]
        gap_lo = np.hypot((x_ref - x_oth)[aw], (y_ref - y_oth)[aw])
        evaluations += aw.size
        # A window whose start gap cannot be closed within the window at
        # combined top speed has no crossing (Lipschitz rejection).
        candidate = aw[gap_lo - lipschitz * width[aw] <= visibility]
        if candidate.size:
            cand_idx_ref = idx_ref[candidate]
            cand_idx_oth = idx_oth[candidate]

            def gap_fn(problems: np.ndarray, global_times: np.ndarray) -> np.ndarray:
                ir = cand_idx_ref[problems]
                io = cand_idx_oth[problems]
                gx_ref, gy_ref = chunk_ref.local_positions(
                    ir, global_times - chunk_ref.start_times[ir]
                )
                gx_oth, gy_oth = chunk_oth.local_positions(
                    io, global_times - chunk_oth.start_times[io]
                )
                return np.hypot(gx_ref - gx_oth, gy_ref - gy_oth)

            found, counts = _lipschitz_first_crossing(
                gap_fn,
                lo[candidate],
                hi[candidate],
                (speed_ref + speed_oth)[candidate],
                threshold[candidate],
                time_tolerance,
            )
            crossing[candidate] = found
            evaluations += int(counts.sum())

    if np.all(np.isnan(crossing)):
        return None, w, evaluations
    return float(np.nanmin(crossing)), w, evaluations


# -- instance-level conveniences -----------------------------------------------------


def kernel_simulate_search(
    algorithm: MobilityAlgorithm,
    instance: SearchInstance,
    horizon: HorizonPolicy | float,
    time_tolerance: float = TIME_TOLERANCE,
) -> SimulationOutcome:
    """Drop-in kernel replacement for :func:`~repro.simulation.engine.simulate_search`."""
    return simulate_search_batch(algorithm, [instance], [horizon], time_tolerance)[0]


def kernel_simulate_rendezvous(
    algorithm: MobilityAlgorithm,
    instance: RendezvousInstance,
    horizon: HorizonPolicy | float,
    time_tolerance: float = TIME_TOLERANCE,
) -> SimulationOutcome:
    """Drop-in kernel replacement for :func:`~repro.simulation.engine.simulate_rendezvous`."""
    pair = instance.robot_pair()
    return simulate_robot_pair_kernel(
        algorithm, pair.reference, pair.other, instance.visibility, horizon, time_tolerance
    )
