"""Gap computations between moving robots and static targets.

Everything the engine needs to answer "when does the distance first drop
to ``r``?" for one elementary interval during which each robot stays on a
single motion segment:

* exact minimum distances for the static cases (cheap rejection),
* a closed-form first-crossing for the linear-vs-linear case (the relative
  motion is itself uniform linear motion, so the squared gap is a
  quadratic in time),
* a Lipschitz branch-and-bound fallback for every case involving an arc.

All first-crossing helpers work in *local* time relative to the start of
the examined window and return local times.
"""

from __future__ import annotations

import math
from typing import Optional

from ..constants import TIME_TOLERANCE
from ..geometry import Vec2, point_arc_distance, point_segment_distance
from ..motion import ArcMotion, LinearMotion, MotionSegment, WaitMotion
from .closest_approach import CrossingSearchResult, find_first_crossing

__all__ = [
    "static_min_distance",
    "first_time_within_static",
    "first_time_within_linear_relative",
    "first_time_within_pair",
]


def static_min_distance(segment: MotionSegment, point: Vec2, local_lo: float, local_hi: float) -> float:
    """Exact minimum distance from ``point`` to the segment's path on a window.

    ``local_lo``/``local_hi`` restrict the motion to a sub-interval of the
    segment's own time domain.  For full windows the closed-form
    point/segment and point/arc distances apply directly; for partial
    windows the sub-path endpoints are used, which is still exact because
    sub-paths of lines and arcs are lines and arcs.
    """
    if isinstance(segment, WaitMotion):
        return point.distance_to(segment.start)
    if isinstance(segment, LinearMotion):
        return point_segment_distance(point, segment.position(local_lo), segment.position(local_hi))
    if isinstance(segment, ArcMotion):
        if segment.duration == 0.0:
            return point.distance_to(segment.start)
        angle_lo = segment.angle_at(local_lo)
        angle_hi = segment.angle_at(local_hi)
        return point_arc_distance(
            point, segment.center, segment.radius, angle_lo, angle_hi - angle_lo
        )
    # Unknown segment kinds fall back to a conservative bounding-disc bound.
    center, radius = segment.bounding_center_radius()
    return max(0.0, point.distance_to(center) - radius)


def _first_crossing_quadratic(
    offset: Vec2, velocity: Vec2, threshold: float, duration: float
) -> Optional[float]:
    """Earliest ``t`` in ``[0, duration]`` with ``|offset + velocity t| <= threshold``.

    Closed form: the squared distance is a quadratic polynomial in ``t``.
    """
    a = velocity.norm_squared()
    b = 2.0 * offset.dot(velocity)
    c = offset.norm_squared() - threshold * threshold
    if c <= 0.0:
        return 0.0
    if a == 0.0:
        # No relative motion: the gap never changes.
        return None
    discriminant = b * b - 4.0 * a * c
    if discriminant < 0.0:
        return None
    sqrt_disc = math.sqrt(discriminant)
    root_low = (-b - sqrt_disc) / (2.0 * a)
    root_high = (-b + sqrt_disc) / (2.0 * a)
    if root_high < 0.0 or root_low > duration:
        return None
    return max(root_low, 0.0)


def first_time_within_static(
    segment: MotionSegment,
    point: Vec2,
    threshold: float,
    local_lo: float,
    local_hi: float,
    time_tolerance: float = TIME_TOLERANCE,
) -> tuple[Optional[float], int]:
    """Earliest local time in ``[local_lo, local_hi]`` within ``threshold`` of ``point``.

    Returns ``(local_time or None, gap_evaluations)``.
    """
    if local_hi < local_lo:
        return None, 0
    # Cheap exact rejection.
    if static_min_distance(segment, point, local_lo, local_hi) > threshold:
        return None, 0
    if isinstance(segment, WaitMotion):
        # The rejection test already established the wait position is close.
        return local_lo, 0
    if isinstance(segment, LinearMotion) and segment.duration > 0.0:
        start = segment.position(local_lo)
        velocity = (segment.end - segment.start) / segment.duration
        crossing = _first_crossing_quadratic(
            start - point, velocity, threshold, local_hi - local_lo
        )
        if crossing is None:
            return None, 0
        return local_lo + crossing, 0
    # Arcs (and exotic segments): branch-and-bound refinement.
    result: CrossingSearchResult = find_first_crossing(
        gap=lambda t: segment.position(t).distance_to(point),
        t0=local_lo,
        t1=local_hi,
        lipschitz=segment.speed,
        threshold=threshold,
        time_tolerance=time_tolerance,
    )
    return result.time, result.evaluations


def first_time_within_linear_relative(
    position_first: Vec2,
    velocity_first: Vec2,
    position_second: Vec2,
    velocity_second: Vec2,
    threshold: float,
    duration: float,
) -> Optional[float]:
    """Closed-form first crossing for two robots in uniform linear motion.

    Positions are the robots' positions at the start of the window and
    velocities are constant over the window of length ``duration``.
    """
    return _first_crossing_quadratic(
        position_first - position_second,
        velocity_first - velocity_second,
        threshold,
        duration,
    )


def _linear_velocity(segment: LinearMotion) -> Vec2:
    if segment.duration == 0.0:
        return Vec2(0.0, 0.0)
    return (segment.end - segment.start) / segment.duration


def first_time_within_pair(
    segment_first: MotionSegment,
    start_first: float,
    segment_second: MotionSegment,
    start_second: float,
    window_lo: float,
    window_hi: float,
    threshold: float,
    time_tolerance: float = TIME_TOLERANCE,
) -> tuple[Optional[float], int]:
    """Earliest *global* time in ``[window_lo, window_hi]`` with the robots within ``threshold``.

    ``segment_first`` is active from global time ``start_first`` (similarly
    for the second robot); the window must be contained in both segments'
    active spans.  Returns ``(global_time or None, gap_evaluations)``.
    """
    if window_hi < window_lo:
        return None, 0

    first_is_static = isinstance(segment_first, WaitMotion) or segment_first.speed == 0.0
    second_is_static = isinstance(segment_second, WaitMotion) or segment_second.speed == 0.0

    # Case 1: both robots hold still -- the gap is constant on the window.
    if first_is_static and second_is_static:
        gap = segment_first.position(window_lo - start_first).distance_to(
            segment_second.position(window_lo - start_second)
        )
        return (window_lo, 1) if gap <= threshold else (None, 1)

    # Case 2: exactly one robot moves -- reduce to the static-point case.
    if first_is_static or second_is_static:
        if first_is_static:
            static_point = segment_first.position(window_lo - start_first)
            moving_segment, moving_start = segment_second, start_second
        else:
            static_point = segment_second.position(window_lo - start_second)
            moving_segment, moving_start = segment_first, start_first
        local_time, evaluations = first_time_within_static(
            moving_segment,
            static_point,
            threshold,
            window_lo - moving_start,
            window_hi - moving_start,
            time_tolerance,
        )
        if local_time is None:
            return None, evaluations
        return moving_start + local_time, evaluations

    # Case 3: both robots follow straight lines -- closed form.
    if isinstance(segment_first, LinearMotion) and isinstance(segment_second, LinearMotion):
        crossing = first_time_within_linear_relative(
            segment_first.position(window_lo - start_first),
            _linear_velocity(segment_first),
            segment_second.position(window_lo - start_second),
            _linear_velocity(segment_second),
            threshold,
            window_hi - window_lo,
        )
        if crossing is None:
            return None, 0
        return window_lo + crossing, 0

    # Case 4: at least one arc and both moving -- cheap rejection then
    # Lipschitz branch-and-bound.
    center_first, radius_first = segment_first.bounding_center_radius()
    center_second, radius_second = segment_second.bounding_center_radius()
    if center_first.distance_to(center_second) - radius_first - radius_second > threshold:
        return None, 0
    lipschitz = segment_first.speed + segment_second.speed

    def gap(t: float) -> float:
        return segment_first.position(t - start_first).distance_to(
            segment_second.position(t - start_second)
        )

    result = find_first_crossing(
        gap=gap,
        t0=window_lo,
        t1=window_hi,
        lipschitz=lipschitz,
        threshold=threshold,
        time_tolerance=time_tolerance,
    )
    return result.time, result.evaluations
