"""Horizon policies: how long a simulation is allowed to run.

Feasible configurations come with closed-form time bounds (Theorems 1-3),
so the natural horizon is "the paper's bound times a small safety factor".
Infeasible configurations never terminate -- the paper itself notes that
the robots can never *know* this -- so those runs need an explicit cut-off
chosen by the experimenter.  The helpers here centralise both choices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import InvalidParameterError

__all__ = [
    "MIN_WINDOW",
    "HorizonPolicy",
    "fixed_horizon",
    "bound_multiple_horizon",
    "resolve_horizon",
]

#: Windows narrower than this are treated as empty by both the scalar
#: engine and the vectorized kernel (guards against zero-duration
#: segments creating infinite loops).  One definition, shared, so the
#: two simulation paths cannot drift.
MIN_WINDOW: float = 1e-15


@dataclass(frozen=True, slots=True)
class HorizonPolicy:
    """A resolved simulation horizon with a record of how it was chosen."""

    limit: float
    reason: str

    def __post_init__(self) -> None:
        if not (self.limit > 0.0):
            raise InvalidParameterError(f"the horizon must be positive, got {self.limit!r}")
        if math.isinf(self.limit):
            raise InvalidParameterError("an infinite horizon would never terminate the run")


def resolve_horizon(horizon: "HorizonPolicy | float") -> float:
    """The numeric limit of a horizon given as a policy or a bare number.

    Shared by the scalar engine and the vectorized kernel so both accept
    exactly the same horizon spellings.
    """
    if isinstance(horizon, HorizonPolicy):
        return horizon.limit
    limit = float(horizon)
    if not (limit > 0.0) or math.isinf(limit):
        raise InvalidParameterError(
            f"the horizon must be positive and finite, got {horizon!r}"
        )
    return limit


def fixed_horizon(limit: float) -> HorizonPolicy:
    """A horizon fixed by the experimenter (used for infeasibility checks)."""
    return HorizonPolicy(limit=limit, reason=f"fixed horizon {limit:g}")


def bound_multiple_horizon(bound: float, safety_factor: float = 1.1) -> HorizonPolicy:
    """A horizon derived from an analytic upper bound.

    The paper's bounds are strict upper bounds, so a safety factor slightly
    above 1 already guarantees the event fires before the horizon for
    feasible instances; the default leaves extra slack for numerical
    tolerance in the event detector.
    """
    if bound <= 0.0 or not math.isfinite(bound):
        raise InvalidParameterError(f"the analytic bound must be positive and finite, got {bound!r}")
    if safety_factor < 1.0:
        raise InvalidParameterError(f"the safety factor must be at least 1, got {safety_factor!r}")
    return HorizonPolicy(
        limit=bound * safety_factor,
        reason=f"analytic bound {bound:g} with safety factor {safety_factor:g}",
    )
