"""First-crossing detection for Lipschitz gap functions.

The simulator reduces every proximity question to: *given a continuous
function ``gap(t)`` on ``[t0, t1]`` with a known Lipschitz constant ``L``,
find the earliest ``t`` with ``gap(t) <= threshold``* (or certify that no
such ``t`` exists).

The detector is a branch-and-bound bisection.  On an interval of width
``w`` the gap cannot dip more than ``L * w / 2`` below the smaller of its
endpoint values, so intervals whose endpoint values are far above the
threshold are discarded wholesale; the rest are split and examined left to
right, which makes the *first* crossing come out naturally.  Guarantees:

* a reported crossing time ``t`` satisfies ``gap(t) <= threshold``
  (no false positives beyond floating point),
* if no crossing is reported then ``gap(t) > threshold - L * time_tolerance``
  for every ``t`` in the interval (no missed crossing of depth more than
  ``L * time_tolerance``),
* the reported time is within ``time_tolerance`` of the true first
  crossing time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from ..constants import TIME_TOLERANCE
from ..errors import InvalidParameterError

__all__ = ["CrossingSearchResult", "find_first_crossing", "interval_minimum_lower_bound"]


@dataclass(frozen=True, slots=True)
class CrossingSearchResult:
    """Outcome of one first-crossing search."""

    time: Optional[float]
    value: Optional[float]
    evaluations: int

    @property
    def found(self) -> bool:
        """True when a crossing was detected."""
        return self.time is not None


def interval_minimum_lower_bound(
    value_left: float, value_right: float, width: float, lipschitz: float
) -> float:
    """Lower bound on the minimum of a Lipschitz function over an interval.

    With values ``value_left`` and ``value_right`` at the interval's
    endpoints and Lipschitz constant ``lipschitz``, the minimum over the
    interval is at least the "tent" value
    ``(value_left + value_right - lipschitz * width) / 2``.  The endpoint
    values themselves are also returned as a cap so the bound stays valid
    even if the caller's Lipschitz constant was not quite consistent with
    the sampled values.
    """
    tent = (value_left + value_right - lipschitz * width) / 2.0
    return min(value_left, value_right, tent)


def find_first_crossing(
    gap: Callable[[float], float],
    t0: float,
    t1: float,
    lipschitz: float,
    threshold: float,
    time_tolerance: float = TIME_TOLERANCE,
) -> CrossingSearchResult:
    """Earliest ``t`` in ``[t0, t1]`` with ``gap(t) <= threshold``.

    Args:
        gap: the gap function; must be Lipschitz with constant ``lipschitz``
            on the interval.
        t0: left end of the interval.
        t1: right end of the interval (must be ``>= t0``).
        lipschitz: a valid Lipschitz constant (an overestimate is fine).
        threshold: the proximity threshold (the visibility radius).
        time_tolerance: resolution of the reported crossing time.
    """
    if t1 < t0:
        raise InvalidParameterError(f"empty interval [{t0!r}, {t1!r}]")
    if lipschitz < 0.0 or not math.isfinite(lipschitz):
        raise InvalidParameterError(f"the Lipschitz constant must be finite and >= 0, got {lipschitz!r}")
    if time_tolerance <= 0.0:
        raise InvalidParameterError(f"time_tolerance must be positive, got {time_tolerance!r}")

    evaluations = 0

    def evaluate(t: float) -> float:
        nonlocal evaluations
        evaluations += 1
        return gap(t)

    value_start = evaluate(t0)
    if value_start <= threshold:
        return CrossingSearchResult(time=t0, value=value_start, evaluations=evaluations)
    if t1 == t0:
        return CrossingSearchResult(time=None, value=None, evaluations=evaluations)
    value_end = evaluate(t1)

    # Depth-first, left-most-first exploration with an explicit stack.
    # Each entry is (left, right, value_left, value_right).
    stack: list[tuple[float, float, float, float]] = [(t0, t1, value_start, value_end)]
    while stack:
        left, right, value_left, value_right = stack.pop()
        if value_left <= threshold:
            return CrossingSearchResult(time=left, value=value_left, evaluations=evaluations)
        width = right - left
        lower_bound = interval_minimum_lower_bound(value_left, value_right, width, lipschitz)
        if lower_bound > threshold:
            continue
        if width <= time_tolerance:
            # Interval at resolution floor: accept the right endpoint when it
            # crosses; otherwise the dip (if any) is shallower than
            # lipschitz * time_tolerance and is ignored by design.
            if value_right <= threshold:
                return CrossingSearchResult(
                    time=right, value=value_right, evaluations=evaluations
                )
            continue
        middle = 0.5 * (left + right)
        value_middle = evaluate(middle)
        # Push the right half first so the left half is processed first
        # (stack is LIFO) -- this keeps the search left-most-first.
        stack.append((middle, right, value_middle, value_right))
        stack.append((left, middle, value_left, value_middle))
    return CrossingSearchResult(time=None, value=None, evaluations=evaluations)
