"""The continuous-time simulation engine.

Two entry points:

* :func:`simulate_search` -- one robot runs a mobility algorithm and we
  look for the first time it comes within ``r`` of a static target.
* :func:`simulate_rendezvous` -- both robots of an instance run the *same*
  mobility algorithm (each in its own reference frame) and we look for the
  first time they come within ``r`` of each other.

The engine streams motion segments in time order, merging the two robots'
segment boundaries into elementary windows during which each robot follows
one analytic primitive.  Inside a window the first-crossing question is
answered exactly (static or linear-linear cases) or by Lipschitz
branch-and-bound (cases involving arcs), so the reported event time is
accurate to the configured tolerance and no crossing deeper than the
tolerance can be missed.  There is no global time step anywhere.
"""

from __future__ import annotations

import math
from typing import Optional

from ..algorithms.base import MobilityAlgorithm
from ..constants import TIME_TOLERANCE
from ..errors import InvalidParameterError
from ..geometry import ORIGIN, Vec2
from ..motion import LazyTrajectory, MotionSegment, WaitMotion
from ..robots import Robot
from .events import DetectionEvent, SimulationOutcome
from .gap import first_time_within_pair, first_time_within_static
from .horizon import MIN_WINDOW as _MIN_WINDOW
from .horizon import HorizonPolicy, resolve_horizon as _resolve_horizon
from .instance import RendezvousInstance, SearchInstance

__all__ = [
    "simulate_search",
    "simulate_search_trajectory",
    "simulate_rendezvous",
    "simulate_robot_pair",
    "simulate_trajectory_pair",
]


def _segment_or_parked(
    trajectory: LazyTrajectory, index: int, horizon: float
) -> tuple[float, float, MotionSegment]:
    """The ``index``-th timed segment, or a virtual wait once the source ends."""
    entry = trajectory.timed_segment(index)
    if entry is not None:
        return entry
    # Finite algorithm exhausted: the robot parks at its final position
    # until the horizon.
    start = trajectory.covered_duration
    parked = WaitMotion(trajectory.final_position(), max(horizon - start, 0.0) + 1.0)
    return start, start + parked.duration, parked


def simulate_search(
    algorithm: MobilityAlgorithm,
    instance: SearchInstance,
    horizon: HorizonPolicy | float,
    time_tolerance: float = TIME_TOLERANCE,
) -> SimulationOutcome:
    """Run ``algorithm`` from the origin until the target is seen or the horizon hits."""
    robot = Robot(name="R", start=ORIGIN, attributes=instance.attributes)
    world = robot.world_trajectory(algorithm)
    return simulate_search_trajectory(
        world, instance.target, instance.visibility, horizon, time_tolerance
    )


def simulate_search_trajectory(
    world: LazyTrajectory,
    target: Vec2,
    visibility: float,
    horizon: HorizonPolicy | float,
    time_tolerance: float = TIME_TOLERANCE,
) -> SimulationOutcome:
    """First time an arbitrary world-frame trajectory comes within ``visibility`` of ``target``.

    This is the trajectory-level core of :func:`simulate_search`; the fault
    layer uses it directly so that injected (truncated / delayed / adversarial)
    trajectories go through exactly the same detection machinery as healthy
    runs.  A finite trajectory that ends before the horizon simply stops
    contributing windows -- a crashed robot that never saw the target stays
    unsolved.
    """
    if visibility <= 0.0 or not math.isfinite(visibility):
        raise InvalidParameterError(f"visibility must be positive and finite, got {visibility!r}")
    limit = _resolve_horizon(horizon)

    intervals = 0
    evaluations = 0
    index = 0
    current_time = 0.0
    while current_time < limit:
        entry = world.timed_segment(index)
        if entry is None:
            break
        segment_start, segment_end, segment = entry
        window_lo = max(current_time, segment_start)
        window_hi = min(segment_end, limit)
        if window_hi - window_lo > _MIN_WINDOW or (
            segment.duration == 0.0 and window_hi >= window_lo
        ):
            intervals += 1
            local_time, n_evals = first_time_within_static(
                segment,
                target,
                visibility,
                window_lo - segment_start,
                window_hi - segment_start,
                time_tolerance,
            )
            evaluations += n_evals
            if local_time is not None:
                event_time = segment_start + local_time
                position = segment.position(local_time)
                event = DetectionEvent(
                    time=event_time,
                    gap=position.distance_to(target),
                    position_reference=position,
                    position_other=target,
                )
                return SimulationOutcome(
                    solved=True,
                    event=event,
                    horizon=limit,
                    segments_processed=intervals,
                    gap_evaluations=evaluations,
                )
        current_time = max(current_time, segment_end)
        index += 1
    return SimulationOutcome(
        solved=False,
        event=None,
        horizon=limit,
        segments_processed=intervals,
        gap_evaluations=evaluations,
    )


def simulate_rendezvous(
    algorithm: MobilityAlgorithm,
    instance: RendezvousInstance,
    horizon: HorizonPolicy | float,
    time_tolerance: float = TIME_TOLERANCE,
) -> SimulationOutcome:
    """Run ``algorithm`` on both robots until they see each other or the horizon hits."""
    pair = instance.robot_pair()
    return simulate_robot_pair(
        algorithm, pair.reference, pair.other, instance.visibility, horizon, time_tolerance
    )


def simulate_robot_pair(
    algorithm: MobilityAlgorithm,
    robot_reference: Robot,
    robot_other: Robot,
    visibility: float,
    horizon: HorizonPolicy | float,
    time_tolerance: float = TIME_TOLERANCE,
) -> SimulationOutcome:
    """First contact between two arbitrary robots running the same algorithm.

    Unlike :func:`simulate_rendezvous`, neither robot needs to carry the
    reference attributes -- this is what the multi-robot gathering
    extension uses to simulate every pair of a swarm.
    """
    trajectory_reference = robot_reference.world_trajectory(algorithm)
    trajectory_other = robot_other.world_trajectory(algorithm)
    return simulate_trajectory_pair(
        trajectory_reference, trajectory_other, visibility, horizon, time_tolerance
    )


def simulate_trajectory_pair(
    trajectory_reference: LazyTrajectory,
    trajectory_other: LazyTrajectory,
    visibility: float,
    horizon: HorizonPolicy | float,
    time_tolerance: float = TIME_TOLERANCE,
) -> SimulationOutcome:
    """First contact between two arbitrary world-frame trajectories.

    The trajectory-level core of :func:`simulate_robot_pair`: the fault
    layer substitutes injected trajectories (crashed, recovering or
    Byzantine robots) for one side while reusing the exact-crossing
    detection unchanged.  Finite trajectories park at their final position
    until the horizon, so a crashed robot remains visible to its partner.
    """
    if visibility <= 0.0 or not math.isfinite(visibility):
        raise InvalidParameterError(f"visibility must be positive and finite, got {visibility!r}")
    limit = _resolve_horizon(horizon)

    intervals = 0
    evaluations = 0
    index_reference = 0
    index_other = 0
    current_time = 0.0

    # Immediate detection at t = 0 (the robots may already see each other).
    start_reference = trajectory_reference.start
    start_other = trajectory_other.start
    initial_gap = start_reference.distance_to(start_other)
    if initial_gap <= visibility:
        event = DetectionEvent(
            time=0.0,
            gap=initial_gap,
            position_reference=start_reference,
            position_other=start_other,
        )
        return SimulationOutcome(
            solved=True, event=event, horizon=limit, segments_processed=0, gap_evaluations=1
        )

    while current_time < limit:
        start_ref, end_ref, segment_ref = _segment_or_parked(
            trajectory_reference, index_reference, limit
        )
        start_oth, end_oth, segment_oth = _segment_or_parked(
            trajectory_other, index_other, limit
        )
        window_lo = current_time
        window_hi = min(end_ref, end_oth, limit)
        if window_hi - window_lo > _MIN_WINDOW:
            intervals += 1
            crossing_time, n_evals = first_time_within_pair(
                segment_ref,
                start_ref,
                segment_oth,
                start_oth,
                window_lo,
                window_hi,
                visibility,
                time_tolerance,
            )
            evaluations += n_evals
            if crossing_time is not None:
                position_ref = segment_ref.position(crossing_time - start_ref)
                position_oth = segment_oth.position(crossing_time - start_oth)
                event = DetectionEvent(
                    time=crossing_time,
                    gap=position_ref.distance_to(position_oth),
                    position_reference=position_ref,
                    position_other=position_oth,
                )
                return SimulationOutcome(
                    solved=True,
                    event=event,
                    horizon=limit,
                    segments_processed=intervals,
                    gap_evaluations=evaluations,
                )
        # Advance past whichever segment(s) end at the window boundary.
        current_time = window_hi
        if end_ref <= window_hi + _MIN_WINDOW:
            index_reference += 1
        if end_oth <= window_hi + _MIN_WINDOW:
            index_other += 1
        if window_hi >= limit:
            break
    return SimulationOutcome(
        solved=False,
        event=None,
        horizon=limit,
        segments_processed=intervals,
        gap_evaluations=evaluations,
    )
