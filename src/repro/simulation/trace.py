"""Trajectory traces: sampled position histories for visualisation.

The simulator itself never samples, but examples and the SVG renderer want
"draw what robot R did until time T".  A :class:`TraceRecorder` samples a
trajectory at a fixed resolution and stores the polyline, optionally for
both robots of a rendezvous instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import InvalidParameterError
from ..geometry import Vec2
from ..motion import LazyTrajectory, Trajectory

__all__ = ["Trace", "record_trace"]


@dataclass(frozen=True, slots=True)
class Trace:
    """A sampled position history of one robot."""

    label: str
    times: tuple[float, ...]
    points: tuple[Vec2, ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.points):
            raise InvalidParameterError("times and points must have the same length")

    @property
    def duration(self) -> float:
        """Time span covered by the trace."""
        return self.times[-1] - self.times[0] if self.times else 0.0

    def bounding_box(self) -> tuple[Vec2, Vec2]:
        """Axis-aligned bounding box ``(lower_left, upper_right)`` of the trace."""
        if not self.points:
            raise InvalidParameterError("an empty trace has no bounding box")
        xs = [p.x for p in self.points]
        ys = [p.y for p in self.points]
        return Vec2(min(xs), min(ys)), Vec2(max(xs), max(ys))


def record_trace(
    trajectory: Trajectory | LazyTrajectory,
    until: float,
    samples: int = 512,
    label: str = "robot",
) -> Trace:
    """Sample ``trajectory`` on ``[0, until]`` with ``samples`` points."""
    if until < 0.0:
        raise InvalidParameterError(f"the trace end time must be non-negative, got {until!r}")
    if samples < 2:
        raise InvalidParameterError(f"need at least 2 samples, got {samples!r}")
    times = [until * index / (samples - 1) for index in range(samples)]
    points = [trajectory.position(t) for t in times]
    return Trace(label=label, times=tuple(times), points=tuple(points))
