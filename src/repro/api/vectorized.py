"""The vectorized solver backend: kernel-measured times at batch speed.

:class:`VectorizedBackend` produces the same ``SolveResult`` envelopes as
the simulation backend -- event times agree within ``TIME_TOLERANCE``,
the details carry the same keys -- but drives the array-at-a-time kernel
of :mod:`repro.simulation.kernel` instead of the scalar engine:

* **search batches** share one compiled reference trajectory and run the
  first-crossing test across every instance simultaneously
  (:meth:`VectorizedBackend.solve_specs`);
* **single search / rendezvous specs** go through the same
  ``solve_search`` / ``solve_rendezvous`` orchestration as the
  simulation backend, with the kernel plugged in as the ``simulate``
  hook, so feasibility, horizon and error semantics are identical;
* **gathering specs** fall back to the scalar simulation backend (the
  kernel has no multi-robot path yet); provenance then honestly names
  the backend that actually solved the spec.

The backend registers itself under the name ``"vectorized"`` on import
(importing :mod:`repro.api` is enough).
"""

from __future__ import annotations

import time
from typing import Any, ClassVar, Iterable, Sequence

from ..algorithms import UniversalSearch
from ..core import (
    guaranteed_discovery_round,
    solve_rendezvous,
    solve_search,
    theorem1_search_bound,
)
from ..core.search import SearchReport
from ..errors import HorizonExceededError
from ..simulation import (
    bound_multiple_horizon,
    kernel_simulate_rendezvous,
    kernel_simulate_search,
    simulate_search_batch,
)
from .backends import (
    SimulationBackend,
    SolverBackend,
    _unsupported,
    batchable_search_group,
    register_backend,
    rendezvous_report_fields,
    route_search_batch,
    search_report_fields,
)
from .result import Provenance, SolveResult
from .spec import (
    SCHEMA_VERSION,
    GatheringProblem,
    ProblemSpec,
    RendezvousProblem,
    SearchProblem,
)

__all__ = ["VectorizedBackend"]


class VectorizedBackend(SolverBackend):
    """Measured fidelity through the vectorized batch kernel."""

    name: ClassVar[str] = "vectorized"
    fidelity: ClassVar[str] = "measured"

    # -- single spec ----------------------------------------------------------
    def solve(self, spec: ProblemSpec) -> SolveResult:
        if isinstance(spec, GatheringProblem):
            # No vectorized gathering path yet: fall back per-spec to the
            # scalar engine, stamping the backend that actually ran.
            return SimulationBackend().solve(spec)
        fault = getattr(spec, "fault_model", None)
        if fault is not None and fault.is_fault:
            # Fault injection rewrites trajectories per spec, which the
            # shared-compiled-trajectory kernel cannot express; the
            # scalar fault path solves it and provenance names it.
            return SimulationBackend().solve(spec)
        return super().solve(spec)

    def _solve(self, spec: ProblemSpec) -> dict[str, Any]:
        if isinstance(spec, SearchProblem):
            report = solve_search(spec.to_instance(), simulate=kernel_simulate_search)
            return search_report_fields(spec, report)
        if isinstance(spec, RendezvousProblem):
            report = solve_rendezvous(
                spec.to_instance(),
                horizon=spec.horizon,
                allow_infeasible=spec.allow_infeasible,
                simulate=kernel_simulate_rendezvous,
            )
            return rendezvous_report_fields(spec, report)
        raise _unsupported(self, spec)

    # -- batches --------------------------------------------------------------
    def solve_specs(self, specs: Iterable[ProblemSpec]) -> list[SolveResult]:
        """Solve a batch, routing search groups through the batch kernel.

        Search specs are homogeneous by construction (the searcher always
        carries the reference attributes), so they are solved in one
        kernel call; rendezvous and gathering specs solve per spec.
        Results come back in input order.
        """
        return route_search_batch(list(specs), self._solve_search_batch, self.solve)

    def batchable_indices(self, specs: Iterable[ProblemSpec]) -> list[int]:
        """Indices :meth:`solve_specs` would solve in one kernel call."""
        return batchable_search_group(list(specs))

    def _solve_search_batch(self, specs: Sequence[SearchProblem]) -> list[SolveResult]:
        """One kernel call for a whole search batch.

        Mirrors :func:`repro.core.search.solve_search` spec by spec:
        same default algorithm, same bound-derived horizon (safety factor
        1.25) and the same ``HorizonExceededError`` on an unsolved run.
        """
        start = time.perf_counter()
        algorithm = UniversalSearch()
        instances = [spec.to_instance() for spec in specs]
        bounds = [
            theorem1_search_bound(instance.distance, instance.visibility)
            for instance in instances
        ]
        horizons = [bound_multiple_horizon(bound, 1.25) for bound in bounds]
        outcomes = simulate_search_batch(algorithm, instances, horizons)
        wall_share = (time.perf_counter() - start) / max(len(specs), 1)

        results = []
        for spec, instance, bound, outcome in zip(specs, instances, bounds, outcomes):
            if not outcome.solved:
                raise HorizonExceededError(
                    outcome.horizon,
                    f"search did not finish within the horizon {outcome.horizon:g} "
                    f"({algorithm.describe()}, {instance.describe()})",
                )
            report = SearchReport(
                instance=instance,
                algorithm_name=algorithm.describe(),
                outcome=outcome,
                bound=bound,
                guaranteed_round=guaranteed_discovery_round(
                    instance.distance, instance.visibility
                ),
            )
            # The fields match what a single-spec solve of the same spec
            # produces, so envelopes are batch-size independent and the
            # result cache stays coherent.
            fields = search_report_fields(spec, report)
            spec_hash = spec.canonical_hash()
            provenance = Provenance(
                backend=self.name,
                fidelity=self.fidelity,
                spec_hash=spec_hash,
                seed=ProblemSpec.seed_from_hash(spec_hash),
                schema_version=SCHEMA_VERSION,
                wall_time=wall_share,
            )
            results.append(SolveResult(spec=spec, provenance=provenance, **fields))
        return results


register_backend(VectorizedBackend.name, VectorizedBackend)
