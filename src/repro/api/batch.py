"""Batched solving: the facade's throughput path.

A :class:`BatchRunner` turns an iterable of specs into a list of
:class:`~repro.api.result.SolveResult` envelopes, with three throughput
levers on top of the single-spec facade:

* **result cache** -- an LRU keyed by ``(backend, canonical spec hash)``;
  sweep workloads revisit the same spec (warm-up rows, shared baselines)
  and pay for it once.
* **persistent store** -- an optional
  :class:`~repro.api.store.ResultStore` tier below the LRU: envelopes
  solved in any previous process answer from disk
  (``BatchStats.solved_from_store``), and everything solved here is
  recorded for the next run.  Served envelopes carry
  ``provenance.from_store = True`` (fingerprint-neutral, see
  :meth:`~repro.api.result.SolveResult.fingerprint`).
* **multiprocessing** -- cache misses fan out over a worker pool in
  chunks; specs and results cross process boundaries in their JSON-dict
  form, so only the stable wire format is pickled.  Only the untouched
  built-in backends fan out: a backend registered -- or a built-in name
  replaced -- at runtime would not resolve the same way in a freshly
  spawned worker's registry, so such backends always solve in-process.
* **deterministic seeding** -- every spec carries a seed derived from its
  canonical hash (see :meth:`~repro.api.spec.ProblemSpec.seed`),
  recorded in the result provenance; the built-in backends are fully
  deterministic, so a batch produces identical result fingerprints
  whether it runs serially, pooled, or split across machines.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Optional, Sequence, Union

from ..errors import InvalidParameterError
from .backends import _REGISTRY as _BACKEND_REGISTRY
from .backends import AnalyticBackend, AutoBackend, SimulationBackend, create_backend, solve
from .result import SolveResult
from .spec import ProblemSpec, spec_from_dict
from .store import ResultStore
from .vectorized import VectorizedBackend

__all__ = ["BatchStats", "BatchRunner", "solve_batch"]

#: The import-time backend registrations.  A worker process re-imports the
#: module and sees exactly these; any runtime registration or replacement
#: would be invisible there, so such backends must solve in-process.
_BUILTIN_FACTORIES = {
    AnalyticBackend.name: AnalyticBackend,
    SimulationBackend.name: SimulationBackend,
    AutoBackend.name: AutoBackend,
    VectorizedBackend.name: VectorizedBackend,
}


def _pool_safe(backend: str) -> bool:
    """True when ``backend`` resolves identically in a fresh worker."""
    return _BACKEND_REGISTRY.get(backend) is _BUILTIN_FACTORIES.get(backend)


def _solve_serialized(payload: tuple[str, dict[str, Any]]) -> dict[str, Any]:
    """Pool worker: solve one spec shipped as its wire-format dict."""
    backend_name, spec_dict = payload
    spec = spec_from_dict(spec_dict)
    return solve(spec, backend=backend_name).to_dict()


@dataclass(frozen=True, slots=True)
class BatchStats:
    """Bookkeeping for one :meth:`BatchRunner.run` call."""

    total: int
    unique: int
    cache_hits: int
    solved_in_pool: int
    processes: int
    chunksize: int
    wall_time: float
    #: Misses solved through a batch-capable backend's ``solve_specs``
    #: (the vectorized kernel path) instead of per-spec calls.
    solved_in_batch: int = 0
    #: Unique keys answered by the persistent result store tier.
    solved_from_store: int = 0

    @property
    def specs_per_second(self) -> float:
        """End-to-end throughput of the batch (including cache hits)."""
        if self.wall_time <= 0.0:
            return float("inf")
        return self.total / self.wall_time

    @property
    def solved_fresh(self) -> int:
        """Unique keys actually solved in this run (no cache, no store)."""
        return self.unique - self.cache_hits - self.solved_from_store

    @property
    def hit_rate(self) -> float:
        """Fraction of unique keys answered without solving (LRU + store)."""
        if self.unique <= 0:
            return 0.0
        return (self.cache_hits + self.solved_from_store) / self.unique

    def describe(self) -> str:
        """One-line human readable summary."""
        modes = []
        if self.solved_in_batch:
            modes.append(f"batched ({self.solved_in_batch})")
        if self.solved_in_pool or not self.solved_in_batch:
            modes.append(f"{self.processes} process(es), chunksize {self.chunksize}")
        return (
            f"{self.total} specs ({self.unique} unique, {self.cache_hits} cache hits, "
            f"{self.solved_from_store} store hits, hit rate {self.hit_rate:.0%}) "
            f"in {self.wall_time:.3f}s = {self.specs_per_second:.1f} specs/s "
            f"[{'; '.join(modes)}]"
        )


class BatchRunner:
    """Solve iterables of specs with caching and optional worker pools.

    Args:
        backend: backend name every spec is solved with (``"auto"`` by
            default; any registered name works).
        processes: worker-pool size; ``None`` or ``1`` solves serially in
            this process.
        chunksize: specs per pool task; defaults to an even split across
            ``4 * processes`` waves (bounds scheduling overhead without
            starving the pool on skewed workloads).
        cache_size: maximum number of results kept in the LRU cache
            (``0`` disables caching).
        store: persistent result tier below the LRU -- a
            :class:`~repro.api.store.ResultStore`, or a directory path to
            open one at.  Misses are looked up there before solving, and
            fresh results are recorded for future runs.
    """

    def __init__(
        self,
        backend: str = "auto",
        processes: Optional[int] = None,
        chunksize: Optional[int] = None,
        cache_size: int = 4096,
        store: Union[ResultStore, str, Path, None] = None,
    ) -> None:
        if processes is not None and processes < 1:
            raise InvalidParameterError(f"processes must be >= 1, got {processes!r}")
        if chunksize is not None and chunksize < 1:
            raise InvalidParameterError(f"chunksize must be >= 1, got {chunksize!r}")
        if cache_size < 0:
            raise InvalidParameterError(f"cache_size must be >= 0, got {cache_size!r}")
        self.backend = backend
        self.processes = processes
        self.chunksize = chunksize
        self.cache_size = cache_size
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store: Optional[ResultStore] = store
        self._cache: OrderedDict[tuple[str, str], SolveResult] = OrderedDict()

    # -- cache -----------------------------------------------------------------
    def clear_cache(self) -> None:
        """Drop every cached result."""
        self._cache.clear()

    @property
    def cache_len(self) -> int:
        """Number of results currently cached."""
        return len(self._cache)

    def _cache_get(self, key: tuple[str, str]) -> Optional[SolveResult]:
        result = self._cache.get(key)
        if result is not None:
            self._cache.move_to_end(key)
        return result

    def _cache_put(self, key: tuple[str, str], result: SolveResult) -> None:
        if self.cache_size == 0:
            return
        self._cache[key] = result
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def _record_solved(self, key: tuple[str, str], result: SolveResult) -> None:
        """File one freshly solved result with the LRU and the store tier."""
        self._cache_put(key, result)
        if self.store is not None:
            self.store.put(key[0], result)

    # -- solving ---------------------------------------------------------------
    def solve_many(
        self, specs: Iterable[ProblemSpec], backend: Optional[str] = None
    ) -> list[SolveResult]:
        """Solve every spec, in input order (see :meth:`run` for stats)."""
        return self.run(specs, backend=backend)[0]

    def run(
        self, specs: Iterable[ProblemSpec], backend: Optional[str] = None
    ) -> tuple[list[SolveResult], BatchStats]:
        """Solve every spec and report batch statistics.

        Duplicate specs (equal canonical hash) are solved once.  The
        returned list matches the input order and length exactly.

        Args:
            specs: the problems to solve.
            backend: per-call backend override; defaults to the runner's
                configured backend.  The LRU and the store key by the
                effective backend name, so one shared runner can serve
                callers with different fidelity needs without mixing
                their results.
        """
        effective = backend if backend is not None else self.backend
        spec_list: Sequence[ProblemSpec] = list(specs)
        start = time.perf_counter()
        keys = [(effective, spec.canonical_hash()) for spec in spec_list]

        resolved: dict[tuple[str, str], SolveResult] = {}
        lru_misses: list[tuple[tuple[str, str], ProblemSpec]] = []
        cache_hits = 0
        store_hits = 0
        for key, spec in zip(keys, spec_list):
            if key in resolved:
                continue
            cached = self._cache_get(key)
            if cached is not None:
                resolved[key] = cached
                cache_hits += 1
                continue
            resolved[key] = None  # type: ignore[assignment]  # placeholder, filled below
            lru_misses.append((key, spec))
        # The store tier answers LRU misses in one batched read (one file
        # open per segment) before anything is solved.
        misses = lru_misses
        if self.store is not None and lru_misses:
            stored_map = self.store.get_many(effective, [key[1] for key, _ in lru_misses])
            misses = []
            for key, spec in lru_misses:
                stored = stored_map.get(key[1])
                if stored is not None:
                    resolved[key] = stored
                    self._cache_put(key, stored)
                    store_hits += 1
                else:
                    misses.append((key, spec))

        backend_obj = create_backend(effective)
        # A backend exposing ``solve_specs`` solves homogeneous groups
        # array-at-a-time (vectorized kernel, auto routing).  Only the
        # group the backend reports as batchable skips the pool; the
        # remaining misses still fan out when a pool was requested, so a
        # mixed workload gets the kernel *and* the requested parallelism.
        batch_misses: list[tuple[tuple[str, str], ProblemSpec]] = []
        rest = misses
        if hasattr(backend_obj, "solve_specs") and len(misses) > 1:
            if hasattr(backend_obj, "batchable_indices"):
                indices = set(backend_obj.batchable_indices([spec for _, spec in misses]))
            else:
                # A custom batch backend with no batchability report
                # takes the whole miss list, as before.
                indices = set(range(len(misses)))
            if len(indices) >= 2:
                batch_misses = [miss for i, miss in enumerate(misses) if i in indices]
                rest = [miss for i, miss in enumerate(misses) if i not in indices]

        processes = self.processes or 1
        use_pool = processes > 1 and len(rest) > 1 and _pool_safe(effective)
        chunksize = self.chunksize or max(1, len(rest) // (4 * processes) or 1)
        solved_in_pool = 0
        solved_in_batch = 0
        pool = None
        pending = None
        try:
            if use_pool:
                # Dispatch the pool before the in-process kernel batch so
                # the two run concurrently instead of back to back.
                import multiprocessing

                payloads = [(effective, spec.to_dict()) for _, spec in rest]
                pool = multiprocessing.Pool(processes)
                pending = pool.map_async(_solve_serialized, payloads, chunksize=chunksize)
            if batch_misses:
                batch_results = backend_obj.solve_specs([spec for _, spec in batch_misses])
                for (key, _), result in zip(batch_misses, batch_results):
                    resolved[key] = result
                    self._record_solved(key, result)
                solved_in_batch = len(batch_misses)
            if pending is not None:
                raw = pending.get()
                for (key, _), data in zip(rest, raw):
                    result = SolveResult.from_dict(data)
                    resolved[key] = result
                    self._record_solved(key, result)
                solved_in_pool = len(rest)
            elif rest:
                for key, spec in rest:
                    result = backend_obj.solve(spec)
                    resolved[key] = result
                    self._record_solved(key, result)
        finally:
            if pool is not None:
                pool.close()
                pool.join()
            if self.store is not None:
                self.store.flush()

        wall_time = time.perf_counter() - start
        stats = BatchStats(
            total=len(spec_list),
            unique=len(resolved),
            cache_hits=cache_hits,
            solved_in_pool=solved_in_pool,
            processes=processes if use_pool else 1,
            chunksize=chunksize if use_pool else 1,
            wall_time=wall_time,
            solved_in_batch=solved_in_batch,
            solved_from_store=store_hits,
        )
        return [resolved[key] for key in keys], stats


def solve_batch(
    specs: Iterable[ProblemSpec],
    backend: str = "auto",
    processes: Optional[int] = None,
) -> list[SolveResult]:
    """One-shot convenience wrapper around a throwaway :class:`BatchRunner`."""
    return BatchRunner(backend=backend, processes=processes).solve_many(specs)
