"""Batched solving: the facade's throughput path.

A :class:`BatchRunner` turns an iterable of specs into
:class:`~repro.api.result.SolveResult` envelopes.  Since the
planner/executor split it is a thin facade over :mod:`repro.exec`:

* **planning** -- :meth:`BatchRunner.plan` asks a
  :class:`~repro.exec.plan.Planner` to dedupe the input and tier it:
  LRU hits, persistent-store hits, the kernel-batchable group, the
  pool-eligible group and the serial leftovers, captured as a frozen
  :class:`~repro.exec.plan.ExecutionPlan`;
* **execution** -- an :class:`~repro.exec.executors.Executor` strategy
  consumes the plan and emits
  :class:`~repro.exec.plan.Completion` objects in completion order.
  :meth:`BatchRunner.run_iter` exposes that stream directly (per-result
  latency included); :meth:`BatchRunner.run` collects it, counts the
  sources into :class:`BatchStats` and reorders by the plan's key
  sequence -- the exact pre-split return contract.

The throughput levers are unchanged: the LRU keyed by ``(backend,
canonical spec hash)``, the optional persistent
:class:`~repro.api.store.ResultStore` tier below it, the vectorized
kernel for batchable groups, multiprocessing fan-out for the rest, and
hash-derived deterministic seeding, so a batch produces identical result
fingerprints whether it runs serially, pooled, threaded or split across
machines.  Per-spec failures no longer abort a batch: everything that
solves is retained (and flushed to the store) and the failures surface
together as a :class:`~repro.errors.BatchExecutionError` naming each
failing spec hash.

The runner is **thread-safe**: the LRU and planning run under an
internal lock, so one shared runner can serve many request threads (the
:mod:`repro.service` tier builds on exactly this).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence, Union

from ..errors import BatchExecutionError, InvalidParameterError
from ..faults.montecarlo import MonteCarloBackend
from ..exec import (
    Completion,
    ExecutionPlan,
    Executor,
    Planner,
    PoolExecutor,
    SerialExecutor,
)
from .backends import _REGISTRY as _BACKEND_REGISTRY
from .backends import AnalyticBackend, AutoBackend, SimulationBackend, create_backend
from .result import SolveResult
from .spec import ProblemSpec
from .store import ResultStore
from .vectorized import VectorizedBackend

__all__ = ["BatchStats", "BatchRunner", "solve_batch"]

#: The import-time backend registrations.  A worker process re-imports the
#: module and sees exactly these; any runtime registration or replacement
#: would be invisible there, so such backends must solve in-process.
_BUILTIN_FACTORIES = {
    AnalyticBackend.name: AnalyticBackend,
    SimulationBackend.name: SimulationBackend,
    AutoBackend.name: AutoBackend,
    VectorizedBackend.name: VectorizedBackend,
    MonteCarloBackend.name: MonteCarloBackend,
}


def _pool_safe(backend: str) -> bool:
    """True when ``backend`` resolves identically in a fresh worker."""
    return _BACKEND_REGISTRY.get(backend) is _BUILTIN_FACTORIES.get(backend)


@dataclass(frozen=True, slots=True)
class BatchStats:
    """Bookkeeping for one :meth:`BatchRunner.run` call."""

    total: int
    unique: int
    cache_hits: int
    solved_in_pool: int
    processes: int
    chunksize: int
    wall_time: float
    #: Misses solved through a batch-capable backend's ``solve_specs``
    #: (the vectorized kernel path) instead of per-spec calls.
    solved_in_batch: int = 0
    #: Unique keys answered by the persistent result store tier.
    solved_from_store: int = 0

    @property
    def specs_per_second(self) -> float:
        """End-to-end throughput of the batch (including cache hits)."""
        if self.wall_time <= 0.0:
            return float("inf")
        return self.total / self.wall_time

    @property
    def solved_fresh(self) -> int:
        """Unique keys actually solved in this run (no cache, no store)."""
        return self.unique - self.cache_hits - self.solved_from_store

    @property
    def hit_rate(self) -> float:
        """Fraction of unique keys answered without solving (LRU + store)."""
        if self.unique <= 0:
            return 0.0
        return (self.cache_hits + self.solved_from_store) / self.unique

    def describe(self) -> str:
        """One-line human readable summary."""
        modes = []
        if self.solved_in_batch:
            modes.append(f"batched ({self.solved_in_batch})")
        if self.solved_in_pool or not self.solved_in_batch:
            modes.append(f"{self.processes} process(es), chunksize {self.chunksize}")
        return (
            f"{self.total} specs ({self.unique} unique, {self.cache_hits} cache hits, "
            f"{self.solved_from_store} store hits, hit rate {self.hit_rate:.0%}) "
            f"in {self.wall_time:.3f}s = {self.specs_per_second:.1f} specs/s "
            f"[{'; '.join(modes)}]"
        )


class BatchRunner:
    """Solve iterables of specs with caching and pluggable execution.

    Args:
        backend: backend name every spec is solved with (``"auto"`` by
            default; any registered name works).
        processes: worker-pool size; ``None`` or ``1`` solves serially in
            this process.
        chunksize: specs per pool task; defaults to an even split across
            ``4 * processes`` waves (bounds scheduling overhead without
            starving the pool on skewed workloads).
        cache_size: maximum number of results kept in the LRU cache
            (``0`` disables caching).
        store: persistent result tier below the LRU -- a
            :class:`~repro.api.store.ResultStore`, or a directory path to
            open one at.  Misses are looked up there before solving, and
            fresh results are recorded for future runs.
        executor: execution strategy override (any
            :class:`~repro.exec.executors.Executor`); by default each
            plan picks :class:`~repro.exec.executors.PoolExecutor` when
            it has a pooled tier and
            :class:`~repro.exec.executors.SerialExecutor` otherwise.
        flush_store: flush the store after every run/stream (the
            default).  A long-lived server sets this False and flushes
            on drain, so one segment is published per session instead of
            per request.
    """

    def __init__(
        self,
        backend: str = "auto",
        processes: Optional[int] = None,
        chunksize: Optional[int] = None,
        cache_size: int = 4096,
        store: Union[ResultStore, str, Path, None] = None,
        executor: Optional[Executor] = None,
        flush_store: bool = True,
    ) -> None:
        if processes is not None and processes < 1:
            raise InvalidParameterError(f"processes must be >= 1, got {processes!r}")
        if chunksize is not None and chunksize < 1:
            raise InvalidParameterError(f"chunksize must be >= 1, got {chunksize!r}")
        if cache_size < 0:
            raise InvalidParameterError(f"cache_size must be >= 0, got {cache_size!r}")
        self.backend = backend
        self.processes = processes
        self.chunksize = chunksize
        self.cache_size = cache_size
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store: Optional[ResultStore] = store
        self.executor = executor
        self.flush_store = flush_store
        self._cache: OrderedDict[tuple[str, str], SolveResult] = OrderedDict()
        # Guards the LRU and planning; execution runs outside it, so
        # many threads can share one runner and still solve concurrently.
        self._lock = threading.RLock()

    # -- cache -----------------------------------------------------------------
    def clear_cache(self) -> None:
        """Drop every cached result."""
        with self._lock:
            self._cache.clear()

    @property
    def cache_len(self) -> int:
        """Number of results currently cached."""
        with self._lock:
            return len(self._cache)

    def _cache_get(self, key: tuple[str, str]) -> Optional[SolveResult]:
        with self._lock:
            result = self._cache.get(key)
            if result is not None:
                self._cache.move_to_end(key)
            return result

    def _cache_put(self, key: tuple[str, str], result: SolveResult) -> None:
        if self.cache_size == 0:
            return
        with self._lock:
            self._cache[key] = result
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)

    def _record_solved(self, key: tuple[str, str], result: SolveResult) -> None:
        """File one freshly solved result with the LRU and the store tier."""
        self._cache_put(key, result)
        if self.store is not None:
            self.store.put(key[0], result)

    # -- planning --------------------------------------------------------------
    def plan(
        self,
        specs: Sequence[ProblemSpec],
        backend: Optional[str] = None,
        backend_obj: Optional[Any] = None,
    ) -> ExecutionPlan:
        """Plan one batch without executing it.

        Resolves the LRU and store tiers eagerly (store hits are
        promoted into the LRU, exactly as the monolithic ``run`` did)
        and tiers the remaining misses; see
        :class:`~repro.exec.plan.ExecutionPlan`.
        """
        effective = backend if backend is not None else self.backend
        if backend_obj is None:
            backend_obj = create_backend(effective)
        planner = Planner(
            cache_get=self._cache_get if self.cache_size else None,
            store=self.store,
            processes=self.processes,
            chunksize=self.chunksize,
            pool_safe=_pool_safe,
        )
        with self._lock:
            plan = planner.plan(specs, effective, backend_obj=backend_obj)
            for resolved in plan.stored:
                self._cache_put(resolved.key, resolved.result)
        return plan

    # -- execution -------------------------------------------------------------
    def _executor_for(self, plan: ExecutionPlan) -> Executor:
        if self.executor is not None:
            return self.executor
        return PoolExecutor() if plan.use_pool else SerialExecutor()

    def execute_iter(
        self, plan: ExecutionPlan, backend_obj: Optional[Any] = None
    ) -> Iterator[Completion]:
        """Execute a plan, streaming completions in completion order.

        Fresh results are recorded into the LRU and the store as they
        stream past; the store is flushed when the stream ends (also on
        early close), unless the runner was built with
        ``flush_store=False``.
        """
        executor = self._executor_for(plan)
        try:
            for completion in executor.execute(plan, backend_obj=backend_obj):
                if completion.result is not None and completion.source not in (
                    "cache",
                    "store",
                ):
                    self._record_solved(completion.key, completion.result)
                yield completion
        finally:
            if self.store is not None and self.flush_store:
                self.store.flush()

    def run_iter(
        self, specs: Iterable[ProblemSpec], backend: Optional[str] = None
    ) -> Iterator[Completion]:
        """Stream one :class:`~repro.exec.plan.Completion` per unique key.

        Completions arrive in **completion order** (cache and store hits
        first, then solves as they finish) with per-result latency --
        the streaming form :meth:`run` is reconstructed from.  Duplicate
        input specs share their unique key's single completion; use
        :meth:`plan` + :meth:`execute_iter` directly when the key
        sequence is needed for reassembly.
        """
        effective = backend if backend is not None else self.backend
        backend_obj = create_backend(effective)
        plan = self.plan(list(specs), backend=effective, backend_obj=backend_obj)
        return self.execute_iter(plan, backend_obj=backend_obj)

    def solve_many(
        self, specs: Iterable[ProblemSpec], backend: Optional[str] = None
    ) -> list[SolveResult]:
        """Solve every spec, in input order (see :meth:`run` for stats)."""
        return self.run(specs, backend=backend)[0]

    def run(
        self,
        specs: Iterable[ProblemSpec],
        backend: Optional[str] = None,
        on_completion: Optional[Callable[[Completion], None]] = None,
    ) -> tuple[list[SolveResult], BatchStats]:
        """Solve every spec and report batch statistics.

        Duplicate specs (equal canonical hash) are solved once.  The
        returned list matches the input order and length exactly.  This
        is literally a collect-and-reorder over the streaming pipeline:
        drain the completion stream, count each source into the stats
        partition, reassemble through the plan's key sequence.

        Args:
            specs: the problems to solve.
            backend: per-call backend override; defaults to the runner's
                configured backend.  The LRU and the store key by the
                effective backend name, so one shared runner can serve
                callers with different fidelity needs without mixing
                their results.
            on_completion: optional observer invoked with every
                :class:`~repro.exec.plan.Completion` as it happens --
                streaming progress without giving up the ordered return.

        Raises:
            BatchExecutionError: when any spec failed.  Raised only
                after the whole batch ran: every solved result is
                already in the LRU/store (and on the exception's
                ``completed`` mapping), so a retry re-attempts only the
                failures.
        """
        effective = backend if backend is not None else self.backend
        spec_list: Sequence[ProblemSpec] = list(specs)
        start = time.perf_counter()
        backend_obj = create_backend(effective)
        plan = self.plan(spec_list, backend=effective, backend_obj=backend_obj)

        resolved: dict[tuple[str, str], SolveResult] = {}
        failures = []
        counts = {"cache": 0, "store": 0, "batch": 0, "pool": 0, "serial": 0}
        for completion in self.execute_iter(plan, backend_obj=backend_obj):
            if completion.result is not None:
                resolved[completion.key] = completion.result
                counts[completion.source] += 1
            else:
                failures.append(completion.failure)
            if on_completion is not None:
                on_completion(completion)

        wall_time = time.perf_counter() - start
        stats = BatchStats(
            total=plan.total,
            unique=plan.unique,
            cache_hits=counts["cache"],
            solved_in_pool=counts["pool"],
            processes=plan.processes,
            chunksize=plan.chunksize,
            wall_time=wall_time,
            solved_in_batch=counts["batch"],
            solved_from_store=counts["store"],
        )
        if failures:
            if plan.unique == 1 and failures[0].exception is not None:
                # A batch of one keeps the historical single-spec
                # contract: the backend's own exception, not a wrapper
                # (what `solve()` would have raised; the serving tier
                # relies on this for clean per-request errors).
                raise failures[0].exception
            error = BatchExecutionError(failures, completed=resolved)
            error.stats = stats
            raise error
        return [resolved[key] for key in plan.keys], stats


def solve_batch(
    specs: Iterable[ProblemSpec],
    backend: str = "auto",
    processes: Optional[int] = None,
    chunksize: Optional[int] = None,
    cache_size: int = 4096,
    store: Union[ResultStore, str, Path, None] = None,
) -> list[SolveResult]:
    """One-shot convenience wrapper around a throwaway :class:`BatchRunner`.

    Passes every runner capability through -- ``store`` (persistent
    tier), ``chunksize`` (pool task sizing) and ``cache_size`` (LRU
    bound) used to be silently dropped here.
    """
    runner = BatchRunner(
        backend=backend,
        processes=processes,
        chunksize=chunksize,
        cache_size=cache_size,
        store=store,
    )
    return runner.solve_many(specs)
