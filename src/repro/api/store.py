"""Persistent, content-addressed result store.

The in-memory LRU of :class:`~repro.api.batch.BatchRunner` evaporates
with the process; this module is the durable tier below it.  A
:class:`ResultStore` is an append-only log of :class:`SolveResult`
envelopes in their JSON wire form, content-addressed by

    ``(schema_version, requested backend name, canonical spec hash)``

-- the same key the LRU uses, so a stored envelope answers exactly the
requests the LRU would have answered.  Because the backends are
deterministic and envelopes fingerprint-identically across processes
(see :meth:`SolveResult.fingerprint`), a cached envelope is safe to
reuse across processes, machines and CI runs.

Layout and concurrency
----------------------

A store is a directory of JSONL *segment* files plus an in-memory index
mapping keys to ``(segment, byte offset, length)`` -- envelopes stay on
disk until asked for, so the index of a million-record store is small.
Writers buffer ``put`` calls and publish them as a brand-new segment via
write-to-temp + ``os.replace`` (atomic on POSIX): readers never observe
a half-written segment, and concurrent writer *processes* never share a
file (segment names embed the pid and a random token).  Reads are
tolerant anyway: a truncated or corrupt trailing record -- e.g. from a
writer killed mid-``flush`` on a filesystem that reordered the rename --
is skipped with a warning, never a crash.

Duplicate keys (two processes solving the same spec) are resolved
last-record-wins during indexing; the backends' determinism makes the
choice immaterial for honest duplicates, and for a damaged record it
lets a later re-solve supersede it (a malformed stored envelope is also
evicted from the index on first read, so the key heals instead of
staying poisoned).  ``gc()`` compacts all live records into a single
fresh segment and drops superseded ones; ``export``/``import_file``
ship a warm cache between machines as one JSONL file.
"""

from __future__ import annotations

import json
import os
import threading
import uuid
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterator, NamedTuple, Optional, Union

from ..errors import InvalidParameterError
from .result import SolveResult
from .spec import SCHEMA_VERSION, ProblemSpec

__all__ = ["StoreKey", "StoreStats", "ResultStore"]

_SEGMENT_GLOB = "segment-*.jsonl"


class StoreKey(NamedTuple):
    """The content address of one stored envelope."""

    schema_version: int
    backend: str
    spec_hash: str


class _Location(NamedTuple):
    """Where a record's line lives on disk."""

    segment: Path
    offset: int
    length: int


@dataclass(frozen=True, slots=True)
class StoreStats:
    """A snapshot of one store's on-disk and indexed state."""

    path: str
    segments: int
    records: int
    unique: int
    duplicates: int
    skipped_lines: int
    pending: int
    total_bytes: int
    backends: dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        """One-line human readable summary."""
        per_backend = ", ".join(
            f"{name}: {count}" for name, count in sorted(self.backends.items())
        )
        return (
            f"{self.unique} unique results in {self.segments} segment(s) "
            f"({self.records} records, {self.duplicates} duplicates, "
            f"{self.skipped_lines} skipped lines, {self.pending} pending, "
            f"{self.total_bytes} bytes) [{per_backend or 'empty'}] at {self.path}"
        )


def _parse_record(line: str) -> Optional[tuple[StoreKey, dict[str, Any]]]:
    """Decode one JSONL record; None when the line is corrupt or foreign."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(data, dict):
        return None
    backend = data.get("backend")
    spec_hash = data.get("spec_hash")
    envelope = data.get("result")
    if (
        data.get("schema_version") != SCHEMA_VERSION
        or not isinstance(backend, str)
        or not isinstance(spec_hash, str)
        or not isinstance(envelope, dict)
    ):
        return None
    return StoreKey(SCHEMA_VERSION, backend, spec_hash), envelope


class ResultStore:
    """Append-only, content-addressed store of solve-result envelopes.

    Args:
        path: store directory (created on demand).
        flush_every: pending ``put`` count that triggers an automatic
            segment flush (long runs publish progress as they go; an
            interrupted run loses at most the unflushed tail).

    A store is also a context manager: leaving the ``with`` block
    flushes pending records.
    """

    def __init__(self, path: Union[str, Path], flush_every: int = 256) -> None:
        if flush_every < 1:
            raise InvalidParameterError(f"flush_every must be >= 1, got {flush_every!r}")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.flush_every = flush_every
        self._index: dict[StoreKey, _Location] = {}
        self._seen_segments: set[str] = set()
        self._pending: list[tuple[StoreKey, str]] = []
        self._pending_keys: dict[StoreKey, int] = {}
        self._records = 0
        self._duplicates = 0
        self._skipped_lines = 0
        self._segment_seq = 0
        # Guards the put buffer and the index mutations of flush():
        # concurrent threads sharing one store handle (a thread-safe
        # BatchRunner, the serving tier) buffer and publish atomically.
        # Re-entrant because put_envelope triggers flush at the
        # flush_every watermark.
        self._write_lock = threading.RLock()
        self.refresh()

    # -- lifecycle -------------------------------------------------------------
    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.flush()

    def __len__(self) -> int:
        with self._write_lock:
            return len(self._index) + len(self._pending_keys)

    # -- reading ---------------------------------------------------------------
    def refresh(self) -> int:
        """Index segments that appeared since the last scan (other writers).

        Returns the number of newly indexed unique keys.
        """
        with self._write_lock:
            before = len(self._index)
            for segment in sorted(self.path.glob(_SEGMENT_GLOB)):
                if segment.name in self._seen_segments:
                    continue
                self._seen_segments.add(segment.name)
                self._load_segment(segment)
            return len(self._index) - before

    def _load_segment(self, segment: Path) -> None:
        try:
            raw = segment.read_bytes()
        except OSError as error:  # pragma: no cover - disk-level failure
            warnings.warn(f"result store: cannot read segment {segment}: {error}")
            return
        offset = 0
        bad_lines = 0
        with self._write_lock:  # reentrant: refresh()/gc() already hold it
            for chunk in raw.split(b"\n"):
                length = len(chunk)
                if chunk.strip():
                    parsed = None
                    try:
                        parsed = _parse_record(chunk.decode("utf-8"))
                    except UnicodeDecodeError:
                        parsed = None
                    if parsed is None:
                        bad_lines += 1
                        self._skipped_lines += 1
                    else:
                        key, _ = parsed
                        self._records += 1
                        if key in self._index:
                            self._duplicates += 1
                        # Last record wins: honest duplicates are identical
                        # (deterministic backends), and a later re-solve
                        # supersedes a damaged earlier record.
                        self._index[key] = _Location(segment, offset, length)
                offset += length + 1
        if bad_lines:
            warnings.warn(
                f"result store: skipped {bad_lines} corrupt/truncated line(s) "
                f"in segment {segment.name}"
            )

    def contains(self, backend: str, spec_hash: str) -> bool:
        """True when an envelope for this key is stored (or pending)."""
        key = StoreKey(SCHEMA_VERSION, backend, spec_hash)
        with self._write_lock:
            return key in self._index or key in self._pending_keys

    def get_envelope(self, backend: str, spec_hash: str) -> Optional[dict[str, Any]]:
        """The stored wire-format envelope for a key, or None."""
        key = StoreKey(SCHEMA_VERSION, backend, spec_hash)
        # Snapshot under the lock: a concurrent watermark flush() clears
        # the pending buffer while publishing it as a segment, so a
        # pending index read outside the lock could dereference the
        # wrong (or a vanished) buffer slot.  Published segments are
        # immutable, so the disk read itself needs no lock.
        with self._write_lock:
            pending = self._pending_keys.get(key)
            line_text = self._pending[pending][1] if pending is not None else None
            location = self._index.get(key)
        if line_text is not None:
            parsed = _parse_record(line_text)
            return parsed[1] if parsed else None
        if location is None:
            return None
        try:
            with location.segment.open("rb") as handle:
                handle.seek(location.offset)
                line = handle.read(location.length)
        except OSError:
            return None
        parsed = _parse_record(line.decode("utf-8", errors="replace"))
        return parsed[1] if parsed else None

    def _result_from_envelope(
        self, key: StoreKey, envelope: dict[str, Any]
    ) -> Optional[SolveResult]:
        """Materialise a stored envelope, marking and healing as needed."""
        try:
            result = SolveResult.from_dict(envelope)
        except (InvalidParameterError, TypeError, KeyError) as error:
            warnings.warn(
                f"result store: ignoring malformed stored envelope for "
                f"{key.backend}:{key.spec_hash[:12]}: {error}"
            )
            # Evict the damaged record so a fresh solve can re-put the
            # key; with last-record-wins indexing the replacement also
            # survives reopen instead of the key staying poisoned.
            with self._write_lock:
                self._index.pop(key, None)
            return None
        return replace(result, provenance=replace(result.provenance, from_store=True))

    def get_by_hash(self, backend: str, spec_hash: str) -> Optional[SolveResult]:
        """The stored result for a key, provenance-marked ``from_store``."""
        return self.get_many(backend, (spec_hash,)).get(spec_hash)

    def get_many(
        self, backend: str, spec_hashes: Iterable[str]
    ) -> dict[str, SolveResult]:
        """Stored results for many keys, reading each segment file once.

        The hot path of a warm batch replay: misses grouped per segment
        and read in offset order cost one ``open`` per segment instead of
        one per record.  Keys that are absent or malformed (the latter
        evicted, see :meth:`get_by_hash`) are missing from the mapping.
        """
        results: dict[str, SolveResult] = {}
        by_segment: dict[Path, list[tuple[StoreKey, _Location]]] = {}
        pending_lines: list[tuple[StoreKey, str]] = []
        # Snapshot pending lines and index locations under the lock (a
        # concurrent watermark flush republishes the pending buffer);
        # segment files are immutable once published, so the bulk disk
        # reads stay outside it.
        with self._write_lock:
            for spec_hash in spec_hashes:
                key = StoreKey(SCHEMA_VERSION, backend, spec_hash)
                pending = self._pending_keys.get(key)
                if pending is not None:
                    pending_lines.append((key, self._pending[pending][1]))
                    continue
                location = self._index.get(key)
                if location is not None:
                    by_segment.setdefault(location.segment, []).append((key, location))
        for key, line_text in pending_lines:
            parsed = _parse_record(line_text)
            if parsed is not None:
                result = self._result_from_envelope(key, parsed[1])
                if result is not None:
                    results[key.spec_hash] = result
        for segment in sorted(by_segment):
            records = sorted(by_segment[segment], key=lambda item: item[1].offset)
            try:
                handle = segment.open("rb")
            except OSError:  # pragma: no cover - segment vanished mid-read
                continue
            with handle:
                for key, location in records:
                    handle.seek(location.offset)
                    line = handle.read(location.length)
                    parsed = _parse_record(line.decode("utf-8", errors="replace"))
                    if parsed is None:
                        continue
                    result = self._result_from_envelope(key, parsed[1])
                    if result is not None:
                        results[key.spec_hash] = result
        return results

    def get(self, backend: str, spec: ProblemSpec) -> Optional[SolveResult]:
        """The stored result for a spec under a requested backend, or None."""
        return self.get_by_hash(backend, spec.canonical_hash())

    def scan(
        self, backend: Optional[str] = None
    ) -> Iterator[tuple[StoreKey, dict[str, Any]]]:
        """Stream every live ``(key, envelope)`` pair, one at a time.

        Envelopes are re-read from disk record by record, so folding a
        large store (see :func:`repro.analysis.fold_envelopes`) never
        holds more than one envelope live; each segment file is opened
        once and read in offset order, not once per record.
        """
        with self._write_lock:
            index_snapshot = list(self._index.items())
            pending_snapshot = list(self._pending)
        indexed_keys = {key for key, _ in index_snapshot}
        by_segment: dict[Path, list[tuple[StoreKey, _Location]]] = {}
        for key, location in index_snapshot:
            if backend is not None and key.backend != backend:
                continue
            by_segment.setdefault(location.segment, []).append((key, location))
        for segment in sorted(by_segment):
            records = sorted(by_segment[segment], key=lambda item: item[1].offset)
            try:
                handle = segment.open("rb")
            except OSError:  # pragma: no cover - segment vanished mid-scan
                continue
            with handle:
                for key, location in records:
                    handle.seek(location.offset)
                    line = handle.read(location.length)
                    parsed = _parse_record(line.decode("utf-8", errors="replace"))
                    if parsed is not None:
                        yield key, parsed[1]
        for key, line in pending_snapshot:
            if key in indexed_keys:
                continue
            if backend is not None and key.backend != backend:
                continue
            parsed = _parse_record(line)
            if parsed is not None:
                yield key, parsed[1]

    # -- writing ---------------------------------------------------------------
    def put(self, backend: str, result: SolveResult) -> bool:
        """Record one solved envelope; False when the key is already stored.

        The envelope is stored with its run-specific ``from_store``
        provenance cleared, so what lands on disk is exactly the
        cold-solve wire form.
        """
        clean = replace(result, provenance=replace(result.provenance, from_store=False))
        return self.put_envelope(backend, clean.to_dict())

    def put_envelope(self, backend: str, envelope: dict[str, Any]) -> bool:
        """Record one wire-format envelope under a requested backend name."""
        provenance = envelope.get("provenance")
        if not isinstance(provenance, dict) or "spec_hash" not in provenance:
            raise InvalidParameterError("envelope has no provenance.spec_hash")
        key = StoreKey(SCHEMA_VERSION, backend, provenance["spec_hash"])
        with self._write_lock:
            if key in self._index or key in self._pending_keys:
                return False
            record = {
                "schema_version": SCHEMA_VERSION,
                "backend": backend,
                "spec_hash": key.spec_hash,
                "result": envelope,
            }
            line = json.dumps(record, sort_keys=True, separators=(",", ":"), allow_nan=False)
            self._pending_keys[key] = len(self._pending)
            self._pending.append((key, line))
            if len(self._pending) >= self.flush_every:
                self.flush()
            return True

    @staticmethod
    def _segment_sequence(name: str) -> int:
        """The leading sequence number of a segment file name (-1 if none)."""
        parts = name.split("-")
        try:
            return int(parts[1])
        except (IndexError, ValueError):
            return -1

    def _next_segment_path(self) -> Path:
        # Segments sort (and therefore load) in publication order: the
        # leading sequence number advances past every segment already in
        # the directory, so a record written after another one is also
        # indexed after it -- the invariant behind last-record-wins.
        # Concurrent writer processes may race to the same number; their
        # honest duplicates are identical, so the tie is immaterial.
        on_disk = max(
            (self._segment_sequence(p.name) for p in self.path.glob(_SEGMENT_GLOB)),
            default=-1,
        )
        self._segment_seq = max(self._segment_seq, on_disk) + 1
        # Segment file names are never hashed; the token only keeps
        # concurrent writer processes from colliding on one path.
        token = uuid.uuid4().hex[:8]  # repro-lint: disable=R001
        name = f"segment-{self._segment_seq:08d}-{os.getpid():08d}-{token}.jsonl"
        return self.path / name

    def _publish_segment(self, lines: list[str]) -> Path:
        """Write lines as a new segment: temp file, fsync, atomic rename."""
        segment = self._next_segment_path()
        temp = segment.with_name(f".{segment.name}.tmp")
        payload = ("\n".join(lines) + "\n").encode("utf-8")
        with temp.open("wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, segment)
        return segment

    def flush(self) -> Optional[Path]:
        """Publish pending records as one new segment (None when idle)."""
        with self._write_lock:
            if not self._pending:
                return None
            lines = [line for _, line in self._pending]
            segment = self._publish_segment(lines)
            self._seen_segments.add(segment.name)
            offset = 0
            for key, line in self._pending:
                length = len(line.encode("utf-8"))
                self._records += 1
                if key in self._index:  # pragma: no cover - guarded at put time
                    self._duplicates += 1
                self._index[key] = _Location(segment, offset, length)
                offset += length + 1
            self._pending.clear()
            self._pending_keys.clear()
            return segment

    # -- maintenance -----------------------------------------------------------
    def stats(self) -> StoreStats:
        """Snapshot of segment, record and per-backend counts."""
        segments = sorted(self.path.glob(_SEGMENT_GLOB))
        total_bytes = sum(segment.stat().st_size for segment in segments)
        with self._write_lock:
            backends: dict[str, int] = {}
            for key in self._index:
                backends[key.backend] = backends.get(key.backend, 0) + 1
            for key in self._pending_keys:
                if key not in self._index:
                    backends[key.backend] = backends.get(key.backend, 0) + 1
            return StoreStats(
                path=str(self.path),
                segments=len(segments),
                records=self._records,
                unique=len(self._index) + len(self._pending_keys),
                duplicates=self._duplicates,
                skipped_lines=self._skipped_lines,
                pending=len(self._pending),
                total_bytes=total_bytes,
                backends=backends,
            )

    def gc(self) -> tuple[int, int]:
        """Compact every live record into one fresh segment.

        Returns ``(kept_records, removed_segments)``.  Duplicates and
        corrupt lines do not survive the rewrite.  The compacted segment
        is published atomically before the superseded ones are removed,
        so a reader racing the gc sees at worst harmless duplicates.
        """
        self.flush()
        # Only segments visible *now* are compacted and removed; refresh
        # indexes all of them first (anything unindexed would be
        # destroyed rather than compacted), and segments another writer
        # publishes after this point survive the unlink loop untouched.
        old_segments = sorted(self.path.glob(_SEGMENT_GLOB))
        self.refresh()
        lines = []
        for key in list(self._index):
            envelope = self.get_envelope(key.backend, key.spec_hash)
            if envelope is None:
                continue
            record = {
                "schema_version": SCHEMA_VERSION,
                "backend": key.backend,
                "spec_hash": key.spec_hash,
                "result": envelope,
            }
            lines.append(json.dumps(record, sort_keys=True, separators=(",", ":"), allow_nan=False))
        compacted = self._publish_segment(lines) if lines else None
        removed = 0
        for segment in old_segments:
            try:
                segment.unlink()
                removed += 1
            except OSError:  # pragma: no cover - already gone
                pass
        # Rebuild the index from the compacted segment, then pick up any
        # segment another writer published while we were compacting.
        with self._write_lock:
            self._index.clear()
            self._seen_segments.clear()
            self._records = 0
            self._duplicates = 0
            self._skipped_lines = 0
            if compacted is not None:
                self._seen_segments.add(compacted.name)
                self._load_segment(compacted)
            self.refresh()
        return len(lines), removed

    # -- shipping --------------------------------------------------------------
    def export(self, destination: Union[str, Path]) -> int:
        """Write every live record to one JSONL file; returns the count."""
        self.flush()
        self.refresh()  # include segments other writers published meanwhile
        destination = Path(destination)
        destination.parent.mkdir(parents=True, exist_ok=True)
        temp = destination.with_name(f".{destination.name}.tmp")
        count = 0
        with temp.open("w", encoding="utf-8") as handle:
            for key, envelope in self.scan():
                record = {
                    "schema_version": SCHEMA_VERSION,
                    "backend": key.backend,
                    "spec_hash": key.spec_hash,
                    "result": envelope,
                }
                handle.write(json.dumps(record, sort_keys=True, separators=(",", ":"), allow_nan=False))
                handle.write("\n")
                count += 1
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, destination)
        return count

    def import_file(self, source: Union[str, Path]) -> int:
        """Merge records from an exported JSONL file; returns new keys added.

        Lines that are corrupt, foreign-schema or already stored are
        skipped (the former two with a warning), so warm caches shipped
        from another machine merge idempotently.
        """
        source = Path(source)
        try:
            text = source.read_text(encoding="utf-8")
        except OSError as error:
            raise InvalidParameterError(f"cannot read store export {source}: {error}")
        added = 0
        bad_lines = 0
        for line in text.splitlines():
            if not line.strip():
                continue
            parsed = _parse_record(line)
            if parsed is None:
                bad_lines += 1
                continue
            key, envelope = parsed
            try:
                if self.put_envelope(key.backend, envelope):
                    added += 1
            except InvalidParameterError:
                # A record that parses but holds an unusable envelope
                # (e.g. no provenance) is corrupt for our purposes too.
                bad_lines += 1
        if bad_lines:
            warnings.warn(
                f"result store: skipped {bad_lines} corrupt/foreign line(s) "
                f"while importing {source}"
            )
        self.flush()
        return added
