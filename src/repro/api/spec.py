"""Serializable problem specifications: the facade's wire format.

A *spec* is a frozen, validated, JSON-round-trippable description of one
problem.  Where the :mod:`repro.simulation` instances are rich in-memory
objects (vectors, attribute records), specs are flat scalar records that

* survive ``to_json`` / ``from_json`` without loss (``spec ==
  spec_from_json(spec.to_json())``),
* hash canonically (:meth:`ProblemSpec.canonical_hash`), so equal problems
  map to equal cache keys regardless of field order or int/float spelling,
* carry a ``schema_version`` so stored specs stay readable as the schema
  evolves,
* materialise back into the simulation layer via ``to_instance()``.

Three problem kinds are defined, mirroring the three entry points of the
library: :class:`SearchProblem` (Theorem 1), :class:`RendezvousProblem`
(Theorems 2-4) and :class:`GatheringProblem` (the multi-robot extension).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, fields
from typing import Any, Callable, ClassVar, Mapping, Optional

from ..errors import InvalidParameterError
from ..faults.model import FaultModel
from ..geometry import Vec2
from ..robots import RobotAttributes
from ..simulation import RendezvousInstance, SearchInstance

__all__ = [
    "SCHEMA_VERSION",
    "ProblemSpec",
    "SearchProblem",
    "RendezvousProblem",
    "GatheringMember",
    "GatheringProblem",
    "spec_from_dict",
    "spec_from_json",
    "spec_kinds",
]

#: Version of the spec wire format; bumped on incompatible field changes.
SCHEMA_VERSION = 1

_SPEC_KINDS: dict[str, type["ProblemSpec"]] = {}


def _coerce_float(name: str, value: Any, allow_none: bool = False) -> Any:
    if value is None and allow_none:
        return None
    try:
        result = float(value)
    except (TypeError, ValueError) as error:
        raise InvalidParameterError(f"{name} must be a number, got {value!r}") from error
    if not math.isfinite(result):
        raise InvalidParameterError(f"{name} must be finite, got {value!r}")
    return result


def _coerce_fault_model(value: Any, spec_kind: str) -> Optional[FaultModel]:
    """Validate a spec's optional fault model (accepts mappings off the wire)."""
    if value is None:
        return None
    if isinstance(value, Mapping):
        value = FaultModel.from_dict(value)
    if not isinstance(value, FaultModel):
        raise InvalidParameterError(
            f"fault_model must be a FaultModel or mapping, got {type(value).__name__}"
        )
    if spec_kind == "search" and value.is_fault:
        if value.robot != "reference":
            raise InvalidParameterError(
                "a search problem has a single robot; fault_model.robot must be 'reference'"
            )
        if value.kind == "byzantine":
            raise InvalidParameterError(
                "byzantine faults need a partner to deceive; they apply to "
                "rendezvous problems, not search"
            )
    return value


def _coerce_chirality(value: Any) -> int:
    if value not in (-1, 1, -1.0, 1.0):
        raise InvalidParameterError(f"chirality must be +1 or -1, got {value!r}")
    return int(value)


class ProblemSpec:
    """Common behaviour of all problem specs (serialisation and hashing)."""

    kind: ClassVar[str] = ""

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        if cls.kind:
            _SPEC_KINDS[cls.kind] = cls

    # -- wire format -----------------------------------------------------------
    def payload(self) -> dict[str, Any]:
        """The spec's own fields as a JSON-safe mapping (no envelope).

        ``fault_model`` is *omitted* when unset rather than serialised as
        null: every spec written before the fault axis existed keeps its
        exact canonical JSON, hash and fingerprint, so warm stores and
        caches from older runs stay valid byte for byte.
        """
        data: dict[str, Any] = {}
        for field in fields(self):  # type: ignore[arg-type]
            value = getattr(self, field.name)
            if field.name == "fault_model":
                if value is None:
                    continue
                value = value.to_dict()
            data[field.name] = value
        return data

    def to_dict(self) -> dict[str, Any]:
        """Full JSON-safe envelope including ``schema_version`` and ``kind``."""
        return {"schema_version": SCHEMA_VERSION, "kind": self.kind, **self.payload()}

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise to JSON (stable key order)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent, allow_nan=False)

    def canonical_json(self) -> str:
        """Minimal-whitespace, key-sorted JSON: the hashing pre-image."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False)

    def canonical_hash(self) -> str:
        """SHA-256 hex digest of the canonical JSON form.

        Equal specs hash equally regardless of construction path (direct,
        ``from_dict``, int-vs-float spellings), which makes the hash usable
        as a result-cache key and as provenance.
        """
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    @staticmethod
    def seed_from_hash(canonical_hash: str) -> int:
        """The deterministic 63-bit seed belonging to a canonical hash.

        Exposed separately so batch paths that already computed the hash
        derive the seed without re-canonicalising the spec -- one
        derivation, used everywhere.
        """
        return int(canonical_hash[:16], 16) & (2**63 - 1)

    def seed(self) -> int:
        """Deterministic 63-bit seed derived from the canonical hash.

        Recorded in every result's provenance so that a future stochastic
        backend can draw per-spec randomness reproducibly.  The current
        backends are fully deterministic and do not consume it.
        """
        return self.seed_from_hash(self.canonical_hash())

    # -- materialisation -------------------------------------------------------
    def to_instance(self) -> Any:
        """Build the simulation-layer instance this spec describes."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable one-liner (delegates to the instance)."""
        text = self.to_instance().describe()
        fault = getattr(self, "fault_model", None)
        if fault is not None:
            text += f"  [{fault.describe()}]"
        return text

    # -- parsing ---------------------------------------------------------------
    @classmethod
    def _from_payload(cls, payload: Mapping[str, Any]) -> "ProblemSpec":
        allowed = {field.name for field in fields(cls)}  # type: ignore[arg-type]
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise InvalidParameterError(
                f"unknown field(s) {', '.join(unknown)} for spec kind {cls.kind!r}; "
                f"allowed: {', '.join(sorted(allowed))}"
            )
        return cls(**payload)


def _resolve_components(
    distance: Optional[float],
    bearing: float,
    x: Optional[float],
    y: Optional[float],
    x_name: str,
) -> tuple[float, float, Optional[float], Optional[float]]:
    """Reconcile the polar view with optional exact cartesian components.

    Specs are usually written in polar form (``distance``/``bearing``),
    but a polar -> cartesian -> polar round trip perturbs the distance by
    an ulp, and the paper's round-ceiling bound formulas can amplify that
    into a visibly different bound.  ``from_instance`` therefore stores
    the exact components; when present they are authoritative and the
    polar fields are (re)derived from them so hashing stays canonical.
    """
    if (x is None) != (y is None):
        raise InvalidParameterError(
            f"{x_name}_x and {x_name}_y must be given together or not at all"
        )
    if x is None:
        if distance is None:
            raise InvalidParameterError(
                f"either distance or exact {x_name} components are required"
            )
        return (
            _coerce_float("distance", distance),
            _coerce_float("bearing", bearing),
            None,
            None,
        )
    x = _coerce_float(f"{x_name}_x", x)
    y = _coerce_float(f"{x_name}_y", y)
    derived_distance = math.hypot(x, y)
    derived_bearing = math.atan2(y, x)
    if distance is not None:
        distance = _coerce_float("distance", distance)
        if not math.isclose(distance, derived_distance, rel_tol=1e-6, abs_tol=1e-12):
            raise InvalidParameterError(
                f"distance {distance!r} contradicts the exact {x_name} components "
                f"(|({x:g}, {y:g})| = {derived_distance!r})"
            )
    # A non-default bearing must agree with the components too.  (A bearing
    # of exactly 0.0 is indistinguishable from the unset default and is
    # accepted silently -- the components stay authoritative either way.)
    bearing = _coerce_float("bearing", bearing)
    if bearing != 0.0:
        difference = math.fmod(bearing - derived_bearing, 2.0 * math.pi)
        if min(abs(difference), 2.0 * math.pi - abs(difference)) > 1e-6:
            raise InvalidParameterError(
                f"bearing {bearing!r} contradicts the exact {x_name} components "
                f"(atan2({y:g}, {x:g}) = {derived_bearing!r})"
            )
    return derived_distance, derived_bearing, x, y


@dataclass(frozen=True, slots=True)
class SearchProblem(ProblemSpec):
    """A single-robot search for a static target (Theorem 1).

    Attributes:
        visibility: visibility radius ``r > 0``.
        distance: initial distance ``d > 0`` to the target.
        bearing: target bearing in radians (default 0; only affects which
            round of the spiral finds the target, not the bound).
        target_x / target_y: optional exact target components; when given
            they are authoritative (``to_instance`` reproduces the target
            bit for bit) and distance/bearing are derived from them.
        fault_model: optional :class:`~repro.faults.model.FaultModel` for
            the searching robot (crash kinds only -- there is no partner
            for a byzantine robot to deceive).  Omitted specs hash
            exactly as they did before the fault axis existed.
    """

    kind: ClassVar[str] = "search"

    visibility: float
    distance: Optional[float] = None
    bearing: float = 0.0
    target_x: Optional[float] = None
    target_y: Optional[float] = None
    fault_model: Optional[FaultModel] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "visibility", _coerce_float("visibility", self.visibility))
        object.__setattr__(
            self, "fault_model", _coerce_fault_model(self.fault_model, self.kind)
        )
        distance, bearing, x, y = _resolve_components(
            self.distance, self.bearing, self.target_x, self.target_y, "target"
        )
        object.__setattr__(self, "distance", distance)
        object.__setattr__(self, "bearing", bearing)
        object.__setattr__(self, "target_x", x)
        object.__setattr__(self, "target_y", y)
        if self.distance <= 0.0:
            raise InvalidParameterError(f"distance must be positive, got {self.distance!r}")
        if self.visibility <= 0.0:
            raise InvalidParameterError(f"visibility must be positive, got {self.visibility!r}")

    @property
    def difficulty(self) -> float:
        """The paper's difficulty measure ``d^2 / r``."""
        return self.distance**2 / self.visibility

    def to_instance(self) -> SearchInstance:
        if self.target_x is not None and self.target_y is not None:
            target = Vec2(self.target_x, self.target_y)
        else:
            target = Vec2.polar(self.distance, self.bearing)
        return SearchInstance(target=target, visibility=self.visibility)

    @classmethod
    def from_instance(cls, instance: SearchInstance) -> "SearchProblem":
        """The spec describing an existing :class:`SearchInstance` exactly."""
        return cls(
            visibility=instance.visibility,
            target_x=instance.target.x,
            target_y=instance.target.y,
        )


@dataclass(frozen=True, slots=True)
class RendezvousProblem(ProblemSpec):
    """A two-robot rendezvous problem in the paper's canonical form.

    Robot R sits at the origin with the reference attributes; robot R'
    starts ``distance`` away at ``bearing`` and carries the attribute
    vector ``(speed, time_unit, orientation, chirality)``.

    ``horizon`` and ``allow_infeasible`` mirror the knobs of
    :func:`repro.core.solve_rendezvous`: an explicit horizon is required to
    simulate a provably infeasible instance.

    ``separation_x`` / ``separation_y`` are optional exact components of
    the separation vector; when given they are authoritative (bit-exact
    ``to_instance``) and distance/bearing are derived from them.

    ``fault_model`` optionally makes one of the two robots faulty
    (crash-stop / crash-recovery / byzantine, see
    :class:`~repro.faults.model.FaultModel`); specs without it hash
    exactly as they did before the fault axis existed.
    """

    kind: ClassVar[str] = "rendezvous"

    visibility: float
    distance: Optional[float] = None
    bearing: float = 0.0
    speed: float = 1.0
    time_unit: float = 1.0
    orientation: float = 0.0
    chirality: int = 1
    horizon: Optional[float] = None
    allow_infeasible: bool = False
    separation_x: Optional[float] = None
    separation_y: Optional[float] = None
    fault_model: Optional[FaultModel] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "visibility", _coerce_float("visibility", self.visibility))
        object.__setattr__(
            self, "fault_model", _coerce_fault_model(self.fault_model, self.kind)
        )
        distance, bearing, x, y = _resolve_components(
            self.distance, self.bearing, self.separation_x, self.separation_y, "separation"
        )
        object.__setattr__(self, "distance", distance)
        object.__setattr__(self, "bearing", bearing)
        object.__setattr__(self, "separation_x", x)
        object.__setattr__(self, "separation_y", y)
        object.__setattr__(self, "speed", _coerce_float("speed", self.speed))
        object.__setattr__(self, "time_unit", _coerce_float("time_unit", self.time_unit))
        object.__setattr__(self, "orientation", _coerce_float("orientation", self.orientation))
        object.__setattr__(self, "chirality", _coerce_chirality(self.chirality))
        object.__setattr__(
            self, "horizon", _coerce_float("horizon", self.horizon, allow_none=True)
        )
        object.__setattr__(self, "allow_infeasible", bool(self.allow_infeasible))
        if not (self.distance > 0.0):
            raise InvalidParameterError(f"distance must be positive, got {self.distance!r}")
        if self.visibility <= 0.0:
            raise InvalidParameterError(f"visibility must be positive, got {self.visibility!r}")
        if self.speed <= 0.0:
            raise InvalidParameterError(f"speed must be positive, got {self.speed!r}")
        if self.time_unit <= 0.0:
            raise InvalidParameterError(f"time_unit must be positive, got {self.time_unit!r}")
        if self.horizon is not None and self.horizon <= 0.0:
            raise InvalidParameterError(f"horizon must be positive, got {self.horizon!r}")

    @property
    def attributes(self) -> RobotAttributes:
        """The hidden attribute vector of robot R'."""
        return RobotAttributes(
            speed=self.speed,
            time_unit=self.time_unit,
            orientation=self.orientation,
            chirality=self.chirality,
        )

    @property
    def difficulty(self) -> float:
        """The paper's difficulty measure ``d^2 / r``."""
        return self.distance**2 / self.visibility

    def to_instance(self) -> RendezvousInstance:
        if self.separation_x is not None and self.separation_y is not None:
            separation = Vec2(self.separation_x, self.separation_y)
        else:
            separation = Vec2.polar(self.distance, self.bearing)
        return RendezvousInstance(
            separation=separation,
            visibility=self.visibility,
            attributes=self.attributes,
        )

    @classmethod
    def from_instance(
        cls,
        instance: RendezvousInstance,
        horizon: Optional[float] = None,
        allow_infeasible: bool = False,
    ) -> "RendezvousProblem":
        """The spec describing an existing :class:`RendezvousInstance` exactly."""
        attributes = instance.attributes
        return cls(
            visibility=instance.visibility,
            separation_x=instance.separation.x,
            separation_y=instance.separation.y,
            speed=attributes.speed,
            time_unit=attributes.time_unit,
            orientation=attributes.orientation,
            chirality=attributes.chirality,
            horizon=horizon,
            allow_infeasible=allow_infeasible,
        )


@dataclass(frozen=True, slots=True)
class GatheringMember(ProblemSpec):
    """One swarm member: start position plus attribute vector.

    (Registered as a spec kind of its own so members round-trip through
    the same machinery, but it is not solvable on its own.)
    """

    kind: ClassVar[str] = "gathering-member"

    x: float
    y: float
    speed: float = 1.0
    time_unit: float = 1.0
    orientation: float = 0.0
    chirality: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "x", _coerce_float("x", self.x))
        object.__setattr__(self, "y", _coerce_float("y", self.y))
        object.__setattr__(self, "speed", _coerce_float("speed", self.speed))
        object.__setattr__(self, "time_unit", _coerce_float("time_unit", self.time_unit))
        object.__setattr__(self, "orientation", _coerce_float("orientation", self.orientation))
        object.__setattr__(self, "chirality", _coerce_chirality(self.chirality))
        if self.speed <= 0.0:
            raise InvalidParameterError(f"speed must be positive, got {self.speed!r}")
        if self.time_unit <= 0.0:
            raise InvalidParameterError(f"time_unit must be positive, got {self.time_unit!r}")

    @property
    def position(self) -> Vec2:
        return Vec2(self.x, self.y)

    @property
    def attributes(self) -> RobotAttributes:
        return RobotAttributes(
            speed=self.speed,
            time_unit=self.time_unit,
            orientation=self.orientation,
            chirality=self.chirality,
        )

    def to_instance(self) -> Any:
        raise InvalidParameterError("a gathering member is not solvable on its own")


@dataclass(frozen=True, slots=True)
class GatheringProblem(ProblemSpec):
    """A multi-robot gathering problem (pairwise rendezvous extension)."""

    kind: ClassVar[str] = "gathering"

    members: tuple[GatheringMember, ...]
    visibility: float
    horizon: float = 20000.0

    def __post_init__(self) -> None:
        members = tuple(
            member
            if isinstance(member, GatheringMember)
            else GatheringMember._from_payload(dict(member))
            for member in self.members
        )
        object.__setattr__(self, "members", members)
        object.__setattr__(self, "visibility", _coerce_float("visibility", self.visibility))
        object.__setattr__(self, "horizon", _coerce_float("horizon", self.horizon))
        if len(self.members) < 2:
            raise InvalidParameterError("a gathering problem needs at least two members")
        if self.visibility <= 0.0:
            raise InvalidParameterError(f"visibility must be positive, got {self.visibility!r}")
        if self.horizon <= 0.0:
            raise InvalidParameterError(f"horizon must be positive, got {self.horizon!r}")

    def payload(self) -> dict[str, Any]:
        return {
            "members": [member.payload() for member in self.members],
            "visibility": self.visibility,
            "horizon": self.horizon,
        }

    def to_instance(self) -> Any:
        from ..gathering import GatheringInstance

        return GatheringInstance.create(
            positions=[member.position for member in self.members],
            attributes=[member.attributes for member in self.members],
            visibility=self.visibility,
        )


def spec_kinds() -> list[str]:
    """Sorted list of registered, directly solvable spec kinds."""
    return sorted(kind for kind in _SPEC_KINDS if kind != "gathering-member")


def spec_from_dict(data: Mapping[str, Any]) -> ProblemSpec:
    """Parse a spec envelope produced by :meth:`ProblemSpec.to_dict`.

    Raises:
        InvalidParameterError: missing/unsupported ``schema_version``,
            unknown ``kind``, unknown fields or out-of-domain values.
    """
    if not isinstance(data, Mapping):
        raise InvalidParameterError(f"a spec must be a JSON object, got {type(data).__name__}")
    payload = dict(data)
    version = payload.pop("schema_version", None)
    if version != SCHEMA_VERSION:
        raise InvalidParameterError(
            f"unsupported spec schema_version {version!r} (this library speaks {SCHEMA_VERSION})"
        )
    kind = payload.pop("kind", None)
    try:
        cls = _SPEC_KINDS[kind]
    except KeyError as error:
        raise InvalidParameterError(
            f"unknown spec kind {kind!r}; available: {', '.join(spec_kinds())}"
        ) from error
    return cls._from_payload(payload)


def spec_from_json(text: str) -> ProblemSpec:
    """Parse one spec from its JSON serialisation."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise InvalidParameterError(f"invalid spec JSON: {error}") from error
    return spec_from_dict(data)
