"""The uniform result envelope returned by every solver backend.

A :class:`SolveResult` carries the answer (feasibility, measured time,
analytic bound), the provenance needed to reproduce or audit it (backend,
spec hash, seed, library version, wall time) and backend-specific details
in a JSON-safe mapping.  Like specs, results round-trip through JSON, so a
batch of results can be written to disk by one process and re-read by
another without loss.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Mapping, Optional

from .._version import __version__
from ..errors import InvalidParameterError
from .spec import SCHEMA_VERSION, ProblemSpec, spec_from_dict

__all__ = ["Provenance", "SolveResult"]


@dataclass(frozen=True, slots=True)
class Provenance:
    """Where a result came from and what it cost to produce.

    Attributes:
        backend: name of the backend that actually solved the spec.
        fidelity: ``"bound"`` (closed form only) or ``"measured"``
            (continuous-time simulation).
        spec_hash: canonical hash of the solved spec (the cache key).
        seed: the deterministic per-spec seed.
        schema_version: spec wire-format version at solve time.
        library_version: ``repro.__version__`` at solve time.
        wall_time: seconds spent inside the backend.
        from_store: True when this envelope was reused from a persistent
            :class:`~repro.api.store.ResultStore` instead of being solved
            in this process.  Like ``wall_time`` it describes the *run*
            rather than the *answer*, so :meth:`SolveResult.fingerprint`
            neutralises it: warm replays stay bit-identical to cold runs
            while the live envelope stays honest about reuse.
    """

    backend: str
    fidelity: str
    spec_hash: str
    seed: int
    schema_version: int = SCHEMA_VERSION
    library_version: str = __version__
    wall_time: float = 0.0
    from_store: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "fidelity": self.fidelity,
            "spec_hash": self.spec_hash,
            "seed": self.seed,
            "schema_version": self.schema_version,
            "library_version": self.library_version,
            "wall_time": self.wall_time,
            "from_store": self.from_store,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Provenance":
        return cls(**dict(data))


@dataclass(frozen=True, slots=True)
class SolveResult:
    """Uniform answer envelope for every problem kind and backend.

    Attributes:
        spec: the problem that was solved.
        feasible: Theorem 4 verdict (None for plain search, which is
            always solvable).
        solved: whether the simulated event fired before the horizon
            (None when no simulation ran, i.e. analytic fidelity).
        measured_time: simulated solve time (None without simulation or
            when unsolved).
        bound: the paper's closed-form time bound (None when no finite
            bound applies, e.g. infeasible rendezvous).
        algorithm: mobility algorithm that was simulated (None for
            analytic results).
        details: JSON-safe backend-specific extras (verdict text,
            guaranteed round, effort counters, gathering breakdowns...).
        provenance: reproducibility record, see :class:`Provenance`.
    """

    spec: ProblemSpec
    feasible: Optional[bool]
    solved: Optional[bool]
    measured_time: Optional[float]
    bound: Optional[float]
    algorithm: Optional[str]
    details: Mapping[str, Any]
    provenance: Provenance

    # -- derived ---------------------------------------------------------------
    @property
    def kind(self) -> str:
        """The solved problem's kind."""
        return self.spec.kind

    @property
    def backend(self) -> str:
        """Name of the backend that produced this result."""
        return self.provenance.backend

    @property
    def bound_ratio(self) -> Optional[float]:
        """Measured time over the analytic bound (None when either is missing)."""
        if self.measured_time is None or self.bound is None or self.bound == 0.0:
            return None
        return self.measured_time / self.bound

    # -- wire format -----------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Full JSON-safe envelope (round-trips via :meth:`from_dict`)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "feasible": self.feasible,
            "solved": self.solved,
            "measured_time": self.measured_time,
            "bound": self.bound,
            "bound_ratio": self.bound_ratio,
            "algorithm": self.algorithm,
            "details": dict(self.details),
            "provenance": self.provenance.to_dict(),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent, allow_nan=False)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SolveResult":
        payload = dict(data)
        version = payload.pop("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise InvalidParameterError(
                f"unsupported result schema_version {version!r} "
                f"(this library speaks {SCHEMA_VERSION})"
            )
        payload.pop("bound_ratio", None)  # derived, recomputed from fields
        spec = spec_from_dict(payload.pop("spec"))
        provenance = Provenance.from_dict(payload.pop("provenance"))
        return cls(spec=spec, provenance=provenance, **payload)

    @classmethod
    def from_json(cls, text: str) -> "SolveResult":
        return cls.from_dict(json.loads(text))

    def fingerprint(self) -> dict[str, Any]:
        """The envelope minus run-specific provenance: equal for identical reruns.

        Two runs of the same spec on the same backend -- serial, pooled,
        in different processes, or replayed from a persistent store --
        produce equal fingerprints; only the ``wall_time`` and
        ``from_store`` provenance fields may differ.
        """
        data = self.to_dict()
        data["provenance"] = replace(
            self.provenance, wall_time=0.0, from_store=False
        ).to_dict()
        return data

    # -- presentation ----------------------------------------------------------
    def summary(self) -> str:
        """Human-readable multi-line summary (what the CLI prints)."""
        lines = [self.spec.describe()]
        verdict = self.details.get("verdict")
        if verdict:
            lines.append(str(verdict))
        if self.algorithm:
            lines.append(f"algorithm: {self.algorithm}")
        bound_label = "Theorem 1 bound" if self.kind == "search" else "bound"
        if self.solved:
            bound_text = f"{self.bound:.6g}" if self.bound is not None else "n/a"
            ratio = self.bound_ratio
            ratio_text = f"{ratio:.3f}" if ratio is not None else "n/a"
            lines.append(
                f"measured time: {self.measured_time:.6g}  |  {bound_label}: {bound_text}  "
                f"(ratio {ratio_text})"
            )
        elif self.solved is False:
            horizon = self.details.get("horizon")
            horizon_text = f" {horizon:.6g}" if isinstance(horizon, (int, float)) else ""
            lines.append(f"not solved within horizon{horizon_text}")
        elif self.bound is not None:
            lines.append(f"analytic {bound_label}: {self.bound:.6g} (no simulation requested)")
        lines.append(f"[{self.backend} backend, {self.provenance.wall_time * 1e3:.2f} ms]")
        return "\n".join(lines)
