"""Pluggable solver backends behind the facade.

Every backend answers the same question -- "solve this spec" -- at a
different fidelity:

* :class:`AnalyticBackend` evaluates the paper's closed forms only
  (Theorem 1/2/3 bounds, the Theorem 4 feasibility test).  Microseconds
  per spec; no measured time.
* :class:`SimulationBackend` runs the continuous-time engine through the
  existing ``solve_search`` / ``solve_rendezvous`` / ``simulate_gathering``
  entry points and reports measured time next to the bound.
* :class:`AutoBackend` picks per spec: simulation whenever a run can
  terminate (feasible, or an explicit horizon is given), the analytic
  closed forms otherwise.

Backends are looked up by name through a registry
(:func:`register_backend` / :func:`create_backend`), so new fidelities --
sharded, remote, learned surrogates -- plug in without touching callers.
:func:`solve` is the facade's single-spec entry point.
"""

from __future__ import annotations

import abc
import time
from typing import Any, Callable, ClassVar, Dict, Union

from ..core import (
    classify_feasibility,
    guaranteed_discovery_round,
    rendezvous_time_bound,
    solve_rendezvous,
    solve_search,
    theorem1_search_bound,
)
from ..errors import InvalidParameterError
from .result import Provenance, SolveResult
from .spec import (
    SCHEMA_VERSION,
    GatheringProblem,
    ProblemSpec,
    RendezvousProblem,
    SearchProblem,
)

__all__ = [
    "SolverBackend",
    "AnalyticBackend",
    "SimulationBackend",
    "AutoBackend",
    "backend_names",
    "register_backend",
    "create_backend",
    "batchable_search_group",
    "route_search_batch",
    "search_report_fields",
    "rendezvous_report_fields",
    "solve",
]


class SolverBackend(abc.ABC):
    """A named solver producing :class:`SolveResult` envelopes.

    Subclasses implement :meth:`_solve` returning the envelope fields;
    the base class stamps timing and provenance.
    """

    name: ClassVar[str] = ""
    fidelity: ClassVar[str] = ""

    def solve(self, spec: ProblemSpec) -> SolveResult:
        """Solve one spec, timing the run and stamping provenance."""
        # wall_time is provenance-only and neutralised by fingerprints.
        start = time.perf_counter()  # repro-lint: disable=R001
        fields = self._solve(spec)
        wall_time = time.perf_counter() - start  # repro-lint: disable=R001
        provenance = Provenance(
            backend=self.name,
            fidelity=self.fidelity,
            spec_hash=spec.canonical_hash(),
            seed=spec.seed(),
            schema_version=SCHEMA_VERSION,
            wall_time=wall_time,
        )
        return SolveResult(spec=spec, provenance=provenance, **fields)

    @abc.abstractmethod
    def _solve(self, spec: ProblemSpec) -> dict[str, Any]:
        """Return the envelope fields (everything but spec and provenance)."""


def _unsupported(backend: SolverBackend, spec: ProblemSpec) -> InvalidParameterError:
    return InvalidParameterError(
        f"backend {backend.name!r} cannot solve spec kind {spec.kind!r}"
    )


def batchable_search_group(specs: Any) -> list[int]:
    """Indices of the specs the batch kernel can solve together.

    Search specs are homogeneous by construction (the searcher always
    carries the reference attributes); a group of at least two is worth a
    kernel call.  Shared by every batch-capable backend and by
    :class:`~repro.api.batch.BatchRunner` when deciding whether the batch
    path beats the worker pool.  Faulted specs are excluded: the kernel
    shares one healthy compiled trajectory across the batch, which a
    crash/recovery injection would invalidate per spec.
    """
    indices = [
        index
        for index, spec in enumerate(specs)
        if isinstance(spec, SearchProblem) and spec.fault_model is None
    ]
    return indices if len(indices) >= 2 else []


def route_search_batch(
    spec_list: list,
    solve_group: Callable[[list], Any],
    solve_one: Callable[[ProblemSpec], SolveResult],
) -> list[SolveResult]:
    """Common batch scaffold: kernel for search groups, per-spec otherwise.

    ``solve_group`` receives the batchable search specs and returns their
    results in order (or None to decline); every remaining spec goes
    through ``solve_one``.  Results come back in input order.
    """
    results: dict[int, SolveResult] = {}
    search_indices = batchable_search_group(spec_list)
    if search_indices:
        group = solve_group([spec_list[i] for i in search_indices])
        if group is not None:
            results.update(zip(search_indices, group))
    for index, spec in enumerate(spec_list):
        if index not in results:
            results[index] = solve_one(spec)
    return [results[index] for index in range(len(spec_list))]


class AnalyticBackend(SolverBackend):
    """Closed-form bounds and feasibility only -- no simulation."""

    name: ClassVar[str] = "analytic"
    fidelity: ClassVar[str] = "bound"

    def _solve(self, spec: ProblemSpec) -> dict[str, Any]:
        fields = self._solve_nominal(spec)
        fault = getattr(spec, "fault_model", None)
        if fault is not None and fault.is_fault:
            # The closed forms describe the fault-free protocol; the
            # envelope says so instead of silently pretending otherwise.
            details = dict(fields.get("details") or {})
            details["fault"] = {"modeled": False, **fault.to_dict()}
            fields["details"] = details
        return fields

    def _solve_nominal(self, spec: ProblemSpec) -> dict[str, Any]:
        if isinstance(spec, SearchProblem):
            return {
                "feasible": True,
                "solved": None,
                "measured_time": None,
                "bound": theorem1_search_bound(spec.distance, spec.visibility),
                "algorithm": None,
                "details": {
                    "guaranteed_round": guaranteed_discovery_round(
                        spec.distance, spec.visibility
                    ),
                    "difficulty": spec.difficulty,
                },
            }
        if isinstance(spec, RendezvousProblem):
            verdict = classify_feasibility(spec.attributes)
            bound = rendezvous_time_bound(spec.to_instance())
            return {
                "feasible": verdict.feasible,
                "solved": None,
                "measured_time": None,
                "bound": bound,
                "algorithm": None,
                "details": {
                    "verdict": verdict.describe(),
                    "reasons": list(verdict.reasons),
                    "difficulty": spec.difficulty,
                },
            }
        if isinstance(spec, GatheringProblem):
            from ..gathering import swarm_feasibility

            feasibility = swarm_feasibility(spec.to_instance())
            return {
                "feasible": feasibility.pairwise_gathering_feasible,
                "solved": None,
                "measured_time": None,
                "bound": None,
                "algorithm": None,
                "details": {
                    "verdict": feasibility.describe().splitlines()[0],
                    "pairwise_feasible": feasibility.pairwise_gathering_feasible,
                    "connectivity_feasible": feasibility.connectivity_gathering_feasible,
                    "infeasible_pairs": [list(pair) for pair in feasibility.infeasible_pairs()],
                },
            }
        raise _unsupported(self, spec)


def search_report_fields(spec: "SearchProblem", report: Any) -> dict[str, Any]:
    """Envelope fields for a :class:`~repro.core.search.SearchReport`.

    Shared by every measuring backend (simulation and vectorized), so the
    two produce identical envelopes for identical outcomes.
    """
    return {
        "feasible": True,
        "solved": report.outcome.solved,
        "measured_time": report.time,
        "bound": report.bound,
        "algorithm": report.algorithm_name,
        "details": {
            "guaranteed_round": report.guaranteed_round,
            "difficulty": spec.difficulty,
            "segments_processed": report.outcome.segments_processed,
            "gap_evaluations": report.outcome.gap_evaluations,
            "horizon": report.outcome.horizon,
        },
    }


def rendezvous_report_fields(spec: "RendezvousProblem", report: Any) -> dict[str, Any]:
    """Envelope fields for a :class:`~repro.core.rendezvous.RendezvousReport`."""
    return {
        "feasible": report.verdict.feasible,
        "solved": report.solved,
        "measured_time": report.time if report.solved else None,
        "bound": report.bound,
        "algorithm": report.algorithm_name,
        "details": {
            "verdict": report.verdict.describe(),
            "difficulty": spec.difficulty,
            "segments_processed": report.outcome.segments_processed,
            "gap_evaluations": report.outcome.gap_evaluations,
            "horizon": report.outcome.horizon,
        },
    }


class SimulationBackend(SolverBackend):
    """The continuous-time engine: measured times next to the bounds."""

    name: ClassVar[str] = "simulation"
    fidelity: ClassVar[str] = "measured"

    def _solve(self, spec: ProblemSpec) -> dict[str, Any]:
        fault = getattr(spec, "fault_model", None)
        if fault is not None and fault.is_fault:
            # One representative trial at the nominal fault times; the
            # montecarlo backend owns the jittered ensembles.
            from ..faults.solver import nominal_realization, solve_spec_with_fault

            return solve_spec_with_fault(
                spec, nominal_realization(fault, spec.canonical_hash())
            )
        if isinstance(spec, SearchProblem):
            return search_report_fields(spec, solve_search(spec.to_instance()))
        if isinstance(spec, RendezvousProblem):
            report = solve_rendezvous(
                spec.to_instance(),
                horizon=spec.horizon,
                allow_infeasible=spec.allow_infeasible,
            )
            return rendezvous_report_fields(spec, report)
        if isinstance(spec, GatheringProblem):
            from ..gathering import simulate_gathering, swarm_feasibility

            instance = spec.to_instance()
            feasibility = swarm_feasibility(instance)
            outcome = simulate_gathering(instance, horizon=spec.horizon)
            pairwise_time = outcome.pairwise_gathering_time
            connectivity_time = outcome.connectivity_gathering_time
            return {
                "feasible": feasibility.pairwise_gathering_feasible,
                "solved": outcome.all_pairs_met,
                "measured_time": pairwise_time,
                "bound": None,
                "algorithm": "wait-and-search (pairwise)",
                "details": {
                    "verdict": feasibility.describe().splitlines()[0],
                    "connectivity_time": connectivity_time,
                    "pairs_met": sum(result.met for result in outcome.pairwise),
                    "pairs_total": len(outcome.pairwise),
                    "horizon": outcome.horizon,
                },
            }
        raise _unsupported(self, spec)


class AutoBackend(SolverBackend):
    """Per-spec fidelity choice: measure when a run can terminate.

    Measured answers are preferred whenever the simulation can run to
    completion: a feasible instance (the bound derives a horizon) or an
    explicitly permitted infeasible run (both ``horizon`` and
    ``allow_infeasible`` set).  Every other provably infeasible
    rendezvous spec falls back to the analytic verdict instead of
    raising, which makes ``auto`` total over all valid specs.

    Search specs always go through the vectorized kernel backend --
    singly or, for *batches* (:meth:`solve_specs`, used by
    :class:`~repro.api.batch.BatchRunner`), as one array-at-a-time
    group.  Routing singles and batches identically keeps the
    determinism contract: the same spec under ``auto`` produces the same
    result fingerprint whether it is solved alone, in a batch, or in a
    pool worker.
    """

    name: ClassVar[str] = "auto"
    fidelity: ClassVar[str] = "measured"

    def __init__(self) -> None:
        self._analytic = AnalyticBackend()
        self._simulation = SimulationBackend()
        self._vectorized: SolverBackend | None = None

    def solve(self, spec: ProblemSpec) -> SolveResult:
        return self._pick(spec).solve(spec)

    def solve_specs(self, specs: Any) -> list[SolveResult]:
        """Batch entry point: kernel for search groups, per-spec otherwise."""

        def solve_group(group: list) -> Any:
            try:
                vectorized = create_backend("vectorized")
            except InvalidParameterError:  # pragma: no cover - registered on import
                return None
            if not hasattr(vectorized, "solve_specs"):
                return None
            return vectorized.solve_specs(group)

        return route_search_batch(list(specs), solve_group, self.solve)

    def batchable_indices(self, specs: Any) -> list[int]:
        """Indices :meth:`solve_specs` would solve in one kernel call.

        :class:`~repro.api.batch.BatchRunner` uses this to batch only the
        vectorizable group and keep fanning the remainder out over its
        worker pool.
        """
        return batchable_search_group(list(specs))

    def _pick(self, spec: ProblemSpec) -> SolverBackend:
        fault = getattr(spec, "fault_model", None)
        if fault is not None and fault.is_fault:
            # The fault path is total (typed results, no exceptions) and
            # scalar-only; it also covers provably infeasible instances,
            # which a crash can make solvable.
            return self._simulation
        if isinstance(spec, SearchProblem):
            if self._vectorized is None:
                try:
                    self._vectorized = create_backend("vectorized")
                except InvalidParameterError:  # pragma: no cover - registered on import
                    self._vectorized = self._simulation
            return self._vectorized
        if isinstance(spec, RendezvousProblem):
            simulable = spec.horizon is not None and spec.allow_infeasible
            if not simulable and not classify_feasibility(spec.attributes).feasible:
                return self._analytic
        return self._simulation

    def _solve(self, spec: ProblemSpec) -> dict[str, Any]:  # pragma: no cover
        raise NotImplementedError("AutoBackend delegates whole solves")


BackendFactory = Callable[[], SolverBackend]

_REGISTRY: Dict[str, BackendFactory] = {
    AnalyticBackend.name: AnalyticBackend,
    SimulationBackend.name: SimulationBackend,
    AutoBackend.name: AutoBackend,
}


def backend_names() -> list[str]:
    """Sorted list of registered backend names."""
    return sorted(_REGISTRY)


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register (or replace) a backend factory under ``name``."""
    if not name:
        raise InvalidParameterError("backend name must be non-empty")
    _REGISTRY[name] = factory


def create_backend(name: str) -> SolverBackend:
    """Instantiate the backend registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError as error:
        raise InvalidParameterError(
            f"unknown backend {name!r}; available: {', '.join(backend_names())}"
        ) from error
    return factory()


def solve(spec: ProblemSpec, backend: Union[str, SolverBackend] = "auto") -> SolveResult:
    """Solve one spec through the facade.

    Args:
        spec: the problem to solve.
        backend: a backend name (``"analytic"``, ``"simulation"``,
            ``"auto"`` or anything registered) or a backend instance.
    """
    resolved = create_backend(backend) if isinstance(backend, str) else backend
    return resolved.solve(spec)
