"""``repro.api`` -- the single front door of the library.

Every way of solving a problem -- closed-form bounds, the continuous-time
simulation engine, batched sweeps -- sits behind one request/response
seam:

* :mod:`repro.api.spec`     -- frozen, JSON-round-trippable problem specs
  with canonical hashing (:class:`SearchProblem`,
  :class:`RendezvousProblem`, :class:`GatheringProblem`);
* :mod:`repro.api.backends` -- pluggable solver backends behind a name
  registry (``analytic`` / ``simulation`` / ``vectorized`` / ``auto``)
  and the single-spec :func:`solve` entry point;
* :mod:`repro.api.vectorized` -- the batch-kernel backend: search sweeps
  solved array-at-a-time against one compiled trajectory;
* :mod:`repro.api.result`   -- the uniform :class:`SolveResult` envelope
  (measured time, bound, provenance), also JSON-round-trippable;
* :mod:`repro.api.batch`    -- :class:`BatchRunner`, the throughput path:
  LRU result cache, deterministic seeding, batch-kernel routing and
  multiprocessing fan-out;
* :mod:`repro.api.store`    -- :class:`ResultStore`, the durable tier:
  an append-only, content-addressed log of envelopes that survives the
  process and ships between machines (``export`` / ``import_file``).

Quickstart::

    from repro.api import RendezvousProblem, solve

    spec = RendezvousProblem(distance=1.7, visibility=0.3, speed=0.6)
    result = solve(spec)                    # auto backend: simulates
    print(result.summary())
    print(result.to_json(indent=2))         # stable wire format

    from repro.api import BatchRunner
    runner = BatchRunner(backend="simulation", processes=4)
    results, stats = runner.run(sweep_of_specs)
"""

from .backends import (
    AnalyticBackend,
    AutoBackend,
    SimulationBackend,
    SolverBackend,
    backend_names,
    create_backend,
    register_backend,
    solve,
)
from ..faults.model import FaultModel
from ..faults.montecarlo import MonteCarloBackend
from .batch import BatchRunner, BatchStats, solve_batch
from .result import Provenance, SolveResult
from .store import ResultStore, StoreKey, StoreStats
from .vectorized import VectorizedBackend
from .spec import (
    SCHEMA_VERSION,
    GatheringMember,
    GatheringProblem,
    ProblemSpec,
    RendezvousProblem,
    SearchProblem,
    spec_from_dict,
    spec_from_json,
    spec_kinds,
)

__all__ = [
    "SCHEMA_VERSION",
    "ProblemSpec",
    "SearchProblem",
    "RendezvousProblem",
    "GatheringMember",
    "GatheringProblem",
    "spec_from_dict",
    "spec_from_json",
    "spec_kinds",
    "Provenance",
    "SolveResult",
    "SolverBackend",
    "AnalyticBackend",
    "SimulationBackend",
    "VectorizedBackend",
    "MonteCarloBackend",
    "FaultModel",
    "AutoBackend",
    "backend_names",
    "register_backend",
    "create_backend",
    "solve",
    "BatchRunner",
    "BatchStats",
    "solve_batch",
    "ResultStore",
    "StoreKey",
    "StoreStats",
]
