"""The fault-model taxonomy: what can go wrong with a robot, declaratively.

A :class:`FaultModel` is a frozen, JSON-round-trippable description of one
faulty robot attached to a problem spec (``SearchProblem.fault_model`` /
``RendezvousProblem.fault_model``).  It follows the classic distributed-
computing fault taxonomy:

* ``crash-stop`` -- the robot halts at ``crash_time`` and never moves
  again (it keeps existing physically: a live robot that comes within
  visibility of the wreck still completes the rendezvous/search);
* ``crash-recovery`` -- the robot halts at ``crash_time`` and resumes its
  algorithm, exactly where it left off, after ``recovery_delay`` time
  units;
* ``byzantine`` -- from ``crash_time`` on the robot abandons the protocol
  and follows an adversarial seeded random walk; its own detection
  signals are untrusted (only the correct robot's sensing counts, which
  in this geometric model is the same distance-within-``r`` condition);
* ``none`` -- no fault; the carrier for Monte-Carlo configuration
  (``trials`` / ``mc_seed`` / ``jitter``) on an otherwise healthy spec.

The model also owns the randomized-trial configuration consumed by the
``montecarlo`` backend: ``trials`` independent realizations, each seeded
deterministically from ``(spec_hash, mc_seed, trial_index)``, with
``jitter`` controlling how far the per-trial crash/recovery times may
deviate from their nominal values.  Because the model is part of the
spec's canonical payload, every knob participates in the canonical hash:
two specs differing only in ``trials`` are different cache/store keys,
which is what keeps the LRU/store/coalescing tiers exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Any, Mapping, Optional

from ..errors import InvalidParameterError

__all__ = ["FAULT_KINDS", "FAULT_ROBOTS", "FaultModel"]

#: The supported fault kinds, in taxonomy order.
FAULT_KINDS = ("none", "crash-stop", "crash-recovery", "byzantine")

#: Which robot of a pair carries the fault ("reference" is R at the
#: origin; "other" is R').  Search problems only have a reference robot.
FAULT_ROBOTS = ("reference", "other")

#: Upper bound on trials per spec -- a seatbelt against accidentally
#: requesting a million scalar simulations through one envelope.
MAX_TRIALS = 10_000


def _coerce_positive_float(name: str, value: Any, allow_zero: bool = False) -> float:
    try:
        result = float(value)
    except (TypeError, ValueError) as error:
        raise InvalidParameterError(f"{name} must be a number, got {value!r}") from error
    if not math.isfinite(result):
        raise InvalidParameterError(f"{name} must be finite, got {value!r}")
    if result < 0.0 or (result == 0.0 and not allow_zero):
        bound = "non-negative" if allow_zero else "positive"
        raise InvalidParameterError(f"{name} must be {bound}, got {value!r}")
    return result


def _coerce_int(name: str, value: Any, minimum: int, maximum: Optional[int] = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise InvalidParameterError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise InvalidParameterError(f"{name} must be >= {minimum}, got {value!r}")
    if maximum is not None and value > maximum:
        raise InvalidParameterError(f"{name} must be <= {maximum}, got {value!r}")
    return value


@dataclass(frozen=True, slots=True)
class FaultModel:
    """One faulty robot plus the Monte-Carlo trial configuration.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        robot: which robot is faulty (:data:`FAULT_ROBOTS`); irrelevant
            for ``kind="none"`` and constrained to ``"reference"`` for
            search problems (there is only one robot).
        crash_time: nominal global time of the fault onset.  Required
            (and positive) for the crash kinds; optional for
            ``byzantine`` (defaults to 0: adversarial from the start);
            must be omitted for ``none``.
        recovery_delay: nominal downtime of a ``crash-recovery`` fault
            (required there, forbidden elsewhere).
        trials: Monte-Carlo trials the ``montecarlo`` backend runs for
            this spec (deterministic backends ignore it).
        mc_seed: base seed folded with the spec hash and trial index
            into every per-trial seed.
        jitter: relative half-width of the per-trial perturbation of
            ``crash_time`` / ``recovery_delay``: trial values are drawn
            uniformly from ``value * [1 - jitter, 1 + jitter]``.  0 makes
            every trial use the nominal times.
    """

    kind: str = "none"
    robot: str = "other"
    crash_time: Optional[float] = None
    recovery_delay: Optional[float] = None
    trials: int = 1
    mc_seed: int = 0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise InvalidParameterError(
                f"unknown fault kind {self.kind!r}; available: {', '.join(FAULT_KINDS)}"
            )
        if self.robot not in FAULT_ROBOTS:
            raise InvalidParameterError(
                f"unknown fault robot {self.robot!r}; available: {', '.join(FAULT_ROBOTS)}"
            )
        if self.kind in ("crash-stop", "crash-recovery"):
            if self.crash_time is None:
                raise InvalidParameterError(f"fault kind {self.kind!r} needs crash_time")
            object.__setattr__(
                self, "crash_time", _coerce_positive_float("crash_time", self.crash_time)
            )
        elif self.kind == "byzantine":
            onset = 0.0 if self.crash_time is None else self.crash_time
            object.__setattr__(
                self,
                "crash_time",
                _coerce_positive_float("crash_time", onset, allow_zero=True),
            )
        elif self.crash_time is not None:
            raise InvalidParameterError("fault kind 'none' must not set crash_time")
        if self.kind == "crash-recovery":
            if self.recovery_delay is None:
                raise InvalidParameterError("fault kind 'crash-recovery' needs recovery_delay")
            object.__setattr__(
                self,
                "recovery_delay",
                _coerce_positive_float("recovery_delay", self.recovery_delay),
            )
        elif self.recovery_delay is not None:
            raise InvalidParameterError(
                f"recovery_delay only applies to 'crash-recovery', not {self.kind!r}"
            )
        object.__setattr__(self, "trials", _coerce_int("trials", self.trials, 1, MAX_TRIALS))
        object.__setattr__(self, "mc_seed", _coerce_int("mc_seed", self.mc_seed, 0))
        jitter = self.jitter
        try:
            jitter = float(jitter)
        except (TypeError, ValueError) as error:
            raise InvalidParameterError(f"jitter must be a number, got {jitter!r}") from error
        if not (0.0 <= jitter < 1.0) or not math.isfinite(jitter):
            raise InvalidParameterError(f"jitter must lie in [0, 1), got {self.jitter!r}")
        object.__setattr__(self, "jitter", jitter)

    # -- wire format -----------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe mapping (every field, stable shape)."""
        return {field.name: getattr(self, field.name) for field in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultModel":
        """Parse a mapping produced by :meth:`to_dict` (strict fields)."""
        if not isinstance(data, Mapping):
            raise InvalidParameterError(
                f"fault_model must be a JSON object, got {type(data).__name__}"
            )
        allowed = {field.name for field in fields(cls)}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise InvalidParameterError(
                f"unknown fault_model field(s) {', '.join(unknown)}; "
                f"allowed: {', '.join(sorted(allowed))}"
            )
        return cls(**dict(data))

    # -- behaviour flags -------------------------------------------------------
    @property
    def is_fault(self) -> bool:
        """True when a robot actually misbehaves (kind is not 'none')."""
        return self.kind != "none"

    @property
    def randomized(self) -> bool:
        """True when trial realizations can differ from one another."""
        return self.is_fault and (self.jitter > 0.0 or self.kind == "byzantine")

    def describe(self) -> str:
        """Compact human-readable rendering."""
        if not self.is_fault:
            return f"no fault (trials={self.trials}, mc_seed={self.mc_seed})"
        parts = [f"{self.kind} of {self.robot} at t={self.crash_time:g}"]
        if self.recovery_delay is not None:
            parts.append(f"recovery after {self.recovery_delay:g}")
        if self.jitter:
            parts.append(f"jitter {self.jitter:g}")
        parts.append(f"trials={self.trials}")
        return ", ".join(parts)
