"""The ``montecarlo`` backend: seeded trial ensembles with statistical envelopes.

Runs ``fault_model.trials`` independent realizations of a spec, each
seeded by :func:`~repro.faults.solver.trial_seed` from ``(spec_hash,
mc_seed, trial_index)``, and folds the solved-trial times through the
mergeable Welford accumulators of :mod:`repro.analysis.streaming` into a
mean / percentile / CI envelope carried in ``SolveResult.details``.

Determinism contract: every per-trial seed is a pure function of the
canonical spec hash, so the whole envelope is a pure function of the
spec.  Trials run (and fold) in index order, making the envelope
*bitwise* identical across serial, pooled, served and warm-store-replay
execution -- which is exactly what lets the LRU, the persistent store,
request coalescing and the cluster tier treat ``montecarlo`` like any
other deterministic backend.

Specs whose fault model is non-randomized (no jitter, non-Byzantine) --
including the ``kind="none"`` Monte-Carlo carrier -- would produce
``trials`` copies of one deterministic run; the backend runs that single
trial once and says so in ``details["trials"]`` versus
``details["trials_requested"]``.
"""

from __future__ import annotations

from typing import Any, ClassVar

from ..analysis.streaming import summarize_trials
from ..api.backends import SolverBackend, _unsupported, register_backend
from ..api.spec import ProblemSpec
from .model import FaultModel
from .solver import realize, solve_spec_with_fault

__all__ = ["MonteCarloBackend"]


class MonteCarloBackend(SolverBackend):
    """Envelope fidelity: N seeded trials folded into summary statistics."""

    name: ClassVar[str] = "montecarlo"
    fidelity: ClassVar[str] = "envelope"

    def _solve(self, spec: ProblemSpec) -> dict[str, Any]:
        fault = getattr(spec, "fault_model", None)
        if fault is None and not hasattr(spec, "fault_model"):
            # Gathering (and any future fault-less kind): no per-trial
            # seeding surface to randomize over.
            raise _unsupported(self, spec)
        if fault is None:
            fault = FaultModel()
        spec_hash = spec.canonical_hash()
        requested = fault.trials
        # Non-randomized models repeat one deterministic run; collapse.
        runs = requested if fault.randomized else 1

        trials: list[dict[str, Any]] = []
        statuses: dict[str, int] = {}
        segments = 0
        evaluations = 0
        for index in range(runs):
            realization = realize(fault, spec_hash, index)
            fields = solve_spec_with_fault(spec, realization)
            trials.append(fields)
            details = fields.get("details") or {}
            fault_block = details.get("fault") or {}
            status = fault_block.get("status")
            if status is None:
                status = "solved" if fields.get("solved") else "unsolved-within-horizon"
            statuses[status] = statuses.get(status, 0) + 1
            segments += int(details.get("segments_processed") or 0)
            evaluations += int(details.get("gap_evaluations") or 0)

        solved_count = sum(1 for fields in trials if fields.get("solved"))
        solve_rate = solved_count / runs
        solved_times = [
            float(fields["measured_time"])
            for fields in trials
            if fields.get("solved") and fields.get("measured_time") is not None
        ]
        envelope = summarize_trials(solved_times)
        first = trials[0]
        base_algorithm = first.get("algorithm")
        if base_algorithm is None:
            algorithm = f"montecarlo x{runs}"
        else:
            algorithm = f"montecarlo x{runs} [{base_algorithm}]"
        return {
            "feasible": first.get("feasible"),
            "solved": solve_rate == 1.0,
            "measured_time": envelope["mean"],
            "bound": first.get("bound"),
            "algorithm": algorithm,
            "details": {
                "trials": runs,
                "trials_requested": requested,
                "mc_seed": fault.mc_seed,
                "solve_rate": solve_rate,
                "statuses": {key: statuses[key] for key in sorted(statuses)},
                "envelope": envelope,
                "segments_processed": segments,
                "gap_evaluations": evaluations,
                "fault": fault.to_dict(),
            },
        }


register_backend(MonteCarloBackend.name, MonteCarloBackend)
