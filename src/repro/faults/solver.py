"""Fault-aware solving: one seeded trial of a faulted (or healthy) spec.

This module turns a spec + :class:`FaultRealization` into the same
envelope-field dictionaries the healthy backends produce, with one hard
guarantee: **the fault path never raises**.  An instance that cannot meet
under the injected fault -- a robot that crashed before discovery, a
Byzantine partner that wandered off -- comes back as a typed unsolved
result (``solved=False`` plus a ``details["fault"]["status"]`` tag), not
as a :class:`HorizonExceededError`.  Fault sweeps are *supposed* to
contain unreachable cases; exceptions would abort the sweep, typed
results let the envelope count them.

Seeding contract (the determinism gate of the Monte-Carlo backend): the
seed of trial ``i`` is ``sha256(f"{spec_hash}:{mc_seed}:{i}")`` truncated
to 63 bits.  It depends only on the canonical spec hash, the spec's own
``mc_seed`` and the trial index -- never on process, thread, host or
wall clock -- so the same spec produces the same realizations everywhere.

A deliberately *emergent* property of the model: a provably infeasible
rendezvous (identical robots, Theorem 4) can become solvable under a
crash fault, because the wreck is a static target that breaks the
symmetry the impossibility proof needs.  The envelope keeps the analytic
verdict in ``feasible`` (still False) next to ``solved=True``; E14
asserts this crossover.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Any, Optional

from ..algorithms import UniversalSearch, WaitAndSearchRendezvous
from ..core import (
    classify_feasibility,
    guaranteed_discovery_round,
    rendezvous_time_bound,
    theorem1_search_bound,
)
from ..errors import HorizonExceededError, InfeasibleConfigurationError, InvalidParameterError
from ..geometry import ORIGIN
from ..robots import Robot
from ..simulation import simulate_search_trajectory, simulate_trajectory_pair
from .injection import byzantine_trajectory, crash_recovery_trajectory, crash_stop_trajectory
from .model import FaultModel

__all__ = [
    "FaultRealization",
    "trial_seed",
    "realize",
    "nominal_realization",
    "solve_spec_with_fault",
]

#: Safety slack applied to bound-derived horizons (mirrors the core solvers).
SAFETY_FACTOR = 1.25

#: Crash faults retry with a doubled horizon this many times before the
#: trial is declared unsolved; Byzantine faults get a single attempt (no
#: theorem guarantees an adversarial walk ever comes close).
MAX_CRASH_ATTEMPTS = 4

#: Floor applied to jittered times so a perturbation can never produce a
#: non-positive crash time or recovery delay.
_MIN_REALIZED_TIME = 1e-9


@dataclass(frozen=True, slots=True)
class FaultRealization:
    """The concrete, per-trial draw of a fault model.

    Attributes:
        trial_index: which Monte-Carlo trial this is (0 for the nominal
            single-shot realization used by the simulation backend).
        seed: the 63-bit deterministic trial seed (see :func:`trial_seed`).
        crash_time: realized fault onset (None for ``kind="none"``).
        recovery_delay: realized downtime (crash-recovery only).
        walk_seed: seed of the Byzantine adversarial walk, derived from
            ``seed`` so the walk and the jitter draws are independent.
    """

    trial_index: int
    seed: int
    crash_time: Optional[float] = None
    recovery_delay: Optional[float] = None
    walk_seed: int = 0


def trial_seed(spec_hash: str, mc_seed: int, trial_index: int) -> int:
    """The deterministic 63-bit seed of one Monte-Carlo trial.

    Depends only on ``(spec_hash, mc_seed, trial_index)`` -- same spec,
    same seed, same trial gives the same randomness on every machine,
    process and execution tier.
    """
    if trial_index < 0:
        raise InvalidParameterError(f"trial_index must be non-negative, got {trial_index!r}")
    digest = hashlib.sha256(f"{spec_hash}:{mc_seed}:{trial_index}".encode("utf-8")).hexdigest()
    return int(digest[:16], 16) & (2**63 - 1)


def realize(fault: FaultModel, spec_hash: str, trial_index: int) -> FaultRealization:
    """Draw the concrete fault times of trial ``trial_index``.

    With ``jitter == 0`` every trial realizes the nominal times (only a
    Byzantine walk still varies, through its per-trial walk seed); with
    ``jitter > 0`` the crash time and recovery delay are perturbed
    uniformly within ``value * [1 - jitter, 1 + jitter]``.
    """
    seed = trial_seed(spec_hash, fault.mc_seed, trial_index)
    if not fault.is_fault:
        return FaultRealization(trial_index=trial_index, seed=seed)
    rng = random.Random(seed)
    walk_seed = rng.getrandbits(63)

    def jittered(value: Optional[float], allow_zero: bool) -> Optional[float]:
        if value is None:
            return None
        if fault.jitter > 0.0:
            value = value * (1.0 + fault.jitter * rng.uniform(-1.0, 1.0))
        if value <= 0.0 and not allow_zero:
            value = _MIN_REALIZED_TIME
        return max(value, 0.0)

    return FaultRealization(
        trial_index=trial_index,
        seed=seed,
        crash_time=jittered(fault.crash_time, allow_zero=fault.kind == "byzantine"),
        recovery_delay=jittered(fault.recovery_delay, allow_zero=False),
        walk_seed=walk_seed,
    )


def nominal_realization(fault: FaultModel, spec_hash: str) -> FaultRealization:
    """Trial 0 with the jitter suppressed: the fault at its nominal times.

    This is what the deterministic ``simulation`` backend runs for a
    faulted spec -- one representative realization, reproducible without
    any Monte-Carlo machinery.
    """
    seed = trial_seed(spec_hash, fault.mc_seed, 0)
    walk_seed = random.Random(seed).getrandbits(63)
    return FaultRealization(
        trial_index=0,
        seed=seed,
        crash_time=fault.crash_time if fault.is_fault else None,
        recovery_delay=fault.recovery_delay,
        walk_seed=walk_seed,
    )


def _fault_details(fault: FaultModel, realization: FaultRealization) -> dict[str, Any]:
    """The ``details["fault"]`` block shared by all fault envelopes."""
    return {
        "kind": fault.kind,
        "robot": fault.robot,
        "crash_time": realization.crash_time,
        "recovery_delay": realization.recovery_delay,
        "trial_index": realization.trial_index,
        "trial_seed": realization.seed,
        "jitter": fault.jitter,
    }


def _inject(base, fault: FaultModel, realization: FaultRealization, speed: float):
    """The faulty robot's world trajectory under this realization."""
    if fault.kind == "crash-stop":
        return crash_stop_trajectory(base, realization.crash_time)
    if fault.kind == "crash-recovery":
        return crash_recovery_trajectory(base, realization.crash_time, realization.recovery_delay)
    if fault.kind == "byzantine":
        return byzantine_trajectory(base, realization.crash_time, realization.walk_seed, speed)
    raise InvalidParameterError(f"cannot inject fault kind {fault.kind!r}")


def _solve_search_with_fault(spec: Any, realization: FaultRealization) -> dict[str, Any]:
    """One trial of a faulted search spec (crash kinds on the sole robot)."""
    fault: FaultModel = spec.fault_model
    instance = spec.to_instance()
    bound = theorem1_search_bound(instance.distance, instance.visibility)
    algorithm = UniversalSearch()
    robot = Robot(name="R", start=ORIGIN, attributes=instance.attributes)
    world = _inject(robot.world_trajectory(algorithm), fault, realization, robot.max_speed)
    horizon = bound * SAFETY_FACTOR
    if fault.kind == "crash-recovery":
        horizon += realization.recovery_delay
    outcome = simulate_search_trajectory(world, instance.target, instance.visibility, horizon)
    if outcome.solved:
        status = "solved"
    elif fault.kind == "crash-stop":
        status = "crashed-before-discovery"
    else:
        status = "unsolved-within-horizon"
    details_fault = _fault_details(fault, realization)
    details_fault["status"] = status
    return {
        "feasible": True,
        "solved": outcome.solved,
        "measured_time": outcome.event.time if outcome.solved else None,
        "bound": bound,
        "algorithm": f"{algorithm.describe()} [fault-injected]",
        "details": {
            "guaranteed_round": guaranteed_discovery_round(
                instance.distance, instance.visibility
            ),
            "difficulty": spec.difficulty,
            "segments_processed": outcome.segments_processed,
            "gap_evaluations": outcome.gap_evaluations,
            "horizon": outcome.horizon,
            "fault": details_fault,
        },
    }


def _rendezvous_base_horizon(
    spec: Any, instance: Any, bound: Optional[float], fault: FaultModel,
    realization: FaultRealization, faulty_speed: float,
) -> float:
    """First-attempt horizon for a faulted rendezvous trial.

    Preference order: the spec's explicit horizon, then the analytic
    rendezvous bound, then (crash kinds) the Theorem 1 time to search out
    the wreck -- whose distance from the healthy robot's start is at most
    ``d + v * crash_time`` -- and as a last resort a difficulty-scaled
    guess.  Crash attempts escalate from here; the derivation only has to
    be in the right ballpark, not tight.
    """
    extra = (realization.recovery_delay or 0.0) + (realization.crash_time or 0.0)
    if spec.horizon is not None:
        return spec.horizon + (realization.recovery_delay or 0.0)
    candidates = []
    if bound is not None:
        candidates.append(bound * SAFETY_FACTOR)
    if fault.kind in ("crash-stop", "crash-recovery"):
        wreck_distance = instance.distance + faulty_speed * (realization.crash_time or 0.0)
        candidates.append(
            theorem1_search_bound(
                max(wreck_distance, instance.visibility * 1.001), instance.visibility
            )
            * SAFETY_FACTOR
        )
    if not candidates:
        candidates.append(
            theorem1_search_bound(instance.distance, instance.visibility) * SAFETY_FACTOR
        )
    return max(candidates) + extra


def _solve_rendezvous_with_fault(spec: Any, realization: FaultRealization) -> dict[str, Any]:
    """One trial of a faulted rendezvous spec."""
    fault: FaultModel = spec.fault_model
    instance = spec.to_instance()
    attributes = instance.attributes.normalized()
    verdict = classify_feasibility(attributes)
    bound = rendezvous_time_bound(instance)
    if attributes.differs_in_clock() or not verdict.feasible:
        algorithm = WaitAndSearchRendezvous()
    else:
        algorithm = UniversalSearch()
    pair = instance.robot_pair()
    trajectory_reference = pair.reference.world_trajectory(algorithm)
    trajectory_other = pair.other.world_trajectory(algorithm)
    if fault.robot == "reference":
        faulty_speed = pair.reference.max_speed
        trajectory_reference = _inject(trajectory_reference, fault, realization, faulty_speed)
    else:
        faulty_speed = pair.other.max_speed
        trajectory_other = _inject(trajectory_other, fault, realization, faulty_speed)

    horizon = _rendezvous_base_horizon(spec, instance, bound, fault, realization, faulty_speed)
    attempts = MAX_CRASH_ATTEMPTS if fault.kind != "byzantine" and spec.horizon is None else 1
    outcome = None
    used_attempts = 0
    for attempt in range(attempts):
        used_attempts = attempt + 1
        outcome = simulate_trajectory_pair(
            trajectory_reference, trajectory_other, instance.visibility, horizon
        )
        if outcome.solved:
            break
        horizon *= 2.0

    solved = outcome.solved
    status = "solved" if solved else "unsolved-within-horizon"
    details_fault = _fault_details(fault, realization)
    details_fault["status"] = status
    details_fault["attempts"] = used_attempts
    return {
        "feasible": verdict.feasible,
        "solved": solved,
        "measured_time": outcome.event.time if solved else None,
        "bound": bound,
        "algorithm": f"{algorithm.describe()} [fault-injected]",
        "details": {
            "verdict": verdict.describe(),
            "difficulty": spec.difficulty,
            "segments_processed": outcome.segments_processed,
            "gap_evaluations": outcome.gap_evaluations,
            "horizon": outcome.horizon,
            "fault": details_fault,
        },
    }


def _solve_healthy(spec: Any, realization: FaultRealization) -> dict[str, Any]:
    """One trial of a spec whose fault model is the 'none' carrier.

    Runs the plain deterministic solvers but converts their exceptions
    into typed results so a Monte-Carlo sweep over mixed suites never
    aborts mid-envelope.
    """
    # Imported here: repro.core and repro.api.backends are import-time
    # consumers of this module's package, so the envelope builders are
    # resolved lazily at first call.
    from ..api.backends import (
        SimulationBackend,
        rendezvous_report_fields,
        search_report_fields,
    )
    from ..api.spec import RendezvousProblem, SearchProblem
    from ..core import solve_rendezvous, solve_search

    try:
        if isinstance(spec, SearchProblem):
            fields = search_report_fields(spec, solve_search(spec.to_instance()))
        elif isinstance(spec, RendezvousProblem):
            report = solve_rendezvous(
                spec.to_instance(),
                horizon=spec.horizon,
                allow_infeasible=spec.allow_infeasible,
            )
            fields = rendezvous_report_fields(spec, report)
        else:
            fields = SimulationBackend()._solve(spec)
        status = "solved" if fields.get("solved") else "unsolved-within-horizon"
    except InfeasibleConfigurationError as error:
        fields = {
            "feasible": False,
            "solved": False,
            "measured_time": None,
            "bound": None,
            "algorithm": None,
            "details": {"verdict": str(error)},
        }
        status = "infeasible"
    except HorizonExceededError as error:
        fields = {
            "feasible": True,
            "solved": False,
            "measured_time": None,
            "bound": None,
            "algorithm": None,
            "details": {"horizon": error.horizon, "error": str(error)},
        }
        status = "unsolved-within-horizon"
    details = dict(fields.get("details") or {})
    fault = getattr(spec, "fault_model", None)
    if fault is not None:
        block = _fault_details(fault, realization)
        block["status"] = status
        details["fault"] = block
    fields["details"] = details
    return fields


def solve_spec_with_fault(spec: Any, realization: FaultRealization) -> dict[str, Any]:
    """Envelope fields for one seeded trial of ``spec``.

    Dispatches on the spec kind and the fault kind; specs without a
    misbehaving robot (``fault_model`` absent or ``kind="none"``) run the
    plain deterministic solvers with exception-to-typed-result capture.
    """
    fault: Optional[FaultModel] = getattr(spec, "fault_model", None)
    if fault is None or not fault.is_fault:
        return _solve_healthy(spec, realization)
    from ..api.spec import RendezvousProblem, SearchProblem

    if isinstance(spec, SearchProblem):
        return _solve_search_with_fault(spec, realization)
    if isinstance(spec, RendezvousProblem):
        return _solve_rendezvous_with_fault(spec, realization)
    raise InvalidParameterError(
        f"fault injection does not support spec kind {getattr(spec, 'kind', '?')!r}"
    )
