"""Trajectory-level fault injection.

A fault never changes the *algorithm* a robot runs -- it changes what the
robot's body actually does.  This module therefore operates on the
world-frame segment stream of a robot's trajectory:

* ``crash-stop`` truncates the stream at the realized crash time.  The
  resulting trajectory is finite; the simulation engine parks finite
  trajectories at their final position, so the wreck stays physically
  present and a live partner that comes within visibility of it still
  completes the rendezvous.
* ``crash-recovery`` splits the stream at the crash time, inserts a
  stationary :class:`~repro.motion.wait.WaitMotion` of the realized
  downtime, and resumes the remaining segments unchanged -- the robot
  continues its protocol exactly where it left off, shifted in time.
* ``byzantine`` follows the protocol until the onset time and then
  abandons it for a seeded adversarial random walk at the robot's full
  physical speed.  Its own detection announcements are untrusted (and
  ignored by the fault solver); only the correct robot's
  distance-within-``r`` sensing counts.

All three injectors preserve continuity (every produced segment starts
where the previous one ended), so the strict :class:`LazyTrajectory`
continuity check keeps guarding the fault path too.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..errors import InvalidParameterError, TrajectoryError
from ..geometry import Vec2
from ..motion import ArcMotion, LazyTrajectory, LinearMotion, MotionSegment, WaitMotion

__all__ = [
    "split_segment",
    "crash_stop_trajectory",
    "crash_recovery_trajectory",
    "byzantine_trajectory",
]

#: Local times closer than this to a segment boundary snap to the boundary
#: instead of producing a sliver segment.
_SPLIT_TOLERANCE = 1e-12


def split_segment(segment: MotionSegment, local_time: float) -> tuple[MotionSegment, MotionSegment]:
    """Split one motion segment at local time ``t`` into (head, tail).

    Both halves are exact primitives of the same kind as the input (a
    similarity-closed family), so a split trajectory remains exactly
    simulatable -- no resampling, no drift.
    """
    duration = segment.duration
    if not (0.0 <= local_time <= duration):
        raise InvalidParameterError(
            f"split time {local_time!r} outside the segment's [0, {duration!r}]"
        )
    head_duration = local_time
    tail_duration = duration - local_time
    if isinstance(segment, WaitMotion):
        return (
            WaitMotion(segment.start, head_duration),
            WaitMotion(segment.start, tail_duration),
        )
    if isinstance(segment, LinearMotion):
        mid = segment.position(local_time)
        return (
            LinearMotion(segment.start, mid, head_duration),
            LinearMotion(mid, segment.end, tail_duration),
        )
    if isinstance(segment, ArcMotion):
        fraction = 0.0 if duration == 0.0 else local_time / duration
        return (
            ArcMotion(
                segment.center,
                segment.radius,
                segment.start_angle,
                segment.sweep * fraction,
                head_duration,
            ),
            ArcMotion(
                segment.center,
                segment.radius,
                segment.angle_at(local_time),
                segment.sweep * (1.0 - fraction),
                tail_duration,
            ),
        )
    raise TrajectoryError(f"cannot split segment type {type(segment).__name__!r}")


def _timed_segments(base: LazyTrajectory) -> Iterator[tuple[float, float, MotionSegment]]:
    """Stream every ``(start, end, segment)`` triple of ``base`` in order."""
    index = 0
    while True:
        entry = base.timed_segment(index)
        if entry is None:
            return
        yield entry
        index += 1


def _prefix_until(
    base: LazyTrajectory, cutoff: float
) -> Iterator[tuple[MotionSegment | None, MotionSegment]]:
    """Yield ``(pending_tail, produced_segment)`` pairs covering ``[0, cutoff]``.

    Segments strictly before the cutoff come through unchanged (with a
    None tail); the segment straddling the cutoff is split and its tail is
    attached so callers can resume the protocol (crash-recovery) or drop
    it (crash-stop).  The final pair carries the tail; every earlier pair
    has ``pending_tail is None``.
    """
    for start, end, segment in _timed_segments(base):
        if end <= cutoff + _SPLIT_TOLERANCE:
            yield None, segment
            continue
        local = min(max(cutoff - start, 0.0), segment.duration)
        head, tail = split_segment(segment, local)
        yield tail, head
        return


def _position_at_cutoff(base: LazyTrajectory, cutoff: float) -> Vec2:
    """Position of the robot at the cutoff (falls back to the start)."""
    try:
        return base.position(cutoff)
    except TrajectoryError:
        raise
    except Exception:  # pragma: no cover - defensive
        return base.start


def crash_stop_trajectory(base: LazyTrajectory, crash_time: float) -> LazyTrajectory:
    """The prefix of ``base`` up to ``crash_time``; the robot never moves again.

    The result is a *finite* trajectory.  The engine parks finite
    trajectories at their final position, which is exactly the crash-stop
    semantics: the robot halts mid-motion and stays there, still visible.
    """
    if crash_time <= 0.0:
        raise InvalidParameterError(f"crash_time must be positive, got {crash_time!r}")

    def segments() -> Iterator[MotionSegment]:
        produced = False
        for tail, segment in _prefix_until(base, crash_time):
            del tail  # crash-stop never resumes
            produced = True
            yield segment
        if not produced:
            # Degenerate: crash before any motion materialised.
            yield WaitMotion(base.start, 0.0)

    return LazyTrajectory(segments())


def crash_recovery_trajectory(
    base: LazyTrajectory, crash_time: float, recovery_delay: float
) -> LazyTrajectory:
    """``base`` with a stationary gap of ``recovery_delay`` inserted at ``crash_time``.

    The robot freezes wherever the crash caught it, waits out the
    downtime, then resumes its protocol exactly where it left off (the
    split tail followed by every remaining segment).  Everything after the
    crash happens ``recovery_delay`` later in global time.
    """
    if crash_time <= 0.0:
        raise InvalidParameterError(f"crash_time must be positive, got {crash_time!r}")
    if recovery_delay <= 0.0:
        raise InvalidParameterError(f"recovery_delay must be positive, got {recovery_delay!r}")

    def segments() -> Iterator[MotionSegment]:
        pending_tail: MotionSegment | None = None
        produced = False
        consumed = 0
        for tail, segment in _prefix_until(base, crash_time):
            produced = True
            yield segment
            consumed += 1
            pending_tail = tail
        halt_at = _position_at_cutoff(base, crash_time) if produced else base.start
        yield WaitMotion(halt_at, recovery_delay)
        if pending_tail is not None and pending_tail.duration > 0.0:
            yield pending_tail
        for index, entry in enumerate(_timed_segments(base)):
            if index < consumed:
                continue
            yield entry[2]

    return LazyTrajectory(segments())


def byzantine_trajectory(
    base: LazyTrajectory, onset: float, seed: int, speed: float
) -> LazyTrajectory:
    """``base`` until ``onset``, then a seeded adversarial random walk.

    The walk moves at the robot's full physical ``speed`` in uniformly
    random directions with step durations in ``[0.25, 1.5)`` -- an
    adversary constrained only by the robot's physics.  The walk is fully
    determined by ``seed``, so the same trial seed reproduces the same
    adversary bit-for-bit.
    """
    if onset < 0.0:
        raise InvalidParameterError(f"onset must be non-negative, got {onset!r}")
    if speed <= 0.0:
        raise InvalidParameterError(f"speed must be positive, got {speed!r}")

    def segments() -> Iterator[MotionSegment]:
        produced = False
        if onset > 0.0:
            for tail, segment in _prefix_until(base, onset):
                del tail
                produced = True
                yield segment
        position = _position_at_cutoff(base, onset) if produced else base.start
        if not produced:
            yield WaitMotion(position, 0.0)
        rng = random.Random(seed)
        while True:
            duration = 0.25 + 1.25 * rng.random()
            heading = rng.random() * 6.283185307179586
            target = position + Vec2.polar(speed * duration, heading)
            yield LinearMotion(position, target, duration)
            position = target

    return LazyTrajectory(segments())
