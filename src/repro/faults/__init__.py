"""``repro.faults`` -- fault models, trajectory injection, seeded trials.

The subsystem has four layers, bottom-up:

* :mod:`repro.faults.model` -- :class:`FaultModel`, the frozen
  declarative taxonomy (crash-stop / crash-recovery / byzantine) plus
  the Monte-Carlo trial configuration.  Specs embed it as an optional
  ``fault_model`` field that participates in canonical hashing only when
  present.
* :mod:`repro.faults.injection` -- pure trajectory surgery: truncate,
  pause-and-resume, or divert a robot's world-frame segment stream.
* :mod:`repro.faults.solver` -- one seeded trial of a (possibly
  faulted) spec as typed envelope fields; never raises on
  unsolvable-under-fault cases.
* :mod:`repro.faults.montecarlo` -- the ``montecarlo`` backend folding
  N deterministic trials into a statistical envelope.

Only the model and injection layers are imported here: the solver and
backend import :mod:`repro.api`, which itself imports
:class:`FaultModel` from this package, so they load on first use
(``import repro.api`` registers the backend).
"""

from .injection import (
    byzantine_trajectory,
    crash_recovery_trajectory,
    crash_stop_trajectory,
    split_segment,
)
from .model import FAULT_KINDS, FAULT_ROBOTS, FaultModel

__all__ = [
    "FAULT_KINDS",
    "FAULT_ROBOTS",
    "FaultModel",
    "split_segment",
    "crash_stop_trajectory",
    "crash_recovery_trajectory",
    "byzantine_trajectory",
]
