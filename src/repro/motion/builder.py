"""Local-frame trajectory builder.

The paper's algorithms are written in the robot's own vocabulary: "move
along the x axis to radial position delta", "traverse the circle of radius
delta", "wait for time T".  A :class:`TrajectoryBuilder` records those
commands as motion segments *in the robot's local frame*, where the robot
moves at local speed 1 (one local distance unit per local time unit).

The builder is deliberately dumb: it does not know about attributes.
Mapping local segments to the two robots' different world trajectories is
the job of :mod:`repro.motion.transform` via a
:class:`~repro.geometry.frame.ReferenceFrame`.
"""

from __future__ import annotations

import math
from typing import Iterator, List

from ..errors import InvalidParameterError
from ..geometry import ORIGIN, Vec2
from .arc import ArcMotion
from .linear import LinearMotion
from .segment import MotionSegment
from .trajectory import Trajectory
from .wait import WaitMotion

__all__ = ["TrajectoryBuilder"]


class TrajectoryBuilder:
    """Accumulates local-frame motion segments command by command."""

    __slots__ = ("_position", "_segments")

    def __init__(self, start: Vec2 = ORIGIN) -> None:
        self._position = start
        self._segments: List[MotionSegment] = []

    # -- state -----------------------------------------------------------------
    @property
    def position(self) -> Vec2:
        """Current local position (end of the last command)."""
        return self._position

    @property
    def elapsed(self) -> float:
        """Total local time spent so far."""
        return sum(segment.duration for segment in self._segments)

    @property
    def segments(self) -> list[MotionSegment]:
        """Copy of the accumulated segments."""
        return list(self._segments)

    def _emit(self, segment: MotionSegment) -> MotionSegment:
        self._segments.append(segment)
        self._position = segment.end
        return segment

    # -- commands ----------------------------------------------------------------
    def move_to(self, target: Vec2) -> MotionSegment:
        """Move in a straight line to ``target`` at local speed 1."""
        distance = self._position.distance_to(target)
        return self._emit(LinearMotion(self._position, target, distance))

    def move_by(self, displacement: Vec2) -> MotionSegment:
        """Move in a straight line by ``displacement`` at local speed 1."""
        return self.move_to(self._position + displacement)

    def wait(self, duration: float) -> MotionSegment:
        """Stay put for ``duration`` local time units."""
        if duration < 0.0:
            raise InvalidParameterError(f"wait duration must be non-negative, got {duration!r}")
        return self._emit(WaitMotion(self._position, duration))

    def arc_around(self, center: Vec2, sweep: float) -> MotionSegment:
        """Follow the circle centred at ``center`` through ``sweep`` radians.

        The robot must currently be on that circle (its distance to
        ``center`` is the radius).  Positive sweep is counter-clockwise.
        """
        radius = self._position.distance_to(center)
        start_angle = (self._position - center).angle() if radius > 0.0 else 0.0
        duration = radius * abs(sweep)
        return self._emit(ArcMotion(center, radius, start_angle, sweep, duration))

    def full_circle_around(self, center: Vec2, counter_clockwise: bool = True) -> MotionSegment:
        """Traverse the full circle centred at ``center`` once."""
        sweep = 2.0 * math.pi if counter_clockwise else -2.0 * math.pi
        return self.arc_around(center, sweep)

    # -- output ---------------------------------------------------------------------
    def build(self) -> Trajectory:
        """Freeze the accumulated commands into a finite trajectory."""
        return Trajectory(self._segments)

    def drain(self) -> Iterator[MotionSegment]:
        """Yield and clear the accumulated segments (for streaming use)."""
        segments = self._segments
        self._segments = []
        yield from segments

    def __len__(self) -> int:
        return len(self._segments)
