"""Sampling utilities for trajectories.

These are used by the visualisation code and by tests that need dense
numeric views of a trajectory (speed checks, coverage checks).  The
simulator itself never samples -- it works on exact segments.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import InvalidParameterError
from ..geometry import Vec2
from .lazy import LazyTrajectory
from .trajectory import Trajectory

__all__ = [
    "sample_positions",
    "sample_times",
    "positions_array",
    "numeric_path_length",
    "numeric_max_speed",
]


def sample_times(duration: float, count: int) -> list[float]:
    """``count`` evenly spaced times spanning ``[0, duration]``."""
    if count < 2:
        raise InvalidParameterError(f"need at least 2 samples, got {count!r}")
    if duration < 0.0:
        raise InvalidParameterError(f"duration must be non-negative, got {duration!r}")
    return [duration * index / (count - 1) for index in range(count)]


def sample_positions(
    trajectory: Trajectory | LazyTrajectory, times: Sequence[float]
) -> list[Vec2]:
    """Positions of the trajectory at the given times."""
    return [trajectory.position(t) for t in times]


def positions_array(
    trajectory: Trajectory | LazyTrajectory, times: Sequence[float]
) -> np.ndarray:
    """Positions stacked as an ``(n, 2)`` numpy array."""
    return np.array([[p.x, p.y] for p in sample_positions(trajectory, times)], dtype=float)


def numeric_path_length(trajectory: Trajectory, samples_per_segment: int = 64) -> float:
    """Path length estimated by dense sampling (cross-check for tests)."""
    total = 0.0
    for _, _, segment in trajectory.timed_segments():
        if segment.duration == 0.0:
            continue
        previous = segment.position(0.0)
        for index in range(1, samples_per_segment + 1):
            current = segment.position(segment.duration * index / samples_per_segment)
            total += previous.distance_to(current)
            previous = current
    return total


def numeric_max_speed(trajectory: Trajectory, samples_per_segment: int = 64) -> float:
    """Maximum speed estimated by finite differences (cross-check for tests)."""
    best = 0.0
    for _, _, segment in trajectory.timed_segments():
        if segment.duration == 0.0:
            continue
        step = segment.duration / samples_per_segment
        previous = segment.position(0.0)
        for index in range(1, samples_per_segment + 1):
            current = segment.position(step * index)
            best = max(best, previous.distance_to(current) / step)
            previous = current
    return best
