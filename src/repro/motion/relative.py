"""Relative motion and the paper's *equivalent search trajectory*.

Section 3 of the paper reduces rendezvous (with equal clocks) to search:
if both robots run the algorithm whose reference trajectory is ``S(t)``,
then the vector from robot R to robot R' is ``d - S_circ(t)`` where

    S_circ(t) = S(t) - S'(t) = (I - T) S(t) = T_circ S(t)

and rendezvous happens exactly when this equivalent search trajectory
comes within ``r`` of the (static) point ``d``.

Two views of the relative motion are provided:

* :class:`EquivalentSearchTrajectory` -- the algebraic view ``T_circ S(t)``
  used by the reduction analysis and its tests (only valid when both
  clocks agree, i.e. ``tau = 1``).
* :class:`RelativeMotion` -- the fully general view built from the two
  *world* trajectories, valid for any attribute combination; this is what
  the simulator measures.
"""

from __future__ import annotations

from ..geometry import LinearMap2, Vec2
from .lazy import LazyTrajectory
from .trajectory import Trajectory

__all__ = ["EquivalentSearchTrajectory", "RelativeMotion"]


class EquivalentSearchTrajectory:
    """The trajectory ``S_circ(t) = T_circ S(t)`` of Definition 1."""

    __slots__ = ("_reference", "_matrix")

    def __init__(self, reference: Trajectory | LazyTrajectory, matrix: LinearMap2) -> None:
        self._reference = reference
        self._matrix = matrix

    @property
    def matrix(self) -> LinearMap2:
        """The relative matrix ``T_circ``."""
        return self._matrix

    def position(self, t: float) -> Vec2:
        """Value of the equivalent search trajectory at time ``t``."""
        return self._matrix.apply(self._reference.position(t))

    def distance_to_target(self, t: float, target: Vec2) -> float:
        """Distance from the equivalent searcher to a static ``target``."""
        return self.position(t).distance_to(target)

    def max_speed_up_to(self, t: float) -> float:
        """Upper bound on the speed of the equivalent searcher on ``[0, t]``.

        The equivalent searcher moves at most ``||T_circ||_2`` times faster
        than the reference robot (operator norm), and the reference robot
        moves at speed at most 1.
        """
        if isinstance(self._reference, LazyTrajectory):
            base = self._reference.max_speed_up_to(t)
        else:
            base = self._reference.max_speed()
        return base * self._matrix.operator_norm()


class RelativeMotion:
    """Relative position of two robots given their world trajectories."""

    __slots__ = ("_first", "_second")

    def __init__(
        self,
        first: Trajectory | LazyTrajectory,
        second: Trajectory | LazyTrajectory,
    ) -> None:
        self._first = first
        self._second = second

    def separation(self, t: float) -> Vec2:
        """Vector from the second robot to the first at time ``t``."""
        return self._first.position(t) - self._second.position(t)

    def gap(self, t: float) -> float:
        """Distance between the robots at time ``t``."""
        return self.separation(t).norm()

    def within(self, t: float, radius: float) -> bool:
        """True when the robots see each other at time ``t``."""
        return self.gap(t) <= radius
