"""Circular-arc motion at constant speed."""

from __future__ import annotations

import math

from ..errors import InvalidParameterError
from ..geometry import Vec2
from .segment import MotionSegment

__all__ = ["ArcMotion"]


class ArcMotion(MotionSegment):
    """Motion along a circular arc at constant angular (and linear) speed.

    The arc is described by its ``center``, ``radius``, ``start_angle``
    (polar angle of the starting point as seen from the center) and
    ``sweep`` (signed angle traversed: positive is counter-clockwise).
    The robot covers the arc in ``duration`` time units.
    """

    __slots__ = ("_center", "_radius", "_start_angle", "_sweep", "_duration", "_speed")

    def __init__(
        self,
        center: Vec2,
        radius: float,
        start_angle: float,
        sweep: float,
        duration: float,
    ) -> None:
        if radius < 0.0:
            raise InvalidParameterError(f"radius must be non-negative, got {radius!r}")
        if duration < 0.0:
            raise InvalidParameterError(f"duration must be non-negative, got {duration!r}")
        length = radius * abs(sweep)
        if duration == 0.0 and length > 0.0:
            raise InvalidParameterError(
                "an arc covering a positive distance needs a positive duration"
            )
        self._center = center
        self._radius = float(radius)
        self._start_angle = float(start_angle)
        self._sweep = float(sweep)
        self._duration = float(duration)
        self._speed = 0.0 if duration == 0.0 else length / duration

    @staticmethod
    def with_speed(
        center: Vec2, radius: float, start_angle: float, sweep: float, speed: float
    ) -> "ArcMotion":
        """Build the motion from its linear speed instead of its duration."""
        if speed <= 0.0:
            raise InvalidParameterError(f"speed must be positive, got {speed!r}")
        duration = radius * abs(sweep) / speed
        return ArcMotion(center, radius, start_angle, sweep, duration)

    # -- arc specific accessors -------------------------------------------------
    @property
    def center(self) -> Vec2:
        """Center of the supporting circle."""
        return self._center

    @property
    def radius(self) -> float:
        """Radius of the supporting circle."""
        return self._radius

    @property
    def start_angle(self) -> float:
        """Polar angle of the starting point."""
        return self._start_angle

    @property
    def sweep(self) -> float:
        """Signed traversed angle (positive counter-clockwise)."""
        return self._sweep

    @property
    def end_angle(self) -> float:
        """Polar angle of the final point."""
        return self._start_angle + self._sweep

    def angle_at(self, t: float) -> float:
        """Polar angle of the robot at local time ``t``."""
        t = self._check_time(t)
        if self._duration == 0.0:
            return self._start_angle
        return self._start_angle + self._sweep * (t / self._duration)

    # -- MotionSegment interface ---------------------------------------------------
    @property
    def duration(self) -> float:
        return self._duration

    @property
    def start(self) -> Vec2:
        return self._center + Vec2.polar(self._radius, self._start_angle)

    @property
    def end(self) -> Vec2:
        return self._center + Vec2.polar(self._radius, self.end_angle)

    @property
    def speed(self) -> float:
        return self._speed

    def position(self, t: float) -> Vec2:
        return self._center + Vec2.polar(self._radius, self.angle_at(t))

    def path_length(self) -> float:
        return self._radius * abs(self._sweep)

    def bounding_center_radius(self) -> tuple[Vec2, float]:
        # The whole supporting circle is a valid (and cheap) bound; for
        # short arcs a chord-based bound would be tighter but correctness
        # matters more than tightness here.
        if abs(self._sweep) >= math.pi:
            return self._center, self._radius
        chord_mid = self.start.lerp(self.end, 0.5)
        # Every arc point is within radius * (1 - cos(sweep/2)) + half-chord
        # of the chord midpoint; use the simpler, slightly looser bound of
        # the distance to the farthest arc endpoint plus the sagitta.
        half_angle = abs(self._sweep) / 2.0
        sagitta = self._radius * (1.0 - math.cos(half_angle))
        half_chord = self._radius * math.sin(half_angle)
        return chord_mid, math.hypot(half_chord, 0.0) + sagitta

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ArcMotion(center={self._center!r}, radius={self._radius:.6g}, "
            f"start_angle={self._start_angle:.6g}, sweep={self._sweep:.6g}, "
            f"duration={self._duration:.6g})"
        )
