"""Compiled trajectories: structure-of-arrays views of motion prefixes.

The scalar simulator walks rich :class:`~repro.motion.segment.MotionSegment`
objects one at a time, which is exact but costs a Python dispatch per
segment per instance.  A :class:`CompiledTrajectory` lowers a finite
trajectory prefix into flat numpy arrays -- one row per segment, one column
per parameter -- so that the vectorized simulation kernel can evaluate
*whole batches* of positions and first-crossing tests with array
arithmetic.  Three segment kinds exist, mirroring the three motion
primitives:

* ``KIND_WAIT``   -- anchored at ``(ax, ay)``;
* ``KIND_LINEAR`` -- start ``(ax, ay)``, constant velocity ``(bx, by)``;
* ``KIND_ARC``    -- center ``(ax, ay)``, ``radius``, start angle
  ``theta0`` and angular rate ``omega`` (``sweep / duration``).

All kinds share ``start_times`` (global), ``durations`` and ``speeds``.
Positions computed here match the scalar ``segment.position`` closed forms
to floating-point noise: the compiler stores the same parameters the
scalar primitives use, it does not resample or approximate.

``Trajectory.compile()`` and ``LazyTrajectory.compile(up_to)`` are the
user-facing entry points; :class:`SegmentStreamCompiler` incrementally
compiles an unbounded segment stream into bounded chunks, which is what
the kernel uses for the (infinite) search algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from ..errors import InvalidParameterError, TrajectoryError
from ..geometry import Vec2
from .arc import ArcMotion
from .linear import LinearMotion
from .segment import MotionSegment
from .wait import WaitMotion

__all__ = [
    "KIND_WAIT",
    "KIND_LINEAR",
    "KIND_ARC",
    "FLOAT_FIELDS",
    "CompiledTrajectory",
    "SegmentStreamCompiler",
    "compile_segments",
    "packed_chunk_nbytes",
]

#: Segment-kind codes stored in :attr:`CompiledTrajectory.kinds`.
KIND_WAIT: int = 0
KIND_LINEAR: int = 1
KIND_ARC: int = 2

#: The float64 arrays of a :class:`CompiledTrajectory`, in the canonical
#: serialisation order used by the shared-memory arena
#: (:mod:`repro.simulation.arena`).  ``kinds`` (int8) trails them so every
#: float view stays 8-byte aligned without per-array padding.
FLOAT_FIELDS: tuple[str, ...] = (
    "start_times",
    "durations",
    "speeds",
    "ax",
    "ay",
    "bx",
    "by",
    "radius",
    "theta0",
    "omega",
)


def packed_chunk_nbytes(n_segments: int) -> int:
    """Bytes one ``n_segments`` chunk occupies in the arena data region.

    Ten float64 arrays, one int8 array, padded up to 8-byte alignment so
    the next chunk's float views stay aligned.
    """
    raw = 8 * len(FLOAT_FIELDS) * n_segments + n_segments
    return (raw + 7) & ~7


@dataclass(frozen=True)
class CompiledTrajectory:
    """A finite trajectory prefix as structure-of-arrays numpy data.

    Attributes:
        kinds: ``(n,)`` int8 segment kinds (``KIND_*`` codes).
        start_times: ``(n,)`` global start time of each segment (sorted).
        durations: ``(n,)`` segment durations.
        speeds: ``(n,)`` constant segment speeds.
        ax, ay: anchor point -- wait position, linear start, or arc center.
        bx, by: linear velocity components (zero for waits and arcs).
        radius, theta0, omega: arc parameters (zero for other kinds).
    """

    kinds: np.ndarray
    start_times: np.ndarray
    durations: np.ndarray
    speeds: np.ndarray
    ax: np.ndarray
    ay: np.ndarray
    bx: np.ndarray
    by: np.ndarray
    radius: np.ndarray
    theta0: np.ndarray
    omega: np.ndarray

    # -- inspection ---------------------------------------------------------
    def __len__(self) -> int:
        return int(self.kinds.shape[0])

    @property
    def segment_count(self) -> int:
        """Number of compiled segments."""
        return len(self)

    @property
    def t_begin(self) -> float:
        """Global time at which the compiled prefix starts."""
        return float(self.start_times[0])

    @property
    def t_end(self) -> float:
        """Global time up to which the compiled prefix covers the motion."""
        return float(self.start_times[-1] + self.durations[-1])

    @property
    def end_times(self) -> np.ndarray:
        """Global end time of each segment."""
        return self.start_times + self.durations

    def end_position(self) -> Vec2:
        """Position at :attr:`t_end` (end of the last segment)."""
        x, y = self.positions_at(np.array([self.t_end]))
        return Vec2(float(x[0]), float(y[0]))

    # -- evaluation ---------------------------------------------------------
    def segment_indices(self, times: np.ndarray) -> np.ndarray:
        """Index of the segment active at each global time (clamped)."""
        indices = np.searchsorted(self.start_times, times, side="right") - 1
        return np.clip(indices, 0, len(self) - 1)

    def local_positions(
        self, indices: np.ndarray, local_times: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Positions on the indexed segments at segment-local times.

        Local times are clamped into each segment's ``[0, duration]``
        domain, mirroring the scalar segments' clamping behaviour.
        """
        local = np.clip(local_times, 0.0, self.durations[indices])
        kinds = self.kinds[indices]
        ax = self.ax[indices]
        ay = self.ay[indices]
        # Waits and linears: anchor + velocity * t (velocity is zero for
        # waits, so one fused expression covers both).
        x = ax + self.bx[indices] * local
        y = ay + self.by[indices] * local
        arc = kinds == KIND_ARC
        if np.any(arc):
            angle = self.theta0[indices[arc]] + self.omega[indices[arc]] * local[arc]
            r = self.radius[indices[arc]]
            x[arc] = ax[arc] + r * np.cos(angle)
            y[arc] = ay[arc] + r * np.sin(angle)
        return x, y

    def positions_at(self, times: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """World positions at an array of global times.

        Times outside the covered span are clamped to the span's ends
        (before the first segment / after the last one the motion idles at
        the respective endpoint).
        """
        times = np.asarray(times, dtype=float)
        indices = self.segment_indices(times)
        return self.local_positions(indices, times - self.start_times[indices])

    def position_at(self, time: float) -> Vec2:
        """World position at one global time (scalar convenience)."""
        x, y = self.positions_at(np.array([float(time)]))
        return Vec2(float(x[0]), float(y[0]))

    # -- construction -------------------------------------------------------
    @classmethod
    def from_segments(
        cls, segments: Sequence[MotionSegment], start_time: float = 0.0
    ) -> "CompiledTrajectory":
        """Lower a sequence of segments starting at ``start_time``."""
        if not segments:
            raise TrajectoryError("cannot compile an empty segment sequence")
        n = len(segments)
        kinds = np.zeros(n, dtype=np.int8)
        start_times = np.zeros(n, dtype=float)
        durations = np.zeros(n, dtype=float)
        speeds = np.zeros(n, dtype=float)
        ax = np.zeros(n, dtype=float)
        ay = np.zeros(n, dtype=float)
        bx = np.zeros(n, dtype=float)
        by = np.zeros(n, dtype=float)
        radius = np.zeros(n, dtype=float)
        theta0 = np.zeros(n, dtype=float)
        omega = np.zeros(n, dtype=float)

        # Private-slot access instead of the public properties: this loop
        # runs once per segment of every compiled chunk, and the property
        # indirection was a measurable share of batch solve time.
        elapsed = float(start_time)
        for i, segment in enumerate(segments):
            start_times[i] = elapsed
            if isinstance(segment, LinearMotion):
                duration = segment._duration
                kinds[i] = KIND_LINEAR
                speeds[i] = segment._speed
                start = segment._start
                ax[i], ay[i] = start.x, start.y
                if duration > 0.0:
                    end = segment._end
                    bx[i] = (end.x - start.x) / duration
                    by[i] = (end.y - start.y) / duration
            elif isinstance(segment, ArcMotion):
                duration = segment._duration
                kinds[i] = KIND_ARC
                speeds[i] = segment._speed
                center = segment._center
                ax[i], ay[i] = center.x, center.y
                radius[i] = segment._radius
                theta0[i] = segment._start_angle
                if duration > 0.0:
                    omega[i] = segment._sweep / duration
            elif isinstance(segment, WaitMotion):
                duration = segment._duration
                kinds[i] = KIND_WAIT
                position = segment._position
                ax[i], ay[i] = position.x, position.y
            else:
                raise TrajectoryError(
                    f"cannot compile segment type {type(segment).__name__!r}"
                )
            durations[i] = duration
            elapsed += duration
        return cls(
            kinds=kinds,
            start_times=start_times,
            durations=durations,
            speeds=speeds,
            ax=ax,
            ay=ay,
            bx=bx,
            by=by,
            radius=radius,
            theta0=theta0,
            omega=omega,
        )


def compile_segments(
    segments: Iterable[MotionSegment], start_time: float = 0.0
) -> CompiledTrajectory:
    """Compile an iterable of segments into a :class:`CompiledTrajectory`."""
    return CompiledTrajectory.from_segments(list(segments), start_time=start_time)


class SegmentStreamCompiler:
    """Incrementally compile an unbounded segment stream into chunks.

    The search algorithms emit exponentially many segments per round, so
    compiling "up to the horizon" in one shot is infeasible.  The stream
    compiler pulls bounded chunks on demand -- the kernel processes one
    chunk across the whole instance batch, drops solved instances, and
    only then asks for the next chunk, which keeps memory bounded and
    stops compilation as soon as every instance is resolved.
    """

    __slots__ = ("_source", "_covered", "_exhausted", "_last_end")

    def __init__(self, segments: Iterable[MotionSegment], start_time: float = 0.0) -> None:
        self._source: Iterator[MotionSegment] = iter(segments)
        self._covered = float(start_time)
        self._exhausted = False
        self._last_end: Optional[Vec2] = None

    @property
    def covered(self) -> float:
        """Global time covered by the chunks compiled so far."""
        return self._covered

    @property
    def exhausted(self) -> bool:
        """True when the underlying segment stream has ended."""
        return self._exhausted

    def final_position(self) -> Vec2:
        """End position of a finite, fully consumed stream."""
        if self._last_end is None:
            raise TrajectoryError("the segment stream produced no segments yet")
        return self._last_end

    def next_chunk(
        self, max_segments: int = 2048, until_time: Optional[float] = None
    ) -> Optional[CompiledTrajectory]:
        """Compile the next chunk of at most ``max_segments`` segments.

        When ``until_time`` is given, the chunk also stops as soon as the
        covered time reaches it.  Returns None once the stream is
        exhausted (no further segments).
        """
        if max_segments < 1:
            raise InvalidParameterError(f"max_segments must be >= 1, got {max_segments!r}")
        if self._exhausted:
            return None
        batch: list[MotionSegment] = []
        start_time = self._covered
        while len(batch) < max_segments:
            if until_time is not None and self._covered >= until_time and batch:
                break
            try:
                segment = next(self._source)
            except StopIteration:
                self._exhausted = True
                break
            batch.append(segment)
            self._covered += segment.duration
            self._last_end = segment.end
        if not batch:
            return None
        return CompiledTrajectory.from_segments(batch, start_time=start_time)
