"""Finite trajectories: ordered sequences of motion segments.

A :class:`Trajectory` is a finite, contiguous, piecewise-analytic motion:
segment ``i+1`` starts where segment ``i`` ends.  Evaluation at a global
time dispatches to the right segment with a binary search, so position
queries cost ``O(log n)``.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, Sequence

from ..errors import TimeOutOfRangeError, TrajectoryError
from ..geometry import Vec2
from .segment import MotionSegment
from .wait import WaitMotion

__all__ = ["Trajectory"]

#: Maximum allowed gap between the end of one segment and the start of the
#: next before the trajectory is declared discontinuous.
_CONTINUITY_TOLERANCE = 1e-6


class Trajectory:
    """An immutable finite trajectory built from contiguous segments."""

    __slots__ = ("_segments", "_start_times", "_duration")

    def __init__(self, segments: Iterable[MotionSegment], validate: bool = True) -> None:
        segment_list = list(segments)
        if not segment_list:
            raise TrajectoryError("a trajectory needs at least one segment")
        if validate:
            _check_continuity(segment_list)
        start_times: list[float] = []
        elapsed = 0.0
        for segment in segment_list:
            start_times.append(elapsed)
            elapsed += segment.duration
        self._segments: tuple[MotionSegment, ...] = tuple(segment_list)
        self._start_times: tuple[float, ...] = tuple(start_times)
        self._duration = elapsed

    # -- construction helpers -----------------------------------------------
    @staticmethod
    def stationary(position: Vec2, duration: float) -> "Trajectory":
        """A trajectory that waits at ``position`` for ``duration``."""
        return Trajectory([WaitMotion(position, duration)])

    def followed_by(self, other: "Trajectory") -> "Trajectory":
        """Concatenation; ``other`` must start where this trajectory ends."""
        return Trajectory(list(self._segments) + list(other._segments))

    def extended(self, segments: Iterable[MotionSegment]) -> "Trajectory":
        """Concatenation with extra raw segments."""
        return Trajectory(list(self._segments) + list(segments))

    # -- inspection ---------------------------------------------------------------
    @property
    def segments(self) -> tuple[MotionSegment, ...]:
        """The underlying segments, in time order."""
        return self._segments

    @property
    def duration(self) -> float:
        """Total duration of the trajectory."""
        return self._duration

    @property
    def start(self) -> Vec2:
        """Initial position."""
        return self._segments[0].start

    @property
    def end(self) -> Vec2:
        """Final position."""
        return self._segments[-1].end

    def path_length(self) -> float:
        """Total distance travelled."""
        return sum(segment.path_length() for segment in self._segments)

    def max_speed(self) -> float:
        """Largest segment speed (Lipschitz constant of the motion)."""
        return max(segment.speed for segment in self._segments)

    def segment_count(self) -> int:
        """Number of segments."""
        return len(self._segments)

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self) -> Iterator[MotionSegment]:
        return iter(self._segments)

    # -- evaluation ------------------------------------------------------------------
    def segment_index_at(self, t: float) -> int:
        """Index of the segment active at global time ``t``."""
        if t < -1e-9 or t > self._duration + 1e-9:
            raise TimeOutOfRangeError(
                f"time {t!r} outside trajectory domain [0, {self._duration!r}]"
            )
        t = min(max(t, 0.0), self._duration)
        index = bisect.bisect_right(self._start_times, t) - 1
        return min(max(index, 0), len(self._segments) - 1)

    def position(self, t: float) -> Vec2:
        """Position at global time ``t`` (``0 <= t <= duration``)."""
        index = self.segment_index_at(t)
        local_time = min(max(t, 0.0), self._duration) - self._start_times[index]
        segment = self._segments[index]
        return segment.position(min(local_time, segment.duration))

    def compile(self) -> "CompiledTrajectory":
        """Lower the whole trajectory into a structure-of-arrays view.

        The compiled form backs the vectorized simulation kernel; see
        :mod:`repro.motion.compiled`.
        """
        from .compiled import CompiledTrajectory

        return CompiledTrajectory.from_segments(self._segments)

    def timed_segments(self) -> Iterator[tuple[float, float, MotionSegment]]:
        """Iterate ``(start_time, end_time, segment)`` triples."""
        for start_time, segment in zip(self._start_times, self._segments):
            yield start_time, start_time + segment.duration, segment

    def window(self, t0: float, t1: float) -> list[tuple[float, float, MotionSegment]]:
        """Timed segments overlapping the interval ``[t0, t1]``."""
        if t1 < t0:
            raise TrajectoryError(f"empty window [{t0!r}, {t1!r}]")
        result = []
        for start_time, end_time, segment in self.timed_segments():
            if end_time < t0 or start_time > t1:
                continue
            result.append((start_time, end_time, segment))
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Trajectory(segments={len(self._segments)}, duration={self._duration:.6g}, "
            f"length={self.path_length():.6g})"
        )


def _check_continuity(segments: Sequence[MotionSegment]) -> None:
    for index, (previous, current) in enumerate(zip(segments, segments[1:])):
        gap = previous.end.distance_to(current.start)
        if gap > _CONTINUITY_TOLERANCE:
            raise TrajectoryError(
                f"discontinuity of {gap:.3e} between segments {index} and {index + 1}"
            )
