"""Motion substrate: segments, trajectories, builders and frame transforms."""

from .arc import ArcMotion
from .builder import TrajectoryBuilder
from .compiled import (
    KIND_ARC,
    KIND_LINEAR,
    KIND_WAIT,
    CompiledTrajectory,
    SegmentStreamCompiler,
    compile_segments,
)
from .lazy import LazyTrajectory
from .linear import LinearMotion
from .relative import EquivalentSearchTrajectory, RelativeMotion
from .sampling import (
    numeric_max_speed,
    numeric_path_length,
    positions_array,
    sample_positions,
    sample_times,
)
from .segment import MotionSegment
from .trajectory import Trajectory
from .transform import (
    is_identity_frame,
    lazy_world_trajectory,
    transform_segment,
    transform_segments,
    transform_trajectory,
)
from .wait import WaitMotion

__all__ = [
    "ArcMotion",
    "TrajectoryBuilder",
    "KIND_ARC",
    "KIND_LINEAR",
    "KIND_WAIT",
    "CompiledTrajectory",
    "SegmentStreamCompiler",
    "compile_segments",
    "LazyTrajectory",
    "LinearMotion",
    "EquivalentSearchTrajectory",
    "RelativeMotion",
    "numeric_max_speed",
    "numeric_path_length",
    "positions_array",
    "sample_positions",
    "sample_times",
    "MotionSegment",
    "Trajectory",
    "is_identity_frame",
    "lazy_world_trajectory",
    "transform_segment",
    "transform_segments",
    "transform_trajectory",
    "WaitMotion",
]
