"""Motion substrate: segments, trajectories, builders and frame transforms."""

from .arc import ArcMotion
from .builder import TrajectoryBuilder
from .lazy import LazyTrajectory
from .linear import LinearMotion
from .relative import EquivalentSearchTrajectory, RelativeMotion
from .sampling import (
    numeric_max_speed,
    numeric_path_length,
    positions_array,
    sample_positions,
    sample_times,
)
from .segment import MotionSegment
from .trajectory import Trajectory
from .transform import (
    lazy_world_trajectory,
    transform_segment,
    transform_segments,
    transform_trajectory,
)
from .wait import WaitMotion

__all__ = [
    "ArcMotion",
    "TrajectoryBuilder",
    "LazyTrajectory",
    "LinearMotion",
    "EquivalentSearchTrajectory",
    "RelativeMotion",
    "numeric_max_speed",
    "numeric_path_length",
    "positions_array",
    "sample_positions",
    "sample_times",
    "MotionSegment",
    "Trajectory",
    "lazy_world_trajectory",
    "transform_segment",
    "transform_segments",
    "transform_trajectory",
    "WaitMotion",
]
