"""Stationary (waiting) motion."""

from __future__ import annotations

from ..errors import InvalidParameterError
from ..geometry import Vec2
from .segment import MotionSegment

__all__ = ["WaitMotion"]


class WaitMotion(MotionSegment):
    """The robot stays at ``position`` for ``duration`` time units.

    Waits are first-class segments because Algorithm 3 ends every round
    with a calibrated wait and Algorithm 7 alternates long inactive phases
    with active search phases; both are essential to the asymmetric-clock
    symmetry breaking.
    """

    __slots__ = ("_position", "_duration")

    def __init__(self, position: Vec2, duration: float) -> None:
        if duration < 0.0:
            raise InvalidParameterError(f"duration must be non-negative, got {duration!r}")
        self._position = position
        self._duration = float(duration)

    @property
    def duration(self) -> float:
        return self._duration

    @property
    def start(self) -> Vec2:
        return self._position

    @property
    def end(self) -> Vec2:
        return self._position

    @property
    def speed(self) -> float:
        return 0.0

    def position(self, t: float) -> Vec2:
        self._check_time(t)
        return self._position

    def path_length(self) -> float:
        return 0.0

    def bounding_center_radius(self) -> tuple[Vec2, float]:
        return self._position, 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WaitMotion(position={self._position!r}, duration={self._duration:.6g})"
