"""Straight-line motion at constant speed."""

from __future__ import annotations

from ..errors import InvalidParameterError
from ..geometry import Vec2
from .segment import MotionSegment

__all__ = ["LinearMotion"]


class LinearMotion(MotionSegment):
    """Uniform motion from ``start`` to ``end`` over ``duration`` time units.

    A zero-length move with positive duration behaves like a wait; a
    zero-duration move is rejected unless it is also zero length.
    """

    __slots__ = ("_start", "_end", "_duration", "_speed")

    def __init__(self, start: Vec2, end: Vec2, duration: float) -> None:
        if duration < 0.0:
            raise InvalidParameterError(f"duration must be non-negative, got {duration!r}")
        length = start.distance_to(end)
        if duration == 0.0 and length > 0.0:
            raise InvalidParameterError(
                "a linear motion covering a positive distance needs a positive duration"
            )
        self._start = start
        self._end = end
        self._duration = float(duration)
        self._speed = 0.0 if duration == 0.0 else length / duration

    @staticmethod
    def with_speed(start: Vec2, end: Vec2, speed: float) -> "LinearMotion":
        """Build the motion from its speed instead of its duration."""
        if speed <= 0.0:
            raise InvalidParameterError(f"speed must be positive, got {speed!r}")
        return LinearMotion(start, end, start.distance_to(end) / speed)

    # -- MotionSegment interface ----------------------------------------------
    @property
    def duration(self) -> float:
        return self._duration

    @property
    def start(self) -> Vec2:
        return self._start

    @property
    def end(self) -> Vec2:
        return self._end

    @property
    def speed(self) -> float:
        return self._speed

    def position(self, t: float) -> Vec2:
        t = self._check_time(t)
        if self._duration == 0.0:
            return self._start
        return self._start.lerp(self._end, t / self._duration)

    def path_length(self) -> float:
        return self._start.distance_to(self._end)

    def bounding_center_radius(self) -> tuple[Vec2, float]:
        center = self._start.lerp(self._end, 0.5)
        return center, self.path_length() / 2.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LinearMotion(start={self._start!r}, end={self._end!r}, "
            f"duration={self._duration:.6g})"
        )
