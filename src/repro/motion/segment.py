"""The motion-segment interface.

A *motion segment* describes where a robot is during a contiguous slice of
time: it has a duration, a start and an end position, and an exact
``position(t)`` for every ``0 <= t <= duration``.  All of the paper's
algorithms compile down to sequences of just three primitives -- straight
moves, circular arcs and waits -- which keeps the simulator exact: there is
no numerical integration anywhere, positions are closed-form functions of
time.

Durations and positions are expressed in the *world* frame once a segment
has been attached to a robot; the algorithm builders first create segments
in the robot's local frame and :mod:`repro.motion.transform` converts them.
"""

from __future__ import annotations

import abc
from typing import Iterable

from ..errors import TimeOutOfRangeError
from ..geometry import Vec2

__all__ = ["MotionSegment"]


class MotionSegment(abc.ABC):
    """Abstract base class of the three motion primitives."""

    __slots__ = ()

    #: Absolute tolerance used when clamping evaluation times to the
    #: segment's domain (guards against floating-point drift when a
    #: trajectory dispatches a global time into a segment-local time).
    _TIME_SLACK = 1e-9

    # -- geometry ---------------------------------------------------------
    @property
    @abc.abstractmethod
    def duration(self) -> float:
        """Length of the segment in time units (non-negative)."""

    @property
    @abc.abstractmethod
    def start(self) -> Vec2:
        """Position at local time 0."""

    @property
    @abc.abstractmethod
    def end(self) -> Vec2:
        """Position at local time ``duration``."""

    @abc.abstractmethod
    def position(self, t: float) -> Vec2:
        """Position at local time ``t`` with ``0 <= t <= duration``."""

    @property
    @abc.abstractmethod
    def speed(self) -> float:
        """Constant speed along the segment (0 for waits)."""

    @abc.abstractmethod
    def path_length(self) -> float:
        """Distance travelled along the segment."""

    @abc.abstractmethod
    def bounding_center_radius(self) -> tuple[Vec2, float]:
        """A disc (center, radius) containing every point of the segment.

        The simulator uses this for cheap rejection tests, so the bound
        should be tight-ish but above all *correct*.
        """

    # -- shared helpers ------------------------------------------------------
    def _check_time(self, t: float) -> float:
        """Clamp ``t`` into the valid domain, raising when clearly outside."""
        if t < -self._TIME_SLACK or t > self.duration + self._TIME_SLACK:
            raise TimeOutOfRangeError(
                f"time {t!r} outside segment domain [0, {self.duration!r}]"
            )
        return min(max(t, 0.0), self.duration)

    def sample_times(self, count: int) -> Iterable[float]:
        """``count`` evenly spaced local times covering the segment."""
        if count < 2:
            yield 0.0
            return
        for index in range(count):
            yield self.duration * index / (count - 1)

    def max_distance_from(self, point: Vec2) -> float:
        """Upper bound on the distance from ``point`` to the segment."""
        center, radius = self.bounding_center_radius()
        return point.distance_to(center) + radius

    def min_distance_lower_bound(self, point: Vec2) -> float:
        """Lower bound on the distance from ``point`` to the segment."""
        center, radius = self.bounding_center_radius()
        return max(0.0, point.distance_to(center) - radius)
