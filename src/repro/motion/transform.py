"""Mapping local-frame motion segments to world-frame motion.

The attribute map of Lemma 4 is a *similarity* of the plane (rotation,
optional reflection, uniform scaling) combined with a uniform time dilation
(the asymmetric clock).  Similarities map straight lines to straight lines
and circles to circles, so a local-frame :class:`LinearMotion`,
:class:`ArcMotion` or :class:`WaitMotion` maps to a world-frame segment of
the *same kind* -- the world trajectory stays exactly representable, which
keeps the whole simulation closed-form.

This module implements that mapping, one segment at a time, so it also
works for the lazy/unbounded trajectories of Algorithms 4 and 7.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import TrajectoryError
from ..geometry import ReferenceFrame, Vec2
from .arc import ArcMotion
from .lazy import LazyTrajectory
from .linear import LinearMotion
from .segment import MotionSegment
from .trajectory import Trajectory
from .wait import WaitMotion

__all__ = [
    "is_identity_frame",
    "transform_segment",
    "transform_segments",
    "transform_trajectory",
    "lazy_world_trajectory",
]


def transform_segment(segment: MotionSegment, frame: ReferenceFrame) -> MotionSegment:
    """Map one local-frame segment into the world frame of ``frame``.

    Durations are multiplied by the frame's time unit; positions go through
    the frame's similarity map.  The segment kind is preserved.
    """
    duration = segment.duration * frame.time_unit
    if isinstance(segment, WaitMotion):
        return WaitMotion(frame.to_world_point(segment.start), duration)
    if isinstance(segment, LinearMotion):
        return LinearMotion(
            frame.to_world_point(segment.start),
            frame.to_world_point(segment.end),
            duration,
        )
    if isinstance(segment, ArcMotion):
        return _transform_arc(segment, frame, duration)
    raise TrajectoryError(f"unknown segment type {type(segment).__name__!r}")


def _transform_arc(segment: ArcMotion, frame: ReferenceFrame, duration: float) -> ArcMotion:
    center = frame.to_world_point(segment.center)
    radius = segment.radius * frame.distance_unit
    # The start angle rotates with the frame; a mirrored frame (chirality
    # -1) flips both the start angle and the sweep direction.
    if frame.chirality == 1:
        start_angle = segment.start_angle + frame.orientation
        sweep = segment.sweep
    else:
        start_angle = -segment.start_angle + frame.orientation
        sweep = -segment.sweep
    world_arc = ArcMotion(center, radius, start_angle, sweep, duration)
    # Defensive check: the similarity must map endpoints consistently.
    expected_start = frame.to_world_point(segment.start)
    if world_arc.start.distance_to(expected_start) > 1e-6 * max(1.0, radius):
        raise TrajectoryError("arc transform produced an inconsistent start point")
    return world_arc


def is_identity_frame(frame: ReferenceFrame) -> bool:
    """True when the frame transform is *bitwise* the identity.

    Only exact equality counts: multiplying through a matrix that is
    merely close to the identity would perturb every coordinate by an
    ulp, whereas skipping the map entirely is exact.  The reference robot
    R of every canonical instance has exactly this frame, which is what
    lets the vectorized kernel share one compiled trajectory across a
    whole batch.
    """
    return (
        frame.origin.x == 0.0
        and frame.origin.y == 0.0
        and frame.speed == 1.0
        and frame.time_unit == 1.0
        and frame.orientation == 0.0
        and frame.chirality == 1
    )


def transform_segments(
    segments: Iterable[MotionSegment], frame: ReferenceFrame
) -> Iterator[MotionSegment]:
    """Lazily map a stream of local segments into the world frame.

    The reference robot's frame (the common case for every search batch)
    is the exact identity, so its segments pass through untouched.
    """
    if is_identity_frame(frame):
        yield from segments
        return
    for segment in segments:
        yield transform_segment(segment, frame)


def transform_trajectory(trajectory: Trajectory, frame: ReferenceFrame) -> Trajectory:
    """Map a finite local trajectory into the world frame."""
    return Trajectory([transform_segment(segment, frame) for segment in trajectory])


def lazy_world_trajectory(
    segments: Iterable[MotionSegment], frame: ReferenceFrame
) -> LazyTrajectory:
    """Wrap a (possibly infinite) local segment stream as a world trajectory."""
    return LazyTrajectory(transform_segments(segments, frame))
