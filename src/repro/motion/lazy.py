"""Unbounded trajectories backed by a segment generator.

Algorithms 4 and 7 of the paper never terminate on their own -- they keep
searching larger and larger regions until the target/partner is seen.  A
:class:`LazyTrajectory` therefore wraps a (possibly infinite) iterator of
motion segments and materialises them only as far as the simulation needs:
``ensure_time(t)`` pulls segments from the generator until the cached
prefix covers global time ``t``.

The cached prefix behaves like a growing :class:`~repro.motion.trajectory.
Trajectory`: positions are evaluated exactly, and the simulator can stream
``timed segments up to t`` without ever enumerating the infinite tail.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator

from ..errors import TimeOutOfRangeError, TrajectoryError
from ..geometry import Vec2
from .segment import MotionSegment

__all__ = ["LazyTrajectory"]

_CONTINUITY_TOLERANCE = 1e-6


class LazyTrajectory:
    """A trajectory whose segments are produced on demand by a generator."""

    __slots__ = ("_source", "_segments", "_start_times", "_covered", "_exhausted")

    def __init__(self, segments: Iterable[MotionSegment]) -> None:
        self._source: Iterator[MotionSegment] = iter(segments)
        self._segments: list[MotionSegment] = []
        self._start_times: list[float] = []
        self._covered = 0.0
        self._exhausted = False

    # -- materialisation ---------------------------------------------------------
    def ensure_time(self, t: float) -> bool:
        """Materialise segments until the prefix covers global time ``t``.

        Returns:
            True when the prefix now covers ``t``; False when the source ran
            out of segments first (finite underlying algorithm).
        """
        while self._covered < t and not self._exhausted:
            self._pull_one()
        return self._covered >= t

    def ensure_segments(self, count: int) -> bool:
        """Materialise at least ``count`` segments (if available)."""
        while len(self._segments) < count and not self._exhausted:
            self._pull_one()
        return len(self._segments) >= count

    def _pull_one(self) -> None:
        try:
            segment = next(self._source)
        except StopIteration:
            self._exhausted = True
            return
        if self._segments:
            gap = self._segments[-1].end.distance_to(segment.start)
            if gap > _CONTINUITY_TOLERANCE:
                raise TrajectoryError(
                    f"discontinuity of {gap:.3e} between lazily produced segments "
                    f"{len(self._segments) - 1} and {len(self._segments)}"
                )
        self._start_times.append(self._covered)
        self._segments.append(segment)
        self._covered += segment.duration

    # -- inspection ----------------------------------------------------------------
    @property
    def covered_duration(self) -> float:
        """Duration covered by the materialised prefix."""
        return self._covered

    @property
    def exhausted(self) -> bool:
        """True when the underlying generator has been fully consumed."""
        return self._exhausted

    @property
    def materialised_segments(self) -> int:
        """Number of segments materialised so far."""
        return len(self._segments)

    @property
    def start(self) -> Vec2:
        """Initial position (materialises the first segment if needed)."""
        if not self.ensure_segments(1):
            raise TrajectoryError("the underlying segment source is empty")
        return self._segments[0].start

    def max_speed_up_to(self, t: float) -> float:
        """Largest speed among segments overlapping ``[0, t]``."""
        self.ensure_time(t)
        speeds = [
            segment.speed
            for start_time, segment in zip(self._start_times, self._segments)
            if start_time < t
        ]
        return max(speeds, default=0.0)

    def compile(self, up_to: float) -> "CompiledTrajectory":
        """Lower the prefix covering ``[0, up_to]`` into arrays.

        Materialises segments as needed (like :meth:`ensure_time`); for a
        finite source that ends before ``up_to`` the whole trajectory is
        compiled.  See :mod:`repro.motion.compiled`.
        """
        from .compiled import CompiledTrajectory

        if up_to < 0.0:
            raise TimeOutOfRangeError(f"time {up_to!r} is negative")
        self.ensure_time(up_to)
        if not self._segments and not self.ensure_segments(1):
            raise TrajectoryError("the underlying segment source is empty")
        count = bisect.bisect_left(self._start_times, up_to)
        count = max(count, 1)
        return CompiledTrajectory.from_segments(self._segments[:count])

    # -- evaluation -----------------------------------------------------------------
    def position(self, t: float) -> Vec2:
        """Position at global time ``t``.

        For finite sources queried past their end, the final position is
        returned (the robot has stopped).
        """
        if t < -1e-9:
            raise TimeOutOfRangeError(f"time {t!r} is negative")
        t = max(t, 0.0)
        covered = self.ensure_time(t)
        if not self._segments:
            # t may be 0 before anything was materialised; pull one segment.
            if not self.ensure_segments(1):
                raise TrajectoryError("the underlying segment source is empty")
        if not covered and t > self._covered:
            return self._segments[-1].end
        index = bisect.bisect_right(self._start_times, t) - 1
        index = min(max(index, 0), len(self._segments) - 1)
        segment = self._segments[index]
        local_time = min(t - self._start_times[index], segment.duration)
        return segment.position(max(local_time, 0.0))

    def timed_segment(self, index: int) -> tuple[float, float, MotionSegment] | None:
        """The ``index``-th ``(start, end, segment)`` triple, materialising as needed.

        Returns None when the source is exhausted before reaching ``index``.
        """
        if index < 0:
            raise TimeOutOfRangeError(f"segment index {index!r} is negative")
        if not self.ensure_segments(index + 1):
            return None
        start_time = self._start_times[index]
        segment = self._segments[index]
        return start_time, start_time + segment.duration, segment

    def final_position(self) -> Vec2:
        """Final position of a finite, fully materialised source.

        Only meaningful once :attr:`exhausted` is True (used by the engine
        to park a finished robot at its last position).
        """
        if not self._segments:
            raise TrajectoryError("the underlying segment source is empty")
        return self._segments[-1].end

    def segment_at(self, t: float) -> tuple[float, float, MotionSegment] | None:
        """The ``(start, end, segment)`` triple active at global time ``t``.

        Returns None when ``t`` lies beyond the end of a finite source (the
        robot has stopped; callers typically substitute a virtual wait at
        the final position).
        """
        if t < -1e-9:
            raise TimeOutOfRangeError(f"time {t!r} is negative")
        t = max(t, 0.0)
        if not self.ensure_time(t) and t >= self._covered:
            if self._segments and t < self._covered:
                pass
            else:
                return None
        index = bisect.bisect_right(self._start_times, t) - 1
        index = min(max(index, 0), len(self._segments) - 1)
        start_time = self._start_times[index]
        segment = self._segments[index]
        return start_time, start_time + segment.duration, segment

    def timed_segments_until(self, t: float) -> Iterator[tuple[float, float, MotionSegment]]:
        """Stream ``(start, end, segment)`` triples overlapping ``[0, t]``."""
        self.ensure_time(t)
        for start_time, segment in zip(self._start_times, self._segments):
            if start_time > t:
                return
            yield start_time, start_time + segment.duration, segment

    def window(self, t0: float, t1: float) -> list[tuple[float, float, MotionSegment]]:
        """Timed segments overlapping ``[t0, t1]``."""
        if t1 < t0:
            raise TrajectoryError(f"empty window [{t0!r}, {t1!r}]")
        self.ensure_time(t1)
        result = []
        for start_time, segment in zip(self._start_times, self._segments):
            end_time = start_time + segment.duration
            if end_time < t0 or start_time > t1:
                continue
            result.append((start_time, end_time, segment))
        if not result and self._segments:
            # The window lies beyond a finite trajectory: the robot idles at
            # its final position.
            last_end = self._start_times[-1] + self._segments[-1].duration
            if t0 >= last_end:
                return []
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "exhausted" if self._exhausted else "open"
        return (
            f"LazyTrajectory(materialised={len(self._segments)}, "
            f"covered={self._covered:.6g}, {status})"
        )
