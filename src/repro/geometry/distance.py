"""Exact distance computations between points and static curves.

These helpers back two parts of the library:

* the simulator's cheap lower bounds (distance from a static robot to the
  segment or arc the other robot is tracing), and
* the coverage tests of the search algorithms.
"""

from __future__ import annotations

import math

from .angles import normalize_angle
from .vec import Vec2

__all__ = [
    "point_segment_distance",
    "point_segment_closest_point",
    "point_arc_distance",
    "segment_segment_distance",
]


def point_segment_closest_point(point: Vec2, start: Vec2, end: Vec2) -> Vec2:
    """Closest point of the segment ``[start, end]`` to ``point``."""
    direction = end - start
    length_squared = direction.norm_squared()
    if length_squared == 0.0:
        return start
    fraction = (point - start).dot(direction) / length_squared
    fraction = min(1.0, max(0.0, fraction))
    return start + direction * fraction


def point_segment_distance(point: Vec2, start: Vec2, end: Vec2) -> float:
    """Distance from ``point`` to the segment ``[start, end]``."""
    return point.distance_to(point_segment_closest_point(point, start, end))


def point_arc_distance(
    point: Vec2,
    center: Vec2,
    radius: float,
    start_angle: float,
    sweep: float,
) -> float:
    """Distance from ``point`` to a circular arc.

    The arc starts at polar angle ``start_angle`` (relative to ``center``)
    and sweeps ``sweep`` radians (positive counter-clockwise, negative
    clockwise).  ``abs(sweep)`` larger than ``2*pi`` is treated as the full
    circle.
    """
    offset = point - center
    distance_to_center = offset.norm()
    if abs(sweep) >= 2.0 * math.pi - 1e-15:
        return abs(distance_to_center - radius)
    if distance_to_center == 0.0:
        # The center is equidistant from every arc point.
        return radius
    point_angle = offset.angle()
    # Express the point's angle relative to the arc start, in the sweep
    # direction, reduced to [0, 2*pi).
    if sweep >= 0.0:
        relative = normalize_angle(point_angle - start_angle)
        within = relative <= sweep
    else:
        relative = normalize_angle(start_angle - point_angle)
        within = relative <= -sweep
    if within:
        return abs(distance_to_center - radius)
    # Otherwise the closest arc point is one of the two endpoints.
    start_point = center + Vec2.polar(radius, start_angle)
    end_point = center + Vec2.polar(radius, start_angle + sweep)
    return min(point.distance_to(start_point), point.distance_to(end_point))


def segment_segment_distance(a0: Vec2, a1: Vec2, b0: Vec2, b1: Vec2) -> float:
    """Distance between two segments ``[a0, a1]`` and ``[b0, b1]``.

    Exact for segments; used only by visual/diagnostic code (the simulator
    compares *moving* points, which is a different computation).
    """
    if _segments_intersect(a0, a1, b0, b1):
        return 0.0
    return min(
        point_segment_distance(a0, b0, b1),
        point_segment_distance(a1, b0, b1),
        point_segment_distance(b0, a0, a1),
        point_segment_distance(b1, a0, a1),
    )


def _orientation(p: Vec2, q: Vec2, r: Vec2) -> int:
    cross = (q - p).cross(r - p)
    if cross > 0.0:
        return 1
    if cross < 0.0:
        return -1
    return 0


def _on_segment(p: Vec2, q: Vec2, r: Vec2) -> bool:
    return (
        min(p.x, r.x) - 1e-15 <= q.x <= max(p.x, r.x) + 1e-15
        and min(p.y, r.y) - 1e-15 <= q.y <= max(p.y, r.y) + 1e-15
    )


def _segments_intersect(a0: Vec2, a1: Vec2, b0: Vec2, b1: Vec2) -> bool:
    o1 = _orientation(a0, a1, b0)
    o2 = _orientation(a0, a1, b1)
    o3 = _orientation(b0, b1, a0)
    o4 = _orientation(b0, b1, a1)
    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and _on_segment(a0, b0, a1):
        return True
    if o2 == 0 and _on_segment(a0, b1, a1):
        return True
    if o3 == 0 and _on_segment(b0, a0, b1):
        return True
    if o4 == 0 and _on_segment(b0, a1, b1):
        return True
    return False
