"""Planar geometry substrate: vectors, angles, linear maps, frames, shapes."""

from .angles import (
    TWO_PI,
    angle_difference,
    is_zero_angle,
    normalize_angle,
    normalize_signed_angle,
)
from .distance import (
    point_arc_distance,
    point_segment_closest_point,
    point_segment_distance,
    segment_segment_distance,
)
from .frame import GLOBAL_FRAME, ReferenceFrame
from .primitives import Annulus, Circle, Disc
from .transforms import (
    LinearMap2,
    attribute_matrix,
    identity,
    mu_factor,
    qr_factor_relative,
    reflection_x,
    relative_matrix,
    rotation,
    scaling,
)
from .vec import ORIGIN, UNIT_X, UNIT_Y, Vec2, centroid

__all__ = [
    "TWO_PI",
    "angle_difference",
    "is_zero_angle",
    "normalize_angle",
    "normalize_signed_angle",
    "point_arc_distance",
    "point_segment_closest_point",
    "point_segment_distance",
    "segment_segment_distance",
    "GLOBAL_FRAME",
    "ReferenceFrame",
    "Annulus",
    "Circle",
    "Disc",
    "LinearMap2",
    "attribute_matrix",
    "identity",
    "mu_factor",
    "qr_factor_relative",
    "reflection_x",
    "relative_matrix",
    "rotation",
    "scaling",
    "ORIGIN",
    "UNIT_X",
    "UNIT_Y",
    "Vec2",
    "centroid",
]
