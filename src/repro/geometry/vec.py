"""Immutable 2-D vectors.

The whole library manipulates points and displacement vectors of the
Euclidean plane.  ``Vec2`` is a tiny immutable value type with the usual
vector-space operations, chosen over raw numpy arrays because:

* instances are hashable and safe to share between trajectory segments,
* operations read like the paper's formulas (``p + t * v``),
* there is no accidental broadcasting.

Conversion to/from numpy is provided for the vectorised analysis code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Vec2", "ORIGIN", "UNIT_X", "UNIT_Y"]


@dataclass(frozen=True, slots=True)
class Vec2:
    """A point or displacement vector of the Euclidean plane."""

    x: float
    y: float

    # -- construction -------------------------------------------------
    @staticmethod
    def polar(radius: float, angle: float) -> "Vec2":
        """Vector of the given ``radius`` at ``angle`` radians from +x."""
        return Vec2(radius * math.cos(angle), radius * math.sin(angle))

    @staticmethod
    def from_iterable(values: Iterable[float]) -> "Vec2":
        """Build a vector from any length-2 iterable."""
        seq = list(values)
        if len(seq) != 2:
            raise ValueError(f"expected 2 components, got {len(seq)}")
        return Vec2(float(seq[0]), float(seq[1]))

    # -- vector space operations --------------------------------------
    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def __mul__(self, scalar: float) -> "Vec2":
        return Vec2(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec2":
        return Vec2(self.x / scalar, self.y / scalar)

    # -- metric --------------------------------------------------------
    def dot(self, other: "Vec2") -> float:
        """Euclidean inner product."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Vec2") -> float:
        """Z component of the 3-D cross product (signed area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length."""
        return math.hypot(self.x, self.y)

    def norm_squared(self) -> float:
        """Squared Euclidean length (avoids the square root)."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Vec2") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def normalized(self) -> "Vec2":
        """Unit vector in the same direction.

        Raises:
            ZeroDivisionError: if the vector is the zero vector.
        """
        length = self.norm()
        if length == 0.0:
            raise ZeroDivisionError("cannot normalise the zero vector")
        return Vec2(self.x / length, self.y / length)

    def angle(self) -> float:
        """Polar angle in ``(-pi, pi]`` measured from the +x axis."""
        return math.atan2(self.y, self.x)

    # -- transformations ------------------------------------------------
    def rotated(self, angle: float) -> "Vec2":
        """Counter-clockwise rotation by ``angle`` radians about the origin."""
        c, s = math.cos(angle), math.sin(angle)
        return Vec2(c * self.x - s * self.y, s * self.x + c * self.y)

    def reflected_x(self) -> "Vec2":
        """Reflection about the x axis (flips chirality)."""
        return Vec2(self.x, -self.y)

    def perpendicular(self) -> "Vec2":
        """Counter-clockwise perpendicular vector (rotation by +90 degrees)."""
        return Vec2(-self.y, self.x)

    def lerp(self, other: "Vec2", fraction: float) -> "Vec2":
        """Linear interpolation: ``self`` at 0, ``other`` at 1."""
        return Vec2(
            self.x + (other.x - self.x) * fraction,
            self.y + (other.y - self.y) * fraction,
        )

    # -- comparisons ----------------------------------------------------
    def is_close(self, other: "Vec2", tolerance: float = 1e-9) -> bool:
        """True when both components agree within ``tolerance``."""
        return abs(self.x - other.x) <= tolerance and abs(self.y - other.y) <= tolerance

    def is_finite(self) -> bool:
        """True when both components are finite numbers."""
        return math.isfinite(self.x) and math.isfinite(self.y)

    # -- interoperability ------------------------------------------------
    def to_array(self) -> np.ndarray:
        """Copy as a ``numpy.ndarray`` of shape ``(2,)``."""
        return np.array([self.x, self.y], dtype=float)

    def to_tuple(self) -> tuple[float, float]:
        """Copy as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __len__(self) -> int:
        return 2

    def __getitem__(self, index: int) -> float:
        return (self.x, self.y)[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Vec2({self.x:.6g}, {self.y:.6g})"


#: The origin of the plane.
ORIGIN = Vec2(0.0, 0.0)

#: Unit vector along +x.
UNIT_X = Vec2(1.0, 0.0)

#: Unit vector along +y.
UNIT_Y = Vec2(0.0, 1.0)


def centroid(points: Sequence[Vec2]) -> Vec2:
    """Arithmetic mean of a non-empty sequence of points."""
    if not points:
        raise ValueError("centroid of an empty sequence is undefined")
    sx = sum(p.x for p in points)
    sy = sum(p.y for p in points)
    return Vec2(sx / len(points), sy / len(points))
