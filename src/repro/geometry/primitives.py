"""Static geometric shapes used by the coverage arguments.

The correctness proofs of Algorithms 2 and 3 are coverage statements: every
point of an annulus is approached within a granularity ``rho`` by the circles
the robot traces.  These small shape classes let the tests state and check
those coverage facts directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import InvalidParameterError
from .vec import Vec2

__all__ = ["Circle", "Disc", "Annulus"]


@dataclass(frozen=True, slots=True)
class Circle:
    """A circle (the curve, not the disc) of given center and radius."""

    center: Vec2
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0.0:
            raise InvalidParameterError(f"radius must be non-negative, got {self.radius!r}")

    def distance_to(self, point: Vec2) -> float:
        """Distance from ``point`` to the nearest point of the circle."""
        return abs(point.distance_to(self.center) - self.radius)

    def point_at(self, angle: float) -> Vec2:
        """Point of the circle at polar ``angle`` (from the center)."""
        return self.center + Vec2.polar(self.radius, angle)

    def circumference(self) -> float:
        """Perimeter length."""
        return 2.0 * math.pi * self.radius


@dataclass(frozen=True, slots=True)
class Disc:
    """A closed disc of given center and radius."""

    center: Vec2
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0.0:
            raise InvalidParameterError(f"radius must be non-negative, got {self.radius!r}")

    def contains(self, point: Vec2, tolerance: float = 0.0) -> bool:
        """True when ``point`` lies in the disc (inflated by ``tolerance``)."""
        return point.distance_to(self.center) <= self.radius + tolerance

    def area(self) -> float:
        """Disc area."""
        return math.pi * self.radius * self.radius


@dataclass(frozen=True, slots=True)
class Annulus:
    """A closed annulus with inner radius ``inner`` and outer radius ``outer``."""

    center: Vec2
    inner: float
    outer: float

    def __post_init__(self) -> None:
        if self.inner < 0.0:
            raise InvalidParameterError(f"inner radius must be non-negative, got {self.inner!r}")
        if self.outer < self.inner:
            raise InvalidParameterError(
                f"outer radius {self.outer!r} must not be smaller than inner radius {self.inner!r}"
            )

    def contains(self, point: Vec2, tolerance: float = 0.0) -> bool:
        """True when ``point`` lies in the annulus (inflated by ``tolerance``)."""
        distance = point.distance_to(self.center)
        return self.inner - tolerance <= distance <= self.outer + tolerance

    def width(self) -> float:
        """Radial width of the annulus."""
        return self.outer - self.inner

    def area(self) -> float:
        """Annulus area."""
        return math.pi * (self.outer * self.outer - self.inner * self.inner)

    def covered_by_circles(self, radii: list[float], granularity: float) -> bool:
        """Coverage check used by the Algorithm 2 correctness proof.

        Returns True when every radial distance in ``[inner, outer]`` is
        within ``granularity`` of one of the given circle ``radii`` (all
        circles are concentric with the annulus, which is how the search
        algorithms lay them out).
        """
        if granularity <= 0.0:
            raise InvalidParameterError(f"granularity must be positive, got {granularity!r}")
        if not radii:
            return self.width() <= 0.0
        ordered = sorted(radii)
        # The annulus is one-dimensional in the radial coordinate, so it is
        # covered iff consecutive circles are at most 2*granularity apart
        # and the extreme circles reach the annulus boundaries.
        if ordered[0] - self.inner > granularity:
            return False
        if self.outer - ordered[-1] > granularity:
            return False
        for smaller, larger in zip(ordered, ordered[1:]):
            if larger - smaller > 2.0 * granularity:
                return False
        return True
