"""Angle arithmetic helpers.

Orientations in the paper live in ``[0, 2*pi)`` (the rotation of robot R'
with respect to robot R) and chirality flips the sense of rotation, so a
couple of normalisation helpers keep the rest of the code free of modular
arithmetic bugs.
"""

from __future__ import annotations

import math

__all__ = [
    "TWO_PI",
    "normalize_angle",
    "normalize_signed_angle",
    "angle_difference",
    "is_zero_angle",
    "degrees_to_radians",
    "radians_to_degrees",
]

#: Full turn in radians.
TWO_PI: float = 2.0 * math.pi


def normalize_angle(angle: float) -> float:
    """Reduce ``angle`` to the interval ``[0, 2*pi)``.

    This is the canonical range of the orientation attribute ``phi``.
    """
    reduced = math.fmod(angle, TWO_PI)
    if reduced < 0.0:
        reduced += TWO_PI
    # fmod of values extremely close to 2*pi can round back up to 2*pi.
    if reduced >= TWO_PI:
        reduced -= TWO_PI
    return reduced


def normalize_signed_angle(angle: float) -> float:
    """Reduce ``angle`` to the interval ``(-pi, pi]``."""
    reduced = normalize_angle(angle)
    if reduced > math.pi:
        reduced -= TWO_PI
    return reduced


def angle_difference(first: float, second: float) -> float:
    """Smallest signed rotation taking ``second`` onto ``first``.

    The result is in ``(-pi, pi]``.
    """
    return normalize_signed_angle(first - second)


def is_zero_angle(angle: float, tolerance: float = 1e-12) -> bool:
    """True when ``angle`` is a multiple of ``2*pi`` within ``tolerance``."""
    reduced = normalize_angle(angle)
    return reduced <= tolerance or TWO_PI - reduced <= tolerance


def degrees_to_radians(degrees: float) -> float:
    """Convert degrees to radians."""
    return math.radians(degrees)


def radians_to_degrees(radians: float) -> float:
    """Convert radians to degrees."""
    return math.degrees(radians)
