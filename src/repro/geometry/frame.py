"""Reference frames: how a robot's private units map to the global frame.

The paper's WLOG convention fixes robot R as the *reference robot*: it has
speed 1, time unit 1, orientation 0 and chirality +1, and the global
coordinate system is its own.  Robot R' differs by four hidden attributes
``(v, tau, phi, chi)``.  A :class:`ReferenceFrame` packages those attributes
together with the robot's start position and exposes the two conversions
every other module needs:

* *space*: a displacement expressed in the robot's local coordinates is
  rotated by ``phi``, mirrored when ``chi = -1`` and scaled by the robot's
  distance unit before being added to the start position;
* *time*: one local time unit lasts ``tau`` global time units.

Trajectory segments produced by the algorithms are always expressed in
local command units (e.g. "trace the circle of radius ``2^{-k+j}``"); the
frame is what turns them into world-frame motion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import InvalidParameterError
from .transforms import LinearMap2, attribute_matrix, identity
from .vec import ORIGIN, Vec2

__all__ = ["ReferenceFrame", "GLOBAL_FRAME"]


@dataclass(frozen=True, slots=True)
class ReferenceFrame:
    """Mapping from a robot's local frame to the global frame.

    Attributes:
        origin: world-frame position of the robot's own origin (its start).
        speed: the robot's constant moving speed ``v > 0`` in world units
            per world time unit.
        time_unit: duration ``tau > 0`` of one local time unit, measured in
            world time units.
        orientation: angle ``phi`` by which the robot's +x axis is rotated
            (counter-clockwise, in the world frame).
        chirality: ``+1`` when the robot agrees with the world +y direction,
            ``-1`` when it is mirrored.
    """

    origin: Vec2 = ORIGIN
    speed: float = 1.0
    time_unit: float = 1.0
    orientation: float = 0.0
    chirality: int = 1

    def __post_init__(self) -> None:
        if self.speed <= 0.0 or not math.isfinite(self.speed):
            raise InvalidParameterError(f"speed must be positive and finite, got {self.speed!r}")
        if self.time_unit <= 0.0 or not math.isfinite(self.time_unit):
            raise InvalidParameterError(
                f"time_unit must be positive and finite, got {self.time_unit!r}"
            )
        if self.chirality not in (-1, 1):
            raise InvalidParameterError(f"chirality must be +1 or -1, got {self.chirality!r}")
        if not math.isfinite(self.orientation):
            raise InvalidParameterError(f"orientation must be finite, got {self.orientation!r}")

    # -- derived quantities ------------------------------------------------
    @property
    def distance_unit(self) -> float:
        """Length of the robot's own distance unit in world units.

        The paper defines the distance unit as the product of the robot's
        speed and its local time unit: the distance covered in one local
        time unit.
        """
        return self.speed * self.time_unit

    @property
    def spatial_map(self) -> LinearMap2:
        """Linear part of the local-to-world map (rotation, mirror, scale).

        This is exactly Lemma 4's matrix with the speed replaced by the
        robot's *distance unit*, because a displacement of one local unit
        spans ``speed * time_unit`` world units.
        """
        return attribute_matrix(self.distance_unit, self.orientation, self.chirality)

    # -- space conversions ---------------------------------------------------
    def to_world_displacement(self, local: Vec2) -> Vec2:
        """Convert a local displacement vector to world coordinates."""
        return self.spatial_map.apply(local)

    def to_world_point(self, local: Vec2) -> Vec2:
        """Convert a local point to a world point (adds the origin)."""
        return self.origin + self.to_world_displacement(local)

    def to_local_displacement(self, world: Vec2) -> Vec2:
        """Inverse conversion of :meth:`to_world_displacement`."""
        return self.spatial_map.inverse().apply(world)

    def to_local_point(self, world: Vec2) -> Vec2:
        """Inverse conversion of :meth:`to_world_point`."""
        return self.to_local_displacement(world - self.origin)

    # -- time conversions -------------------------------------------------------
    def to_world_duration(self, local_duration: float) -> float:
        """Length in world time of a local duration."""
        if local_duration < 0.0:
            raise InvalidParameterError(f"durations must be non-negative, got {local_duration!r}")
        return local_duration * self.time_unit

    def to_local_duration(self, world_duration: float) -> float:
        """Length in local time of a world duration."""
        if world_duration < 0.0:
            raise InvalidParameterError(f"durations must be non-negative, got {world_duration!r}")
        return world_duration / self.time_unit

    # -- helpers ------------------------------------------------------------------
    def with_origin(self, origin: Vec2) -> "ReferenceFrame":
        """Copy of this frame translated to a new origin."""
        return ReferenceFrame(
            origin=origin,
            speed=self.speed,
            time_unit=self.time_unit,
            orientation=self.orientation,
            chirality=self.chirality,
        )

    def is_reference(self, tolerance: float = 1e-12) -> bool:
        """True when this frame coincides with the paper's reference robot R."""
        return (
            abs(self.speed - 1.0) <= tolerance
            and abs(self.time_unit - 1.0) <= tolerance
            and abs(self.orientation) <= tolerance
            and self.chirality == 1
        )


#: The frame of the reference robot R located at the world origin.
GLOBAL_FRAME = ReferenceFrame()
