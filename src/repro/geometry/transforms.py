"""Linear maps of the plane and the paper's attribute transforms.

The central objects of the paper's analysis are 2x2 matrices:

* ``attribute_matrix(v, phi, chi)`` -- Lemma 4's matrix ``T`` mapping the
  reference trajectory ``S(t)`` onto the trajectory followed by robot R'
  (scaling by the speed ``v``, rotation by the orientation ``phi`` and an
  optional reflection when the chirality ``chi`` is ``-1``):

      S'(t) = v * R(phi) * diag(1, chi) * S(t)

* ``relative_matrix(v, phi, chi)`` -- the matrix ``T_circ = I - T`` whose
  action on ``S(t)`` yields the *equivalent search trajectory*
  ``S_circ(t) = S(t) - S'(t)``.

* ``qr_factor_relative(v, phi, chi)`` -- Lemma 5's factorisation
  ``T_circ = Phi * T_circ_prime`` with ``Phi`` a proper rotation and
  ``T_circ_prime`` upper triangular; its (1, 1) entry is
  ``mu = sqrt(v**2 - 2 v cos(phi) + 1)``.

``LinearMap2`` is a small immutable matrix wrapper; it exists so that the
rest of the code can apply, compose and factor these maps without pulling
numpy arrays through every signature.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError
from .vec import Vec2

__all__ = [
    "LinearMap2",
    "rotation",
    "reflection_x",
    "scaling",
    "identity",
    "attribute_matrix",
    "relative_matrix",
    "mu_factor",
    "qr_factor_relative",
]


@dataclass(frozen=True, slots=True)
class LinearMap2:
    """An immutable 2x2 real matrix acting on :class:`Vec2`.

    Entries are stored row-major: ``[[a, b], [c, d]]``.
    """

    a: float
    b: float
    c: float
    d: float

    # -- constructors ----------------------------------------------------
    @staticmethod
    def from_rows(row0: tuple[float, float], row1: tuple[float, float]) -> "LinearMap2":
        """Build a map from two row tuples."""
        return LinearMap2(row0[0], row0[1], row1[0], row1[1])

    @staticmethod
    def from_array(matrix: np.ndarray) -> "LinearMap2":
        """Build a map from a 2x2 numpy array."""
        array = np.asarray(matrix, dtype=float)
        if array.shape != (2, 2):
            raise InvalidParameterError(f"expected a 2x2 matrix, got shape {array.shape}")
        return LinearMap2(array[0, 0], array[0, 1], array[1, 0], array[1, 1])

    # -- action ----------------------------------------------------------
    def apply(self, vector: Vec2) -> Vec2:
        """Matrix-vector product."""
        return Vec2(
            self.a * vector.x + self.b * vector.y,
            self.c * vector.x + self.d * vector.y,
        )

    def __call__(self, vector: Vec2) -> Vec2:
        return self.apply(vector)

    def compose(self, other: "LinearMap2") -> "LinearMap2":
        """Matrix product ``self @ other`` (apply ``other`` first)."""
        return LinearMap2(
            self.a * other.a + self.b * other.c,
            self.a * other.b + self.b * other.d,
            self.c * other.a + self.d * other.c,
            self.c * other.b + self.d * other.d,
        )

    def __matmul__(self, other: "LinearMap2") -> "LinearMap2":
        return self.compose(other)

    # -- algebra ---------------------------------------------------------
    def determinant(self) -> float:
        """Determinant of the matrix."""
        return self.a * self.d - self.b * self.c

    def transpose(self) -> "LinearMap2":
        """Matrix transpose."""
        return LinearMap2(self.a, self.c, self.b, self.d)

    def inverse(self) -> "LinearMap2":
        """Matrix inverse.

        Raises:
            InvalidParameterError: if the matrix is singular.
        """
        det = self.determinant()
        if abs(det) < 1e-300:
            raise InvalidParameterError("matrix is singular and cannot be inverted")
        return LinearMap2(self.d / det, -self.b / det, -self.c / det, self.a / det)

    def scaled(self, factor: float) -> "LinearMap2":
        """Entry-wise scaling by ``factor``."""
        return LinearMap2(self.a * factor, self.b * factor, self.c * factor, self.d * factor)

    def add(self, other: "LinearMap2") -> "LinearMap2":
        """Entry-wise sum."""
        return LinearMap2(self.a + other.a, self.b + other.b, self.c + other.c, self.d + other.d)

    def subtract(self, other: "LinearMap2") -> "LinearMap2":
        """Entry-wise difference."""
        return LinearMap2(self.a - other.a, self.b - other.b, self.c - other.c, self.d - other.d)

    # -- properties --------------------------------------------------------
    def operator_norm(self) -> float:
        """Largest singular value (Lipschitz constant of the map)."""
        return float(np.linalg.norm(self.to_array(), ord=2))

    def smallest_singular_value(self) -> float:
        """Smallest singular value (how much the map can shrink lengths)."""
        singular_values = np.linalg.svd(self.to_array(), compute_uv=False)
        return float(singular_values[-1])

    def is_orthogonal(self, tolerance: float = 1e-9) -> bool:
        """True when the map preserves the Euclidean inner product."""
        product = self.compose(self.transpose())
        return (
            abs(product.a - 1.0) <= tolerance
            and abs(product.d - 1.0) <= tolerance
            and abs(product.b) <= tolerance
            and abs(product.c) <= tolerance
        )

    def is_rotation(self, tolerance: float = 1e-9) -> bool:
        """True when the map is a proper rotation (orthogonal, det +1)."""
        return self.is_orthogonal(tolerance) and abs(self.determinant() - 1.0) <= tolerance

    def is_close(self, other: "LinearMap2", tolerance: float = 1e-9) -> bool:
        """Entry-wise comparison within ``tolerance``."""
        return (
            abs(self.a - other.a) <= tolerance
            and abs(self.b - other.b) <= tolerance
            and abs(self.c - other.c) <= tolerance
            and abs(self.d - other.d) <= tolerance
        )

    def to_array(self) -> np.ndarray:
        """Copy as a 2x2 numpy array."""
        return np.array([[self.a, self.b], [self.c, self.d]], dtype=float)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinearMap2([[{self.a:.6g}, {self.b:.6g}], [{self.c:.6g}, {self.d:.6g}]])"


def identity() -> LinearMap2:
    """The identity map."""
    return LinearMap2(1.0, 0.0, 0.0, 1.0)


def rotation(angle: float) -> LinearMap2:
    """Counter-clockwise rotation by ``angle`` radians."""
    c, s = math.cos(angle), math.sin(angle)
    return LinearMap2(c, -s, s, c)


def reflection_x() -> LinearMap2:
    """Reflection about the x axis, ``diag(1, -1)``."""
    return LinearMap2(1.0, 0.0, 0.0, -1.0)


def scaling(factor: float) -> LinearMap2:
    """Uniform scaling by ``factor``."""
    return LinearMap2(factor, 0.0, 0.0, factor)


def _validate_attributes(speed: float, chirality: int) -> None:
    if speed <= 0.0:
        raise InvalidParameterError(f"speed must be positive, got {speed!r}")
    if chirality not in (-1, 1):
        raise InvalidParameterError(f"chirality must be +1 or -1, got {chirality!r}")


def attribute_matrix(speed: float, orientation: float, chirality: int) -> LinearMap2:
    """Lemma 4's matrix mapping ``S(t)`` to the trajectory of robot R'.

    The robot R' traverses ``S'(t) = v * R(phi) * diag(1, chi) * S(t)``:
    its chirality possibly mirrors the trajectory about the x axis, its
    compass rotates it by ``phi`` and its speed scales it by ``v``.

    Args:
        speed: the speed ``v > 0`` of robot R' (robot R has speed 1).
        orientation: the orientation ``phi`` of R' in radians.
        chirality: ``+1`` when both robots agree on the +y direction,
            ``-1`` otherwise.

    Returns:
        The 2x2 matrix ``T`` with ``S'(t) = T @ S(t)``.
    """
    _validate_attributes(speed, chirality)
    return _attribute_matrix_cached(speed, orientation, chirality)


@functools.lru_cache(maxsize=1024)
def _attribute_matrix_cached(speed: float, orientation: float, chirality: int) -> LinearMap2:
    # LinearMap2 is immutable, so sharing one instance per attribute vector
    # is safe; the frame transform queries this once per segment, which
    # made the trigonometry a measurable cost on long trajectories.
    return rotation(orientation).compose(reflection_x() if chirality == -1 else identity()).scaled(speed)


def relative_matrix(speed: float, orientation: float, chirality: int) -> LinearMap2:
    """The matrix ``T_circ = I - T`` of the equivalent search trajectory.

    Definition 1 of the paper: when both robots execute the trajectory
    ``S(t)`` the vector joining them evolves as ``d + S'(t) - S(t)``, so
    rendezvous for the pair is equivalent to *search* along
    ``S_circ(t) = (I - T) S(t) = T_circ S(t)``.
    """
    return identity().subtract(attribute_matrix(speed, orientation, chirality))


def mu_factor(speed: float, orientation: float) -> float:
    """The scaling factor ``mu = sqrt(v^2 - 2 v cos(phi) + 1)`` of Lemma 5.

    ``mu`` is the distance between the two unit trajectories after one unit
    of motion; it is zero exactly when ``v = 1`` and ``phi = 0`` (identical
    robots, rendezvous infeasible with equal clocks and chirality).
    """
    if speed <= 0.0:
        raise InvalidParameterError(f"speed must be positive, got {speed!r}")
    value = speed * speed - 2.0 * speed * math.cos(orientation) + 1.0
    # Guard against tiny negative rounding when v == 1, phi == 0.
    return math.sqrt(max(value, 0.0))


def qr_factor_relative(
    speed: float, orientation: float, chirality: int
) -> tuple[LinearMap2, LinearMap2]:
    """Lemma 5's QR factorisation ``T_circ = Phi @ T_circ_prime``.

    ``Phi`` is a proper rotation (orthogonal with determinant +1) and

        T_circ_prime = [[mu, -(1 - chi) v sin(phi) / mu],
                        [0,  (chi v^2 - (1 + chi) v cos(phi) + 1) / mu]]

    Because rotations preserve distances, replacing ``T_circ`` by
    ``T_circ_prime`` does not change whether or when the equivalent search
    trajectory approaches the target within ``r`` -- this is what lets the
    paper analyse the two chirality cases through a triangular matrix.

    Returns:
        ``(Phi, T_circ_prime)``.

    Raises:
        InvalidParameterError: when ``mu = 0`` (``v = 1`` and ``phi = 0``),
            in which case ``T_circ`` is not full rank and the factorisation
            of Lemma 5 is undefined (and rendezvous is infeasible anyway).
    """
    _validate_attributes(speed, chirality)
    mu = mu_factor(speed, orientation)
    if mu == 0.0:
        raise InvalidParameterError(
            "mu = 0 (v = 1 and phi = 0): the relative matrix is singular and "
            "Lemma 5's factorisation does not apply"
        )
    v = speed
    phi = orientation
    chi = chirality
    phi_matrix = LinearMap2(
        (1.0 - v * math.cos(phi)) / mu,
        v * math.sin(phi) / mu,
        -v * math.sin(phi) / mu,
        (1.0 - v * math.cos(phi)) / mu,
    )
    upper = LinearMap2(
        mu,
        -(1.0 - chi) * v * math.sin(phi) / mu,
        0.0,
        (chi * v * v - (1.0 + chi) * v * math.cos(phi) + 1.0) / mu,
    )
    return phi_matrix, upper
