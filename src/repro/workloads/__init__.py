"""Workload generation: seeded random instances, adversarial cases, suites."""

from .adversarial import (
    infeasible_identical_instance,
    infeasible_mirrored_instance,
    mirrored_worst_instance,
    near_symmetric_attributes,
    worst_case_orientation,
)
from .generators import InstanceGenerator
from .suites import (
    as_specs,
    asymmetric_clock_suite,
    baseline_comparison_suite,
    fault_byzantine_suite,
    fault_crash_sweep_suite,
    feasibility_grid,
    mirrored_suite,
    search_random_suite,
    search_sweep_large_suite,
    search_sweep_suite,
    spec_suite,
    spec_suite_names,
    suite_spec_hashes,
    symmetric_clock_large_suite,
    symmetric_clock_suite,
)

__all__ = [
    "as_specs",
    "spec_suite",
    "spec_suite_names",
    "suite_spec_hashes",
    "infeasible_identical_instance",
    "infeasible_mirrored_instance",
    "mirrored_worst_instance",
    "near_symmetric_attributes",
    "worst_case_orientation",
    "InstanceGenerator",
    "asymmetric_clock_suite",
    "baseline_comparison_suite",
    "fault_byzantine_suite",
    "fault_crash_sweep_suite",
    "feasibility_grid",
    "mirrored_suite",
    "search_random_suite",
    "search_sweep_suite",
    "search_sweep_large_suite",
    "symmetric_clock_suite",
    "symmetric_clock_large_suite",
]
