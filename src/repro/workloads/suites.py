"""Named workload suites shared by the experiments and the benchmarks.

Each suite is a deterministic list of instances (seeded generators plus
hand-picked corner cases) so that every benchmark run measures exactly the
same work and results are comparable across machines and runs.
"""

from __future__ import annotations

import hashlib
import math
from typing import Callable, Iterable, Optional, Sequence

from ..api.spec import ProblemSpec, RendezvousProblem, SearchProblem
from ..errors import InvalidParameterError
from ..faults.model import FaultModel
from ..geometry import Vec2
from ..robots import RobotAttributes
from ..simulation import RendezvousInstance, SearchInstance
from .adversarial import infeasible_identical_instance, infeasible_mirrored_instance
from .generators import InstanceGenerator

__all__ = [
    "LazySpecSuite",
    "search_sweep_suite",
    "search_sweep_large_suite",
    "search_sweep_xl_suite",
    "search_random_suite",
    "symmetric_clock_suite",
    "symmetric_clock_large_suite",
    "mirrored_suite",
    "asymmetric_clock_suite",
    "feasibility_grid",
    "baseline_comparison_suite",
    "fault_crash_sweep_suite",
    "fault_byzantine_suite",
    "as_specs",
    "spec_suite",
    "spec_suite_names",
    "suite_spec_hashes",
]


def search_sweep_suite() -> list[SearchInstance]:
    """Deterministic (d, r) sweep for the Theorem 1 experiment (E01)."""
    instances = []
    for distance in (0.6, 1.0, 1.5, 2.0, 3.0, 4.0):
        for visibility in (0.1, 0.2, 0.4):
            for bearing in (0.3, 2.1, 4.4):
                instances.append(
                    SearchInstance(target=Vec2.polar(distance, bearing), visibility=visibility)
                )
    return instances


def search_sweep_large_suite() -> list[SearchInstance]:
    """Dense deterministic (d, r, bearing) sweep -- 600 instances.

    At ~4 ms per instance the scalar engine needs seconds for this suite;
    it exists for the vectorized kernel, which shares one compiled
    trajectory across the whole batch and solves it in tens of
    milliseconds.  Kept fully deterministic (a fixed grid, no RNG) so
    throughput numbers are comparable across machines and PRs.
    """
    instances = []
    for i in range(10):
        distance = 0.5 + 0.35 * i
        for visibility in (0.1, 0.18, 0.26, 0.34, 0.42):
            for j in range(12):
                bearing = 2.0 * math.pi * j / 12.0 + 0.1
                instances.append(
                    SearchInstance(
                        target=Vec2.polar(distance, bearing), visibility=visibility
                    )
                )
    return instances


class LazySpecSuite(Sequence[ProblemSpec]):
    """A deterministic suite built per index instead of held in memory.

    The XL sweeps are two orders of magnitude larger than anything the
    eager suites materialize; holding 10^5 spec objects just to answer
    ``len()`` or hash the workload would cost tens of megabytes per
    listing.  A lazy suite stores only the grid arithmetic: ``build``
    maps an index to its spec on demand, so iteration, slicing and
    ``spec_hashes()`` all see exactly the same deterministic specs an
    eager list would hold -- one at a time.

    ``spec_hashes()`` (and the 12-hex ``digest()`` derived from it, the
    same formula ``repro suites`` prints for every suite) is computed
    once and cached: the hashes pin the workload's identity and are two
    orders of magnitude smaller than the specs themselves.
    """

    #: Lazy suites carry no fault axis; ``repro suites`` reports this.
    faulted = 0

    def __init__(
        self,
        count: int,
        build: Callable[[int], ProblemSpec],
        kinds: tuple[str, ...],
    ) -> None:
        if count < 1:
            raise InvalidParameterError(f"count must be positive, got {count!r}")
        self._count = count
        self._build = build
        self.kinds = kinds
        self._hashes: Optional[list[str]] = None

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return [self._build(i) for i in range(*index.indices(self._count))]
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(f"suite index {index} out of range")
        return self._build(index)

    def __iter__(self):
        for index in range(self._count):
            yield self._build(index)

    def spec_hashes(self) -> list[str]:
        """Canonical hashes of every spec, in suite order (cached)."""
        if self._hashes is None:
            self._hashes = [spec.canonical_hash() for spec in self]
        return self._hashes

    def digest(self) -> str:
        """The 12-hex workload digest ``repro suites`` reports."""
        return hashlib.sha256(
            "".join(self.spec_hashes()).encode("utf-8")
        ).hexdigest()[:12]


_XL_VISIBILITIES = 40
_XL_BEARINGS = 50


def _search_sweep_xl_spec(index: int) -> SearchProblem:
    i, remainder = divmod(index, _XL_VISIBILITIES * _XL_BEARINGS)
    j, k = divmod(remainder, _XL_BEARINGS)
    return SearchProblem(
        distance=0.5 + 0.07 * i,
        visibility=0.08 + 0.009 * j,
        bearing=2.0 * math.pi * k / _XL_BEARINGS + 0.05,
    )


_XL_SUITE: Optional[LazySpecSuite] = None


def search_sweep_xl_suite() -> LazySpecSuite:
    """Lazy 100,000-spec (d, r, bearing) grid for distributed sweeps.

    50 distances x 40 visibilities x 50 bearings of
    :class:`~repro.api.spec.SearchProblem`, built directly by index --
    the suite object holds the grid arithmetic, not 10^5 spec objects.
    Module-level cached so repeated lookups share the hash cache.
    """
    global _XL_SUITE
    if _XL_SUITE is None:
        _XL_SUITE = LazySpecSuite(
            50 * _XL_VISIBILITIES * _XL_BEARINGS,
            _search_sweep_xl_spec,
            kinds=("search",),
        )
    return _XL_SUITE


def search_random_suite(count: int = 24, seed: int = 11) -> list[SearchInstance]:
    """Random search instances (E03, E10)."""
    generator = InstanceGenerator(seed=seed)
    return generator.search_suite(count)


def symmetric_clock_suite() -> list[RendezvousInstance]:
    """Equal-clock rendezvous instances with chi = +1 (E04)."""
    instances = []
    for speed in (0.4, 0.7, 1.3, 1.8):
        for orientation in (0.0, math.pi / 3, math.pi, 5 * math.pi / 3):
            if speed == 1.0 and orientation == 0.0:
                continue
            for bearing in (0.9, 3.7):
                instances.append(
                    RendezvousInstance(
                        separation=Vec2.polar(1.6, bearing),
                        visibility=0.35,
                        attributes=RobotAttributes(speed=speed, orientation=orientation),
                    )
                )
    return instances


def symmetric_clock_large_suite() -> list[RendezvousInstance]:
    """Dense equal-clock rendezvous sweep -- 512 feasible instances.

    Every instance differs from the reference robot in speed, so Theorem
    4 guarantees feasibility and the default horizon derivation applies.
    Like :func:`search_sweep_large_suite`, this only becomes a practical
    benchmark workload through the kernel-backed batch path.
    """
    instances = []
    speeds = (0.3, 0.5, 0.7, 0.85, 1.15, 1.4, 1.7, 2.0)
    orientations = tuple(2.0 * math.pi * j / 8.0 for j in range(8))
    bearings = tuple(2.0 * math.pi * j / 8.0 + 0.25 for j in range(8))
    for speed in speeds:
        for orientation in orientations:
            for bearing in bearings:
                instances.append(
                    RendezvousInstance(
                        separation=Vec2.polar(1.4, bearing),
                        visibility=0.4,
                        attributes=RobotAttributes(speed=speed, orientation=orientation),
                    )
                )
    return instances


def mirrored_suite() -> list[RendezvousInstance]:
    """Equal-clock rendezvous instances with chi = -1 and v < 1 (E05)."""
    instances = []
    for speed in (0.2, 0.5, 0.8):
        for orientation in (0.0, math.pi / 2, math.pi):
            for bearing in (0.0, math.pi / 2, 2.2):
                instances.append(
                    RendezvousInstance(
                        separation=Vec2.polar(1.2, bearing),
                        visibility=0.4,
                        attributes=RobotAttributes(
                            speed=speed, orientation=orientation, chirality=-1
                        ),
                    )
                )
    return instances


def asymmetric_clock_suite() -> list[RendezvousInstance]:
    """Asymmetric-clock instances exercising Algorithm 7 (E09)."""
    instances = []
    for time_unit in (0.5, 0.6, 0.75):
        for bearing in (0.7, 2.5):
            instances.append(
                RendezvousInstance(
                    separation=Vec2.polar(1.1, bearing),
                    visibility=0.45,
                    attributes=RobotAttributes(time_unit=time_unit),
                )
            )
    # Clocks *and* speeds both different (Theorem 4's "or" is inclusive).
    instances.append(
        RendezvousInstance(
            separation=Vec2.polar(1.0, 1.3),
            visibility=0.45,
            attributes=RobotAttributes(speed=0.8, time_unit=0.5),
        )
    )
    return instances


def feasibility_grid() -> list[tuple[str, RendezvousInstance, bool]]:
    """Labelled feasible/infeasible instances for the Theorem 4 grid (E06).

    Returns ``(label, instance, expected_feasible)`` triples.
    """
    grid: list[tuple[str, RendezvousInstance, bool]] = []
    grid.append(
        (
            "different speeds",
            RendezvousInstance(
                separation=Vec2(1.3, 0.2),
                visibility=0.4,
                attributes=RobotAttributes(speed=0.6),
            ),
            True,
        )
    )
    grid.append(
        (
            "different clocks",
            RendezvousInstance(
                separation=Vec2(0.9, 0.5),
                visibility=0.45,
                attributes=RobotAttributes(time_unit=0.5),
            ),
            True,
        )
    )
    grid.append(
        (
            "rotated, equal chirality",
            RendezvousInstance(
                separation=Vec2(1.1, -0.4),
                visibility=0.4,
                attributes=RobotAttributes(orientation=2.0),
            ),
            True,
        )
    )
    grid.append(
        (
            "rotated and mirrored, different speeds",
            RendezvousInstance(
                separation=Vec2(0.8, 0.9),
                visibility=0.4,
                attributes=RobotAttributes(speed=0.5, orientation=1.0, chirality=-1),
            ),
            True,
        )
    )
    grid.append(("identical robots", infeasible_identical_instance(1.5, 0.3), False))
    grid.append(
        ("mirrored only", infeasible_mirrored_instance(0.0, 1.5, 0.3), False)
    )
    grid.append(
        ("mirrored and rotated", infeasible_mirrored_instance(2.2, 1.5, 0.3), False)
    )
    return grid


def baseline_comparison_suite(count: int = 10, seed: int = 23) -> list[SearchInstance]:
    """Shared search instances for the baseline comparison (E10)."""
    if count < 1:
        raise InvalidParameterError(f"count must be positive, got {count!r}")
    generator = InstanceGenerator(seed=seed)
    return generator.search_suite(
        count, distance_range=(0.8, 3.0), visibility_range=(0.15, 0.45)
    )


# -- fault suites --------------------------------------------------------------------
#
# Unlike the instance suites above, the fault suites are built directly as
# facade specs: the fault axis lives on the spec (it must participate in
# canonical hashing), not on the simulation-layer instance.

#: Shared Monte-Carlo configuration of the deterministic fault suites.
_FAULT_TRIALS = 6
_FAULT_MC_SEED = 97


def fault_crash_sweep_suite() -> list[ProblemSpec]:
    """Deterministic crash-stop / crash-recovery sweep (E14, benchmarks).

    Covers the two crash kinds over a small grid of onset times for both
    problem kinds, the partner-crash rendezvous case, and the signature
    symmetry-breaking case: a provably infeasible identical-robots
    rendezvous whose partner crashes (the wreck is a static target, so
    the healthy robot's search finds it despite Theorem 4).
    """
    specs: list[ProblemSpec] = []
    for crash_time in (0.5, 2.0, 8.0):
        for visibility in (0.2, 0.35):
            specs.append(
                SearchProblem(
                    distance=1.5,
                    visibility=visibility,
                    bearing=0.8,
                    fault_model=FaultModel(
                        kind="crash-stop",
                        robot="reference",
                        crash_time=crash_time,
                        trials=_FAULT_TRIALS,
                        mc_seed=_FAULT_MC_SEED,
                        jitter=0.25,
                    ),
                )
            )
            specs.append(
                SearchProblem(
                    distance=1.5,
                    visibility=visibility,
                    bearing=0.8,
                    fault_model=FaultModel(
                        kind="crash-recovery",
                        robot="reference",
                        crash_time=crash_time,
                        recovery_delay=4.0,
                        trials=_FAULT_TRIALS,
                        mc_seed=_FAULT_MC_SEED,
                        jitter=0.25,
                    ),
                )
            )
    for crash_time in (1.0, 4.0):
        for robot in ("reference", "other"):
            specs.append(
                RendezvousProblem(
                    distance=1.6,
                    visibility=0.35,
                    bearing=0.9,
                    speed=0.7,
                    fault_model=FaultModel(
                        kind="crash-stop",
                        robot=robot,
                        crash_time=crash_time,
                        trials=_FAULT_TRIALS,
                        mc_seed=_FAULT_MC_SEED,
                        jitter=0.25,
                    ),
                )
            )
            specs.append(
                RendezvousProblem(
                    distance=1.6,
                    visibility=0.35,
                    bearing=0.9,
                    speed=0.7,
                    fault_model=FaultModel(
                        kind="crash-recovery",
                        robot=robot,
                        crash_time=crash_time,
                        recovery_delay=3.0,
                        trials=_FAULT_TRIALS,
                        mc_seed=_FAULT_MC_SEED,
                        jitter=0.25,
                    ),
                )
            )
    # Symmetry breaking: infeasible without the fault, solvable with it.
    for crash_time in (1.0, 3.0):
        specs.append(
            RendezvousProblem(
                distance=1.5,
                visibility=0.3,
                fault_model=FaultModel(
                    kind="crash-stop",
                    robot="other",
                    crash_time=crash_time,
                    trials=_FAULT_TRIALS,
                    mc_seed=_FAULT_MC_SEED,
                    jitter=0.25,
                ),
            )
        )
    return specs


def fault_byzantine_suite() -> list[ProblemSpec]:
    """Deterministic Byzantine-partner sweep (rendezvous only).

    The adversarial walk varies per trial through the seeded trial
    stream, so this suite exercises the genuinely randomized side of the
    ``montecarlo`` backend even with ``jitter=0``.
    """
    specs: list[ProblemSpec] = []
    for onset in (0.0, 2.0, 6.0):
        for speed in (0.7, 1.3):
            for bearing in (0.9, 3.7):
                specs.append(
                    RendezvousProblem(
                        distance=1.6,
                        visibility=0.35,
                        bearing=bearing,
                        speed=speed,
                        fault_model=FaultModel(
                            kind="byzantine",
                            robot="other",
                            crash_time=onset,
                            trials=_FAULT_TRIALS,
                            mc_seed=_FAULT_MC_SEED,
                        ),
                    )
                )
    return specs


# -- facade bridging -----------------------------------------------------------------


def as_specs(
    instances: Iterable[SearchInstance | RendezvousInstance | ProblemSpec],
) -> list[ProblemSpec]:
    """Convert simulation-layer instances to :mod:`repro.api` problem specs.

    The conversion is the bridge between the suites above (rich in-memory
    instances) and the facade's serializable, hashable wire format used by
    the batch runner and the benchmarks.  Suites built directly from
    specs (the fault suites) pass through unchanged.
    """
    specs: list[ProblemSpec] = []
    for instance in instances:
        if isinstance(instance, ProblemSpec):
            specs.append(instance)
        elif isinstance(instance, SearchInstance):
            specs.append(SearchProblem.from_instance(instance))
        elif isinstance(instance, RendezvousInstance):
            specs.append(RendezvousProblem.from_instance(instance))
        else:
            raise InvalidParameterError(
                f"cannot convert {type(instance).__name__} to a problem spec"
            )
    return specs


_SPEC_SUITES: dict[str, Callable[[], Sequence[SearchInstance | RendezvousInstance]]] = {
    "search-sweep": search_sweep_suite,
    "search-sweep-large": search_sweep_large_suite,
    "search-sweep-xl": search_sweep_xl_suite,
    "search-random": search_random_suite,
    "symmetric-clock": symmetric_clock_suite,
    "symmetric-clock-large": symmetric_clock_large_suite,
    "mirrored": mirrored_suite,
    "asymmetric-clock": asymmetric_clock_suite,
    "baseline-comparison": baseline_comparison_suite,
    "fault-crash-sweep": fault_crash_sweep_suite,
    "fault-byzantine": fault_byzantine_suite,
}


def spec_suite_names() -> list[str]:
    """Sorted names of the workload suites available as spec lists."""
    return sorted(_SPEC_SUITES)


def spec_suite(name: str) -> Sequence[ProblemSpec]:
    """A named deterministic workload suite as facade specs.

    Eager suites come back as plain lists; the XL suites come back as
    their :class:`LazySpecSuite` unconverted, so listing or hashing a
    10^5-spec workload never materializes 10^5 spec objects at once.
    """
    try:
        factory = _SPEC_SUITES[name]
    except KeyError as error:
        raise InvalidParameterError(
            f"unknown spec suite {name!r}; available: {', '.join(spec_suite_names())}"
        ) from error
    suite = factory()
    if isinstance(suite, LazySpecSuite):
        return suite
    return as_specs(suite)


def suite_spec_hashes(name: str) -> list[str]:
    """Canonical hashes of a named suite's specs, in suite order.

    The suites are deterministic, so this list identifies a suite's exact
    workload across machines -- the benchmarks and the persistent result
    store use it to check warm-replay coverage without re-solving.
    """
    suite = spec_suite(name)
    if isinstance(suite, LazySpecSuite):
        return list(suite.spec_hashes())
    return [spec.canonical_hash() for spec in suite]
