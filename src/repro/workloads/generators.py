"""Seeded random instance generators.

All randomness in the library flows through an explicit ``numpy`` random
generator created from a caller-supplied seed, so every experiment,
benchmark and test run is reproducible bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError
from ..geometry import Vec2
from ..robots import RobotAttributes
from ..simulation import RendezvousInstance, SearchInstance

__all__ = ["InstanceGenerator"]


@dataclass
class InstanceGenerator:
    """Random generator of search and rendezvous instances.

    Args:
        seed: seed of the underlying ``numpy`` generator.
    """

    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    # -- scalars -------------------------------------------------------------
    def uniform(self, low: float, high: float) -> float:
        """One uniform sample from ``[low, high)``."""
        if high < low:
            raise InvalidParameterError(f"empty range [{low!r}, {high!r})")
        return float(self._rng.uniform(low, high))

    def bearing(self) -> float:
        """A uniformly random direction in ``[0, 2*pi)``."""
        return float(self._rng.uniform(0.0, 2.0 * math.pi))

    def chirality(self) -> int:
        """A fair random chirality."""
        return 1 if self._rng.integers(0, 2) == 0 else -1

    # -- instances -----------------------------------------------------------
    def search_instance(
        self,
        distance_range: tuple[float, float] = (0.5, 4.0),
        visibility_range: tuple[float, float] = (0.1, 0.5),
    ) -> SearchInstance:
        """A search instance with random distance, bearing and visibility."""
        distance = self.uniform(*distance_range)
        visibility = self.uniform(*visibility_range)
        target = Vec2.polar(distance, self.bearing())
        return SearchInstance(target=target, visibility=visibility)

    def attributes(
        self,
        speed_range: tuple[float, float] = (0.3, 1.8),
        time_unit_range: tuple[float, float] = (1.0, 1.0),
        random_orientation: bool = True,
        random_chirality: bool = False,
    ) -> RobotAttributes:
        """A random attribute vector within the given ranges."""
        speed = self.uniform(*speed_range)
        time_unit = self.uniform(*time_unit_range)
        orientation = self.bearing() if random_orientation else 0.0
        chirality = self.chirality() if random_chirality else 1
        return RobotAttributes(
            speed=speed, time_unit=time_unit, orientation=orientation, chirality=chirality
        )

    def rendezvous_instance(
        self,
        attributes: RobotAttributes | None = None,
        distance_range: tuple[float, float] = (0.5, 3.0),
        visibility_range: tuple[float, float] = (0.2, 0.6),
    ) -> RendezvousInstance:
        """A rendezvous instance with random separation and visibility.

        The separation is rejected (and resampled) when it is already within
        the visibility radius, so generated instances are never trivially
        solved at time zero.
        """
        if attributes is None:
            attributes = self.attributes()
        for _ in range(1000):
            distance = self.uniform(*distance_range)
            visibility = self.uniform(*visibility_range)
            if distance > visibility:
                separation = Vec2.polar(distance, self.bearing())
                return RendezvousInstance(
                    separation=separation, visibility=visibility, attributes=attributes
                )
        raise InvalidParameterError(
            "could not generate a non-trivial instance: the distance range lies below the "
            "visibility range"
        )

    def search_suite(self, count: int, **kwargs: object) -> list[SearchInstance]:
        """A list of ``count`` random search instances."""
        if count < 1:
            raise InvalidParameterError(f"count must be positive, got {count!r}")
        return [self.search_instance(**kwargs) for _ in range(count)]  # type: ignore[arg-type]

    def rendezvous_suite(self, count: int, **kwargs: object) -> list[RendezvousInstance]:
        """A list of ``count`` random rendezvous instances."""
        if count < 1:
            raise InvalidParameterError(f"count must be positive, got {count!r}")
        return [self.rendezvous_instance(**kwargs) for _ in range(count)]  # type: ignore[arg-type]
