"""Adversarial (worst-case) configurations.

The paper's bounds are worst case over the target bearing, the orientation
offset and the clock ratio.  These helpers construct exactly the
configurations the proofs identify as hardest, so the experiments can
probe the bounds where they are tight and demonstrate infeasibility where
the paper proves it.
"""

from __future__ import annotations

import math

from ..core.feasibility import adversarial_separation_direction
from ..errors import InvalidParameterError
from ..geometry import Vec2
from ..robots import RobotAttributes
from ..simulation import RendezvousInstance

__all__ = [
    "worst_case_orientation",
    "mirrored_worst_instance",
    "infeasible_identical_instance",
    "infeasible_mirrored_instance",
    "near_symmetric_attributes",
]


def worst_case_orientation(speed: float) -> float:
    """The orientation maximising the Theorem 2 bound for ``chi = -1``.

    Lemma 7 maximises ``mu = sqrt(v^2 - 2 v cos(phi) + 1)`` over ``phi``;
    the maximum ``1 + v`` is attained at ``phi = pi``.
    """
    if speed <= 0.0:
        raise InvalidParameterError(f"speed must be positive, got {speed!r}")
    return math.pi


def mirrored_worst_instance(
    speed: float, distance: float, visibility: float
) -> RendezvousInstance:
    """Worst-case mirrored instance for Theorem 2's ``chi = -1`` branch.

    The orientation is the bound-maximising ``pi`` and the separation is
    placed along the direction the reduction compresses the most (the
    adversarial bearing of the mirrored relative map), which is where the
    ``1/(1 - v)`` blow-up of the bound actually shows up.
    """
    if not (0.0 < speed < 1.0):
        raise InvalidParameterError(f"the mirrored worst case needs 0 < v < 1, got {speed!r}")
    attributes = RobotAttributes(
        speed=speed, orientation=worst_case_orientation(speed), chirality=-1
    )
    direction = adversarial_separation_direction(attributes)
    return RendezvousInstance(
        separation=direction * distance, visibility=visibility, attributes=attributes
    )


def infeasible_identical_instance(distance: float, visibility: float) -> RendezvousInstance:
    """Two attribute-identical robots: rendezvous provably infeasible."""
    attributes = RobotAttributes()
    return RendezvousInstance(
        separation=Vec2(0.0, distance), visibility=visibility, attributes=attributes
    )


def infeasible_mirrored_instance(
    orientation: float, distance: float, visibility: float
) -> RendezvousInstance:
    """Mirrored robots with equal speed and clock: infeasible for any orientation.

    The separation is placed along the mirror-invariant direction, the
    adversarial placement of the impossibility argument (the relative
    motion never has a component along that direction).
    """
    attributes = RobotAttributes(speed=1.0, time_unit=1.0, orientation=orientation, chirality=-1)
    direction = adversarial_separation_direction(attributes)
    return RendezvousInstance(
        separation=direction * distance, visibility=visibility, attributes=attributes
    )


def near_symmetric_attributes(epsilon: float, parameter: str = "speed") -> RobotAttributes:
    """Attributes differing from the reference robot by ``epsilon`` in one parameter.

    Used to probe the bounds' blow-up as the symmetry-breaking advantage
    vanishes (``v -> 1``, ``tau -> 1`` or ``phi -> 0``).
    """
    if epsilon <= 0.0:
        raise InvalidParameterError(f"epsilon must be positive, got {epsilon!r}")
    if parameter == "speed":
        return RobotAttributes(speed=1.0 - epsilon)
    if parameter == "clock":
        return RobotAttributes(time_unit=1.0 - epsilon)
    if parameter == "orientation":
        return RobotAttributes(orientation=epsilon)
    raise InvalidParameterError(
        f"parameter must be 'speed', 'clock' or 'orientation', got {parameter!r}"
    )
