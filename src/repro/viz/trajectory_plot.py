"""SVG plots of robot trajectories.

Renders the traces of one or both robots (plus the visibility disc and the
rendezvous point, when known) as an SVG file.  Used by the examples and by
the figure-reproduction experiments.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import InvalidParameterError
from ..simulation import DetectionEvent, Trace
from .svg import SvgCanvas, Viewport

__all__ = ["plot_traces"]

_COLORS = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#8c564b"]


def plot_traces(
    traces: list[Trace],
    path: Path | str,
    visibility: float | None = None,
    event: DetectionEvent | None = None,
    title: str = "",
    size: float = 640.0,
) -> Path:
    """Plot traces (and optionally the detection event) to an SVG file."""
    if not traces:
        raise InvalidParameterError("need at least one trace to plot")
    points = [p for trace in traces for p in trace.points]
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    pad = 0.1 * max(max(xs) - min(xs), max(ys) - min(ys), 1e-6)
    viewport = Viewport(
        x_min=min(xs) - pad,
        x_max=max(xs) + pad,
        y_min=min(ys) - pad,
        y_max=max(ys) + pad,
        width=size,
        height=size,
    )
    canvas = SvgCanvas(viewport)
    # Axes through the origin for orientation.
    canvas.line((viewport.x_min, 0.0), (viewport.x_max, 0.0), color="#cccccc")
    canvas.line((0.0, viewport.y_min), (0.0, viewport.y_max), color="#cccccc")
    for index, trace in enumerate(traces):
        color = _COLORS[index % len(_COLORS)]
        canvas.polyline([(p.x, p.y) for p in trace.points], color=color)
        canvas.marker((trace.points[0].x, trace.points[0].y), color=color, size=5.0)
        canvas.text(
            (trace.points[0].x, trace.points[0].y), f" {trace.label}", color=color, size=13.0
        )
    if event is not None:
        canvas.marker((event.position_reference.x, event.position_reference.y), color="#000000", size=5.0)
        if visibility is not None:
            canvas.circle(
                (event.position_other.x, event.position_other.y), visibility, color="#2ca02c"
            )
        canvas.text(
            (event.position_reference.x, event.position_reference.y),
            f" meet @ t={event.time:.4g}",
            size=13.0,
        )
    if title:
        canvas.text((viewport.x_min, viewport.y_max), title, size=15.0)
    return canvas.write(path)
