"""Schedule and overlap diagrams (Figures 1, 2 and 3 of the paper).

The diagrams are pure functions of the round index and the clock ratio, so
"reproducing the figure" means regenerating the same interval structure.
Each function returns the interval data (used by the experiments' checks)
and can render it either as ASCII (terminal) or as an SVG bar chart.
"""

from __future__ import annotations

from pathlib import Path

from ..core.schedule import RoundSchedule
from ..errors import InvalidParameterError
from .ascii import render_intervals_ascii
from .svg import SvgCanvas, Viewport

__all__ = [
    "round_structure_rows",
    "active_phase_rows",
    "overlap_rows",
    "render_schedule_ascii",
    "plot_schedule_svg",
]

IntervalRow = tuple[str, list[tuple[float, float, str]]]


def round_structure_rows(rounds: int, time_unit: float = 1.0) -> list[IntervalRow]:
    """Figure 1 data: inactive/active phases of the first ``rounds`` rounds."""
    schedule = RoundSchedule(time_unit)
    intervals = []
    for phase in schedule.phases(rounds):
        kind = "w" if phase.kind == "inactive" else "a"
        intervals.append((phase.start, phase.end, kind))
    return [(f"tau={time_unit:g}", intervals)]


def active_phase_rows(round_index: int, time_unit: float = 1.0) -> list[IntervalRow]:
    """Figure 2 data: the ``Search(k)`` sub-intervals of one active phase."""
    schedule = RoundSchedule(time_unit)
    rows: list[IntervalRow] = []
    breakdown = schedule.active_phase_breakdown(round_index)
    forward = breakdown[: round_index]
    backward = breakdown[round_index:]
    rows.append(("SearchAll", [(start, end, label[7]) for label, start, end in forward]))
    rows.append(("SearchAllRev", [(start, end, label[7]) for label, start, end in backward]))
    return rows


def overlap_rows(rounds: int, tau: float) -> list[IntervalRow]:
    """Figure 3 data: both robots' schedules on a shared global time axis."""
    if tau <= 0.0:
        raise InvalidParameterError(f"tau must be positive, got {tau!r}")
    rows = []
    for label, unit in (("R (tau=1)", 1.0), (f"R' (tau={tau:g})", tau)):
        schedule = RoundSchedule(unit)
        intervals = []
        for phase in schedule.phases(rounds):
            kind = "w" if phase.kind == "inactive" else "a"
            intervals.append((phase.start, phase.end, kind))
        rows.append((label, intervals))
    return rows


def render_schedule_ascii(rows: list[IntervalRow], width: int = 96) -> str:
    """ASCII rendering of any of the figure data sets."""
    return render_intervals_ascii(rows, width=width)


def plot_schedule_svg(
    rows: list[IntervalRow], path: Path | str, title: str = "", width: float = 900.0
) -> Path:
    """SVG bar-chart rendering of interval rows."""
    if not rows:
        raise InvalidParameterError("need at least one row to plot")
    all_intervals = [interval for _, intervals in rows for interval in intervals]
    if not all_intervals:
        raise InvalidParameterError("need at least one interval to plot")
    t_min = min(start for start, _, _ in all_intervals)
    t_max = max(end for _, end, _ in all_intervals)
    height = 80.0 * len(rows) + 80.0
    viewport = Viewport(
        x_min=t_min, x_max=max(t_max, t_min + 1e-9), y_min=0.0, y_max=float(len(rows)),
        width=width, height=height,
    )
    canvas = SvgCanvas(viewport)
    colors = {"w": "#c7c7c7", "a": "#1f77b4"}
    for row_index, (label, intervals) in enumerate(rows):
        y_low = len(rows) - row_index - 0.8
        y_high = len(rows) - row_index - 0.2
        for start, end, kind in intervals:
            color = colors.get(kind[:1].lower(), "#ff7f0e")
            canvas.rectangle((start, y_low), (end, y_high), color=color, fill=color, opacity=0.8)
        canvas.text((t_min, y_high + 0.05), label, size=13.0)
    if title:
        canvas.text((t_min, float(len(rows)) - 0.02), title, size=15.0)
    return canvas.write(path)
