"""ASCII renderings for terminals.

The CLI prints a rough picture of a trajectory or a schedule directly in
the terminal; these renderers are intentionally crude (character grids)
but entirely dependency free.
"""

from __future__ import annotations

from ..errors import InvalidParameterError
from ..geometry import Vec2
from ..simulation import Trace

__all__ = ["render_trace_ascii", "render_intervals_ascii"]


def render_trace_ascii(
    traces: list[Trace], width: int = 72, height: int = 28, markers: str = "*o+x"
) -> str:
    """Render one or more traces on a shared character grid."""
    if not traces:
        raise InvalidParameterError("need at least one trace to render")
    if width < 8 or height < 4:
        raise InvalidParameterError("the grid must be at least 8x4 characters")
    points = [p for trace in traces for p in trace.points]
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = max(x_max - x_min, 1e-9)
    y_span = max(y_max - y_min, 1e-9)
    grid = [[" " for _ in range(width)] for _ in range(height)]

    def plot(point: Vec2, marker: str) -> None:
        column = int((point.x - x_min) / x_span * (width - 1))
        row = int((point.y - y_min) / y_span * (height - 1))
        grid[height - 1 - row][column] = marker

    for index, trace in enumerate(traces):
        marker = markers[index % len(markers)]
        for point in trace.points:
            plot(point, marker)
    legend = "  ".join(
        f"{markers[index % len(markers)]} = {trace.label}" for index, trace in enumerate(traces)
    )
    frame = ["+" + "-" * width + "+"]
    frame.extend("|" + "".join(row) + "|" for row in grid)
    frame.append("+" + "-" * width + "+")
    frame.append(legend)
    frame.append(f"x: [{x_min:.3g}, {x_max:.3g}]  y: [{y_min:.3g}, {y_max:.3g}]")
    return "\n".join(frame)


def render_intervals_ascii(
    rows: list[tuple[str, list[tuple[float, float, str]]]],
    width: int = 96,
) -> str:
    """Render labelled time intervals as horizontal bars.

    ``rows`` is a list of ``(row_label, intervals)`` where each interval is
    ``(start, end, kind)`` and the kind's first character is used as the
    fill character.  This is the terminal rendering of Figures 1-3.
    """
    if not rows:
        raise InvalidParameterError("need at least one row to render")
    all_intervals = [interval for _, intervals in rows for interval in intervals]
    if not all_intervals:
        raise InvalidParameterError("need at least one interval to render")
    t_min = min(start for start, _, _ in all_intervals)
    t_max = max(end for _, end, _ in all_intervals)
    span = max(t_max - t_min, 1e-12)
    label_width = max(len(label) for label, _ in rows) + 2
    bar_width = max(width - label_width, 10)

    lines = []
    for label, intervals in rows:
        bar = [" "] * bar_width
        for start, end, kind in intervals:
            first = int((start - t_min) / span * (bar_width - 1))
            last = int((end - t_min) / span * (bar_width - 1))
            fill = (kind[:1] or "#").upper()
            for position in range(first, max(last, first) + 1):
                bar[position] = fill
        lines.append(label.ljust(label_width) + "".join(bar))
    lines.append(" " * label_width + f"time: [{t_min:.4g}, {t_max:.4g}]")
    return "\n".join(lines)
