"""Dependency-free visualisation: SVG plots and ASCII renderings."""

from .ascii import render_intervals_ascii, render_trace_ascii
from .schedule_plot import (
    active_phase_rows,
    overlap_rows,
    plot_schedule_svg,
    render_schedule_ascii,
    round_structure_rows,
)
from .svg import SvgCanvas, Viewport
from .trajectory_plot import plot_traces

__all__ = [
    "render_intervals_ascii",
    "render_trace_ascii",
    "active_phase_rows",
    "overlap_rows",
    "plot_schedule_svg",
    "render_schedule_ascii",
    "round_structure_rows",
    "SvgCanvas",
    "Viewport",
    "plot_traces",
]
