"""A minimal dependency-free SVG document builder.

matplotlib is not available in the offline environment, so the library
renders its figures (trajectory plots, schedule diagrams) as hand-written
SVG.  Only the handful of primitives the plots need are implemented:
polylines, circles, rectangles, lines and text, plus a simple viewport
mapping from data coordinates to pixel coordinates.
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import InvalidParameterError

__all__ = ["Viewport", "SvgCanvas"]


@dataclass(frozen=True, slots=True)
class Viewport:
    """Mapping from data coordinates to SVG pixel coordinates."""

    x_min: float
    x_max: float
    y_min: float
    y_max: float
    width: float = 640.0
    height: float = 640.0
    margin: float = 40.0

    def __post_init__(self) -> None:
        if self.x_max <= self.x_min or self.y_max <= self.y_min:
            raise InvalidParameterError("the viewport data ranges must be non-empty")
        if self.width <= 2 * self.margin or self.height <= 2 * self.margin:
            raise InvalidParameterError("the viewport is smaller than its margins")

    def to_pixels(self, x: float, y: float) -> tuple[float, float]:
        """Map a data point to pixel coordinates (SVG's y axis points down)."""
        usable_width = self.width - 2 * self.margin
        usable_height = self.height - 2 * self.margin
        px = self.margin + (x - self.x_min) / (self.x_max - self.x_min) * usable_width
        py = self.height - self.margin - (y - self.y_min) / (self.y_max - self.y_min) * usable_height
        return px, py

    def scale(self) -> float:
        """Pixels per data unit (the smaller of the two axes' scales)."""
        usable_width = self.width - 2 * self.margin
        usable_height = self.height - 2 * self.margin
        return min(usable_width / (self.x_max - self.x_min), usable_height / (self.y_max - self.y_min))


@dataclass
class SvgCanvas:
    """Accumulates SVG elements and serialises them to a document."""

    viewport: Viewport
    background: str = "#ffffff"
    _elements: list[str] = field(default_factory=list)

    # -- primitives -----------------------------------------------------------
    def polyline(
        self, points: list[tuple[float, float]], color: str = "#1f77b4", width: float = 1.5
    ) -> None:
        """A polyline through data-coordinate points."""
        if len(points) < 2:
            raise InvalidParameterError("a polyline needs at least two points")
        pixel_points = " ".join(
            f"{px:.2f},{py:.2f}" for px, py in (self.viewport.to_pixels(x, y) for x, y in points)
        )
        self._elements.append(
            f'<polyline points="{pixel_points}" fill="none" stroke="{color}" '
            f'stroke-width="{width}" stroke-linejoin="round" stroke-linecap="round"/>'
        )

    def circle(
        self,
        center: tuple[float, float],
        radius: float,
        color: str = "#d62728",
        fill: str = "none",
        width: float = 1.5,
    ) -> None:
        """A circle given in data coordinates (radius in data units)."""
        px, py = self.viewport.to_pixels(*center)
        pixel_radius = radius * self.viewport.scale()
        self._elements.append(
            f'<circle cx="{px:.2f}" cy="{py:.2f}" r="{pixel_radius:.2f}" '
            f'fill="{fill}" stroke="{color}" stroke-width="{width}"/>'
        )

    def marker(self, point: tuple[float, float], color: str = "#2ca02c", size: float = 4.0) -> None:
        """A filled dot at a data point (size in pixels)."""
        px, py = self.viewport.to_pixels(*point)
        self._elements.append(f'<circle cx="{px:.2f}" cy="{py:.2f}" r="{size:.2f}" fill="{color}"/>')

    def rectangle(
        self,
        lower_left: tuple[float, float],
        upper_right: tuple[float, float],
        color: str = "#9467bd",
        fill: str = "#9467bd",
        opacity: float = 0.35,
    ) -> None:
        """An axis-aligned rectangle in data coordinates."""
        x0, y0 = self.viewport.to_pixels(*lower_left)
        x1, y1 = self.viewport.to_pixels(*upper_right)
        left, top = min(x0, x1), min(y0, y1)
        width, height = abs(x1 - x0), abs(y1 - y0)
        self._elements.append(
            f'<rect x="{left:.2f}" y="{top:.2f}" width="{width:.2f}" height="{height:.2f}" '
            f'fill="{fill}" fill-opacity="{opacity}" stroke="{color}" stroke-width="1"/>'
        )

    def line(
        self,
        start: tuple[float, float],
        end: tuple[float, float],
        color: str = "#7f7f7f",
        width: float = 1.0,
        dashed: bool = False,
    ) -> None:
        """A straight line segment in data coordinates."""
        x0, y0 = self.viewport.to_pixels(*start)
        x1, y1 = self.viewport.to_pixels(*end)
        dash = ' stroke-dasharray="6,4"' if dashed else ""
        self._elements.append(
            f'<line x1="{x0:.2f}" y1="{y0:.2f}" x2="{x1:.2f}" y2="{y1:.2f}" '
            f'stroke="{color}" stroke-width="{width}"{dash}/>'
        )

    def text(
        self, point: tuple[float, float], content: str, color: str = "#000000", size: float = 12.0
    ) -> None:
        """A text label anchored at a data point."""
        px, py = self.viewport.to_pixels(*point)
        self._elements.append(
            f'<text x="{px:.2f}" y="{py:.2f}" font-size="{size:.1f}" '
            f'font-family="sans-serif" fill="{color}">{html.escape(content)}</text>'
        )

    # -- output -----------------------------------------------------------------
    def to_svg(self) -> str:
        """Serialise the document."""
        header = (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.viewport.width:.0f}" '
            f'height="{self.viewport.height:.0f}" viewBox="0 0 {self.viewport.width:.0f} '
            f'{self.viewport.height:.0f}">'
        )
        background = (
            f'<rect x="0" y="0" width="{self.viewport.width:.0f}" '
            f'height="{self.viewport.height:.0f}" fill="{self.background}"/>'
        )
        return "\n".join([header, background, *self._elements, "</svg>"])

    def write(self, path: Path | str) -> Path:
        """Write the document to ``path`` and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_svg(), encoding="utf-8")
        return path
