"""Exception hierarchy for the :mod:`repro` package.

Every error raised on purpose by the library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while still letting programming errors (``TypeError``,
``AttributeError`` ...) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the :mod:`repro` library."""


class InvalidParameterError(ReproError, ValueError):
    """A parameter is outside the domain accepted by the paper's model.

    Examples: a non-positive speed, a non-positive visibility radius, a
    chirality different from ``+1``/``-1``.
    """


class TrajectoryError(ReproError):
    """A trajectory was queried or constructed inconsistently."""


class TimeOutOfRangeError(TrajectoryError):
    """A finite trajectory was evaluated outside its time domain."""


class SimulationError(ReproError):
    """The simulation engine could not complete a run."""


class HorizonExceededError(SimulationError):
    """A simulation reached its time horizon before the sought event.

    For *feasible* configurations this usually means the horizon was too
    small.  For *infeasible* configurations this is the expected outcome:
    the paper proves no algorithm can force the event, so the simulator
    gives up at the horizon and reports why.
    """

    def __init__(self, horizon: float, message: str | None = None) -> None:
        self.horizon = float(horizon)
        super().__init__(
            message
            or f"simulation horizon {self.horizon!r} reached before the event occurred"
        )


class InfeasibleConfigurationError(ReproError):
    """A rendezvous was requested for a provably infeasible configuration."""


class ExperimentError(ReproError):
    """An experiment could not be configured or executed."""


class BatchExecutionError(ReproError):
    """One or more specs in a batch failed to solve.

    Raised by ``BatchRunner.run`` *after* the whole batch has been
    driven to completion: every spec that solved is already recorded in
    the LRU (and flushed to the persistent store when one is
    configured), so a retry of the same batch only re-attempts the
    failed specs.  ``failures`` lists each failing spec's
    ``(backend, spec_hash)`` key with the error type and message;
    ``completed`` maps the keys that solved to their results.
    """

    def __init__(self, failures, completed=None) -> None:
        self.failures = list(failures)
        self.completed = dict(completed or {})
        summary = "; ".join(failure.describe() for failure in self.failures[:5])
        if len(self.failures) > 5:
            summary += f"; ... ({len(self.failures) - 5} more)"
        super().__init__(
            f"{len(self.failures)} spec(s) failed to solve "
            f"({len(self.completed)} completed and retained): {summary}"
        )


class ServiceUnavailableError(ReproError):
    """The solver service refused a request (draining or at capacity)."""


class ServiceProtocolError(ReproError):
    """The serving wire broke mid-conversation (timeout, EOF, bad frame).

    Raised by :class:`~repro.service.client.ServiceClient`: once a read
    times out or the stream desyncs, request and response framing can no
    longer be matched up, so the client closes the connection *before*
    raising -- a broken connection must never be reused.
    """


class ClusterError(ReproError):
    """A sharded-cluster operation failed (spawn, routing, supervision)."""
