"""Exception hierarchy for the :mod:`repro` package.

Every error raised on purpose by the library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while still letting programming errors (``TypeError``,
``AttributeError`` ...) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the :mod:`repro` library."""


class InvalidParameterError(ReproError, ValueError):
    """A parameter is outside the domain accepted by the paper's model.

    Examples: a non-positive speed, a non-positive visibility radius, a
    chirality different from ``+1``/``-1``.
    """


class TrajectoryError(ReproError):
    """A trajectory was queried or constructed inconsistently."""


class TimeOutOfRangeError(TrajectoryError):
    """A finite trajectory was evaluated outside its time domain."""


class SimulationError(ReproError):
    """The simulation engine could not complete a run."""


class HorizonExceededError(SimulationError):
    """A simulation reached its time horizon before the sought event.

    For *feasible* configurations this usually means the horizon was too
    small.  For *infeasible* configurations this is the expected outcome:
    the paper proves no algorithm can force the event, so the simulator
    gives up at the horizon and reports why.
    """

    def __init__(self, horizon: float, message: str | None = None) -> None:
        self.horizon = float(horizon)
        super().__init__(
            message
            or f"simulation horizon {self.horizon!r} reached before the event occurred"
        )


class InfeasibleConfigurationError(ReproError):
    """A rendezvous was requested for a provably infeasible configuration."""


class ExperimentError(ReproError):
    """An experiment could not be configured or executed."""
