"""The rendezvous-to-search reduction (Lemma 4, Lemma 5, Definition 1).

With equal clocks, both robots running the reference trajectory ``S(t)``
produce the relative motion ``S_circ(t) = T_circ S(t)``; rendezvous is
equivalent to this *equivalent search trajectory* approaching the static
point ``d`` within ``r``.  The :class:`RendezvousReduction` class bundles
the matrices of Lemmas 4-5 and the effective search parameters used by
Theorem 2, and can also evaluate the equivalent trajectory pointwise so
tests can verify the reduction against the raw two-robot simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidParameterError
from ..geometry import LinearMap2, Vec2, attribute_matrix, mu_factor, qr_factor_relative, relative_matrix
from ..motion import EquivalentSearchTrajectory, LazyTrajectory, Trajectory
from ..robots import RobotAttributes

__all__ = ["RendezvousReduction"]


@dataclass(frozen=True)
class RendezvousReduction:
    """Matrices and effective parameters of the Section 3 reduction."""

    attributes: RobotAttributes

    def __post_init__(self) -> None:
        if self.attributes.differs_in_clock():
            raise InvalidParameterError(
                "the Section 3 reduction assumes equal time units (tau = 1); "
                "use the Section 4 schedule analysis for asymmetric clocks"
            )

    # -- matrices -----------------------------------------------------------------
    @property
    def attribute_map(self) -> LinearMap2:
        """Lemma 4's matrix ``T`` with ``S'(t) = T S(t)``."""
        return attribute_matrix(
            self.attributes.speed, self.attributes.orientation, self.attributes.chirality
        )

    @property
    def relative_map(self) -> LinearMap2:
        """Definition 1's matrix ``T_circ = I - T``."""
        return relative_matrix(
            self.attributes.speed, self.attributes.orientation, self.attributes.chirality
        )

    @property
    def mu(self) -> float:
        """Lemma 5's scale factor ``mu = sqrt(v^2 - 2 v cos(phi) + 1)``."""
        return mu_factor(self.attributes.speed, self.attributes.orientation)

    def qr_factors(self) -> tuple[LinearMap2, LinearMap2]:
        """Lemma 5's factorisation ``T_circ = Phi T'_circ``."""
        return qr_factor_relative(
            self.attributes.speed, self.attributes.orientation, self.attributes.chirality
        )

    # -- equivalent search trajectory -------------------------------------------------
    def equivalent_trajectory(
        self, reference: Trajectory | LazyTrajectory
    ) -> EquivalentSearchTrajectory:
        """The equivalent search trajectory ``T_circ S(t)``."""
        return EquivalentSearchTrajectory(reference, self.relative_map)

    def relative_position(self, reference_position: Vec2) -> Vec2:
        """Value of ``S(t) - S'(t)`` given the reference robot's ``S(t)``."""
        return self.relative_map.apply(reference_position)

    # -- effective search parameters ---------------------------------------------------
    def bearing_scale(self, separation: Vec2) -> float:
        """``|T_circ^T d_hat|`` -- how much the bearing ``d_hat`` is compressed.

        Lemma 7's change of variables shows that rendezvous along the
        bearing ``d_hat`` is a search problem with ``d`` and ``r`` both
        divided by ``|T_circ^T d_hat|``.
        """
        if separation.norm() == 0.0:
            raise InvalidParameterError("the separation vector must be non-zero")
        unit = separation.normalized()
        return self.relative_map.transpose().apply(unit).norm()

    def effective_parameters(self, separation: Vec2, visibility: float) -> tuple[float, float]:
        """Effective ``(d, r)`` of the induced search problem for this bearing."""
        if visibility <= 0.0:
            raise InvalidParameterError(f"visibility must be positive, got {visibility!r}")
        scale = self.bearing_scale(separation)
        if scale <= 1e-12:
            raise InvalidParameterError(
                "the bearing scale is zero: this separation direction is adversarial and the "
                "induced search problem is unsolvable (infeasible configuration)"
            )
        return separation.norm() / scale, visibility / scale

    def worst_case_scale(self) -> float:
        """The bearing scale minimised over all bearings.

        This is the smallest singular value of ``T_circ``.  For equal
        chiralities it equals ``mu`` (every bearing is equivalent); for
        opposite chiralities it is at most ``(1 - v^2) / mu`` and it
        vanishes exactly when ``v = 1`` (the infeasible mirrored case,
        where an adversarial bearing exists).  Theorem 2's closed form
        uses the coarser worst case ``1 - v`` obtained after also taking
        the worst orientation.
        """
        return self.relative_map.transpose().smallest_singular_value()
