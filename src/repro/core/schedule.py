"""The round/phase schedule of Algorithm 7 (Lemma 8, Figures 1-2).

Algorithm 7 alternates inactive and active phases whose lengths double-ish
every round.  Lemma 8 gives the closed forms (in the robot's *local* time):

* ``S(n) = 12(pi+1) n 2^n``      -- duration of ``SearchAll(n)``,
* ``I(n) = 24(pi+1)[(2n-4) 2^n + 4]`` -- start of the ``n``-th inactive phase,
* ``A(n) = 24(pi+1)[(3n-4) 2^n + 4]`` -- start of the ``n``-th active phase.

A robot with time unit ``tau`` lives through the same schedule dilated by
``tau`` in global time.  The :class:`RoundSchedule` class materialises the
interval structure (reproducing Figures 1 and 2) and computes overlaps
between two robots' schedules (the raw material of Figure 3 and of
Lemmas 9-10, handled in :mod:`repro.core.overlap`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from ..constants import PHASE_FACTOR, SEARCH_ALL_FACTOR, SEARCH_ROUND_FACTOR
from ..errors import InvalidParameterError

__all__ = [
    "search_all_time",
    "inactive_phase_start",
    "active_phase_start",
    "round_duration",
    "universal_search_prefix_duration",
    "PhaseInterval",
    "RoundSchedule",
]


def _check_round(n: int) -> None:
    if not isinstance(n, int) or n < 1:
        raise InvalidParameterError(f"the round index must be a positive integer, got {n!r}")


def _finite_time(value: float, n: int) -> float:
    """Guard a schedule time against leaving float64 range.

    Raises ``OverflowError`` uniformly (bare ``2^n`` raises on its own
    from n=1024, but the *products* overflow silently to ``inf`` from
    n~1007): the schedule formulas are used in *differences* (phase
    durations, overlap windows), where a saturated ``inf`` would
    silently turn into ``inf - inf = nan``.  The one consumer that must
    stay total for astronomically large rounds --
    :func:`repro.core.rounds.theorem3_time_bound` -- catches the
    overflow and saturates at its own boundary instead.
    """
    if not math.isfinite(value):
        raise OverflowError(f"schedule time for round {n} exceeds float64 range")
    return value


def search_all_time(n: int) -> float:
    """``S(n) = 12(pi+1) n 2^n`` -- duration of ``SearchAll(n)`` (equation (1)).

    Raises ``OverflowError`` beyond float64 range (see :func:`_finite_time`).
    """
    _check_round(n)
    return _finite_time(SEARCH_ALL_FACTOR * n * 2.0**n, n)


def universal_search_prefix_duration(k: int) -> float:
    """Duration ``3(pi+1) k 2^{k+2}`` of the first ``k`` rounds of Algorithm 4 (Lemma 2).

    This equals ``S(k)`` -- running rounds ``1..k`` of Algorithm 4 is the
    same walk as ``SearchAll(k)``.
    """
    _check_round(k)
    return _finite_time(SEARCH_ROUND_FACTOR * k * 2.0 ** (k + 2), k)


def inactive_phase_start(n: int) -> float:
    """``I(n) = 24(pi+1)[(2n-4) 2^n + 4]`` -- start of round ``n``'s inactive phase (Lemma 8).

    Raises ``OverflowError`` beyond float64 range (see :func:`_finite_time`).
    """
    _check_round(n)
    return _finite_time(PHASE_FACTOR * ((2 * n - 4) * 2.0**n + 4), n)


def active_phase_start(n: int) -> float:
    """``A(n) = 24(pi+1)[(3n-4) 2^n + 4]`` -- start of round ``n``'s active phase (Lemma 8)."""
    _check_round(n)
    return _finite_time(PHASE_FACTOR * ((3 * n - 4) * 2.0**n + 4), n)


def round_duration(n: int) -> float:
    """Duration ``4 S(n)`` of round ``n`` of Algorithm 7."""
    return 4.0 * search_all_time(n)


@dataclass(frozen=True, slots=True)
class PhaseInterval:
    """One phase of one round of Algorithm 7, in global time."""

    round_index: int
    kind: str  # "inactive" or "active"
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Length of the phase."""
        return self.end - self.start

    def overlap_with(self, other: "PhaseInterval") -> float:
        """Length of the time overlap with another phase interval."""
        return max(0.0, min(self.end, other.end) - max(self.start, other.start))

    def intersection(self, other: "PhaseInterval") -> tuple[float, float] | None:
        """The overlapping time window, or None when disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        return (lo, hi) if hi > lo else None


class RoundSchedule:
    """The phase intervals of one robot running Algorithm 7.

    Args:
        time_unit: the robot's clock unit ``tau``; all local phase
            boundaries are multiplied by it to obtain global times.
    """

    def __init__(self, time_unit: float = 1.0) -> None:
        if time_unit <= 0.0:
            raise InvalidParameterError(f"time_unit must be positive, got {time_unit!r}")
        self.time_unit = float(time_unit)

    # -- phase boundaries in global time ------------------------------------------
    def inactive_start(self, n: int) -> float:
        """Global start time of round ``n``'s inactive phase."""
        return self.time_unit * inactive_phase_start(n)

    def active_start(self, n: int) -> float:
        """Global start time of round ``n``'s active phase."""
        return self.time_unit * active_phase_start(n)

    def round_end(self, n: int) -> float:
        """Global end time of round ``n`` (= start of round ``n+1``'s inactive phase)."""
        return self.time_unit * inactive_phase_start(n + 1)

    def inactive_phase(self, n: int) -> PhaseInterval:
        """The inactive phase of round ``n``."""
        return PhaseInterval(
            round_index=n, kind="inactive", start=self.inactive_start(n), end=self.active_start(n)
        )

    def active_phase(self, n: int) -> PhaseInterval:
        """The active phase of round ``n``."""
        return PhaseInterval(
            round_index=n, kind="active", start=self.active_start(n), end=self.round_end(n)
        )

    def phases(self, rounds: int) -> Iterator[PhaseInterval]:
        """All phases of the first ``rounds`` rounds, in time order."""
        _check_round(rounds)
        for n in range(1, rounds + 1):
            yield self.inactive_phase(n)
            yield self.active_phase(n)

    # -- the structure of one active phase (Figure 2) ---------------------------------
    def active_phase_breakdown(self, n: int) -> list[tuple[str, float, float]]:
        """Sub-intervals of round ``n``'s active phase.

        The active phase runs ``SearchAll(n)`` (rounds ``Search(1)`` ..
        ``Search(n)``) and then ``SearchAllRev(n)`` (rounds ``Search(n)`` ..
        ``Search(1)``); the breakdown lists each ``Search(k)`` with its
        global start and end times, reproducing Figure 2.
        """
        _check_round(n)
        breakdown: list[tuple[str, float, float]] = []
        cursor = self.active_start(n)
        for k in list(range(1, n + 1)) + list(range(n, 0, -1)):
            duration = self.time_unit * SEARCH_ROUND_FACTOR * (k + 1) * 2.0 ** (k + 1)
            breakdown.append((f"Search({k})", cursor, cursor + duration))
            cursor += duration
        return breakdown

    def describe(self, rounds: int) -> str:
        """Multi-line text rendering of the schedule (used by the CLI)."""
        lines = [f"schedule with time unit tau = {self.time_unit:g}"]
        for phase in self.phases(rounds):
            lines.append(
                f"  round {phase.round_index:2d} {phase.kind:8s} "
                f"[{phase.start:14.4f}, {phase.end:14.4f}]  (length {phase.duration:14.4f})"
            )
        return "\n".join(lines)
