"""Rendezvous round bounds for asymmetric clocks (Lemmas 11-13, Theorem 3).

The asymmetric-clock analysis parameterises the clock ratio as
``tau = t * 2^{-a}`` with an integer ``a >= 0`` and a real ``t in [1/2, 1)``
(Lemma 13).  Depending on where ``t`` falls, either Lemma 11 (via Lemma 9)
or Lemma 12 (via Lemma 10) supplies the round ``k*`` of Algorithm 7 by
which the robots must have met, given the round ``n`` by which a
stationary partner would have been found.  Theorem 3 then converts the
round bound into a (finite) time bound.

All formulas below are literal transcriptions; ``log`` is base 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import InvalidParameterError
from .bounds import guaranteed_discovery_round
from .lambertw import lambert_w
from .schedule import inactive_phase_start, search_all_time

__all__ = [
    "TauDecomposition",
    "decompose_tau",
    "lemma11_round_bound",
    "lemma12_round_bound",
    "lemma13_round_bound",
    "theorem3_time_bound",
    "normalize_clock_ratio",
]


@dataclass(frozen=True, slots=True)
class TauDecomposition:
    """The parameterisation ``tau = t * 2^{-a}`` of Lemma 13."""

    t: float
    a: int

    @property
    def tau(self) -> float:
        """The reconstructed clock ratio."""
        return self.t * 2.0 ** (-self.a)


def decompose_tau(tau: float) -> TauDecomposition:
    """Write ``tau < 1`` uniquely as ``t * 2^{-a}`` with ``t in [1/2, 1)``.

    Lemma 13's recipe: ``a = floor(-log2(tau)) - 1`` and ``t = 1/2`` when
    ``tau`` is a power of two, otherwise ``a = floor(-log2(tau))`` and
    ``t = tau * 2^a``.
    """
    if not (0.0 < tau < 1.0):
        raise InvalidParameterError(f"the decomposition needs 0 < tau < 1, got {tau!r}")
    log_tau = -math.log2(tau)
    floor_log = math.floor(log_tau)
    if math.isclose(log_tau, round(log_tau), rel_tol=0.0, abs_tol=1e-12):
        # tau is a power of two.
        a = int(round(log_tau)) - 1
        t = 0.5
    else:
        a = int(floor_log)
        t = tau * 2.0**a
    if not (0.5 <= t < 1.0 + 1e-12):
        raise InvalidParameterError(f"decomposition failed for tau={tau!r}: t={t!r}, a={a!r}")
    return TauDecomposition(t=min(t, math.nextafter(1.0, 0.0)), a=max(a, 0))


def lemma11_round_bound(n: int, a: int) -> int:
    """Lemma 11: rendezvous by round ``n + ceil(log2(n / (a+1)))``."""
    _check_positive_round(n)
    if a < 0:
        raise InvalidParameterError(f"a must be non-negative, got {a!r}")
    return n + max(0, math.ceil(math.log2(n / (a + 1)))) if n > (a + 1) else n


def lemma12_round_bound(n: int, a: int, k0: int) -> int:
    """Lemma 12: rendezvous by round ``n + ceil(log2(n) + log2(1 + k0/(a+1)))``."""
    _check_positive_round(n)
    if a < 0:
        raise InvalidParameterError(f"a must be non-negative, got {a!r}")
    if k0 < 1:
        raise InvalidParameterError(f"k0 must be positive, got {k0!r}")
    return n + math.ceil(math.log2(n) + math.log2(1.0 + k0 / (a + 1.0)))


def lemma13_round_bound(tau: float, n: int) -> int:
    """Lemma 13: the round ``k*`` by which the robots rendezvous.

    Args:
        tau: the clock ratio (must satisfy ``0 < tau < 1``).
        n: the round of Algorithm 7 by which a robot would find a
            *stationary* partner (Lemma 1 / :func:`guaranteed_discovery_round`).
    """
    _check_positive_round(n)
    decomposition = decompose_tau(tau)
    t, a = decomposition.t, decomposition.a
    if t <= 2.0 / 3.0:
        first = 8 * (a + 1)
        second = n + max(0, math.ceil(math.log2(n / (a + 1)))) if n > 0 else n
        return max(first, second)
    first = math.ceil((a + 1) * t / (1.0 - t))
    second = n + math.ceil(math.log2(n / (1.0 - t)))
    return max(first, second)


def theorem3_time_bound(distance: float, visibility: float, tau: float) -> float:
    """Theorem 3 / Lemma 14: a finite rendezvous-time bound for ``tau < 1``.

    The robots rendezvous by the end of round ``k*`` of Algorithm 7, so the
    rendezvous time is below the time needed to complete ``k*`` full rounds,
    ``I(k* + 1)`` in the notation of Lemma 8 (the paper states the bound
    through the same quantity).

    The bound is always mathematically finite, but when ``tau``'s Lemma 13
    decomposition has ``t`` very close to 1, ``k*`` grows like
    ``(a+1) t/(1-t)`` and ``I(k*+1) ~ 2^{k*}`` exceeds float64 range; the
    returned value then saturates to ``math.inf`` (the schedule formulas
    themselves stay loud -- see
    :func:`~repro.core.schedule.inactive_phase_start` -- because they are
    used in differences where ``inf`` would decay to ``nan``; a time
    *bound* has no such consumer, and ``inf`` is the honest order-preserving
    answer).
    """
    if not (0.0 < tau < 1.0):
        raise InvalidParameterError(f"Theorem 3 is stated for 0 < tau < 1, got {tau!r}")
    n = guaranteed_discovery_round(distance, visibility)
    k_star = lemma13_round_bound(tau, n)
    try:
        return inactive_phase_start(k_star + 1)
    except OverflowError:
        return math.inf


def normalize_clock_ratio(time_unit: float) -> tuple[float, float]:
    """Reduce an arbitrary clock ratio to the ``tau < 1`` normal form.

    The paper assumes WLOG that the *other* robot's clock is the slow one
    (``tau < 1``).  When the instance has ``tau > 1`` the roles of the two
    robots can be exchanged: the pair ``(speed, tau)`` seen from R' is
    ``(1/speed, 1/tau)``, and a duration of ``x`` local units of R'
    corresponds to ``tau * x`` global units.

    Returns:
        ``(normalized_tau, global_time_scale)`` -- the normal-form clock
        ratio and the factor converting a bound computed in the slow
        robot's local time into global time.
    """
    if time_unit <= 0.0:
        raise InvalidParameterError(f"time_unit must be positive, got {time_unit!r}")
    if time_unit < 1.0:
        return time_unit, 1.0
    if time_unit == 1.0:
        raise InvalidParameterError("equal clocks have no asymmetric normal form")
    return 1.0 / time_unit, time_unit


def lemma12_round_bound_exact(n: int, a: int, k0: int) -> float:
    """The pre-simplification Lemma 12 bound, through the Lambert W function.

    Lemma 12's proof first derives ``k* = 2 + ceil(a gamma / (1 - gamma) +
    W(y) / ln 2)`` with ``gamma = k0 / (k0 + 1 + a)`` and ``y = ln(2) n /
    (4 (1-gamma)) * 2^n * 2^{-((a-2) gamma + 2) / (1-gamma)}``, before
    replacing ``W`` by its asymptotic estimate.  The exact version is
    exposed for the E09 experiment, which compares both against the
    simulated rendezvous round.
    """
    _check_positive_round(n)
    if a < 0 or k0 < 1:
        raise InvalidParameterError("a must be >= 0 and k0 >= 1")
    gamma = k0 / (k0 + 1.0 + a)
    exponent = -((a - 2.0) * gamma + 2.0) / (1.0 - gamma)
    argument = math.log(2.0) * n / (4.0 * (1.0 - gamma)) * (2.0**n) * (2.0**exponent)
    w_value = lambert_w(argument)
    return 2.0 + math.ceil(a * gamma / (1.0 - gamma) + w_value / math.log(2.0))


def _check_positive_round(n: int) -> None:
    if not isinstance(n, int) or n < 1:
        raise InvalidParameterError(f"the round index must be a positive integer, got {n!r}")


__all__.append("lemma12_round_bound_exact")
