"""Core theory layer: feasibility, closed-form bounds, schedules, solve API."""

from .bounds import (
    guaranteed_discovery_round,
    lemma3_difficulty_lower_bound,
    search_annulus_duration,
    search_circle_duration,
    search_round_duration,
    theorem1_search_bound,
    theorem2_effective_parameters,
    theorem2_rendezvous_bound,
)
from .feasibility import (
    FeasibilityVerdict,
    adversarial_separation_direction,
    classify_feasibility,
    is_feasible,
)
from .lambertw import lambert_w, lambert_w_upper_bound
from .overlap import (
    OverlapWindow,
    lemma9_applies,
    lemma9_overlap_amount,
    lemma9_tau_window,
    lemma10_applies,
    lemma10_overlap_amount,
    lemma10_tau_window,
    measured_overlap,
)
from .reduction import RendezvousReduction
from .rendezvous import RendezvousReport, rendezvous_time_bound, solve_rendezvous
from .rounds import (
    TauDecomposition,
    decompose_tau,
    lemma11_round_bound,
    lemma12_round_bound,
    lemma12_round_bound_exact,
    lemma13_round_bound,
    normalize_clock_ratio,
    theorem3_time_bound,
)
from .schedule import (
    PhaseInterval,
    RoundSchedule,
    active_phase_start,
    inactive_phase_start,
    round_duration,
    search_all_time,
    universal_search_prefix_duration,
)
from .search import SearchReport, solve_search

__all__ = [
    "guaranteed_discovery_round",
    "lemma3_difficulty_lower_bound",
    "search_annulus_duration",
    "search_circle_duration",
    "search_round_duration",
    "theorem1_search_bound",
    "theorem2_effective_parameters",
    "theorem2_rendezvous_bound",
    "FeasibilityVerdict",
    "adversarial_separation_direction",
    "classify_feasibility",
    "is_feasible",
    "lambert_w",
    "lambert_w_upper_bound",
    "OverlapWindow",
    "lemma9_applies",
    "lemma9_overlap_amount",
    "lemma9_tau_window",
    "lemma10_applies",
    "lemma10_overlap_amount",
    "lemma10_tau_window",
    "measured_overlap",
    "RendezvousReduction",
    "RendezvousReport",
    "rendezvous_time_bound",
    "solve_rendezvous",
    "TauDecomposition",
    "decompose_tau",
    "lemma11_round_bound",
    "lemma12_round_bound",
    "lemma12_round_bound_exact",
    "lemma13_round_bound",
    "normalize_clock_ratio",
    "theorem3_time_bound",
    "PhaseInterval",
    "RoundSchedule",
    "active_phase_start",
    "inactive_phase_start",
    "round_duration",
    "search_all_time",
    "universal_search_prefix_duration",
    "SearchReport",
    "solve_search",
]
