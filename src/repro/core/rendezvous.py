"""Engine-level rendezvous entry point.

New code should prefer the :mod:`repro.api` facade
(``solve(RendezvousProblem(...))``), which wraps this function behind the
serializable spec/result envelope and the backend registry; this module
remains as the engine the simulation backend calls and as a stable
compatibility shim for existing imports.

``solve_rendezvous`` is the engine entry point of the library: it applies
the Theorem 4 feasibility test, picks the right algorithm for the instance
(Algorithm 4 when the clocks agree, the universal Algorithm 7 otherwise --
or always Algorithm 7 if asked to be fully attribute-oblivious), derives a
horizon from the matching theorem, runs the continuous-time simulation of
both robots and reports measured time against the paper's bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..algorithms import MobilityAlgorithm, UniversalSearch, WaitAndSearchRendezvous
from ..errors import HorizonExceededError, InfeasibleConfigurationError
from ..simulation import (
    HorizonPolicy,
    RendezvousInstance,
    SimulationOutcome,
    bound_multiple_horizon,
    simulate_rendezvous,
)
from .bounds import theorem2_rendezvous_bound
from .feasibility import FeasibilityVerdict, classify_feasibility
from .rounds import normalize_clock_ratio, theorem3_time_bound

__all__ = ["RendezvousReport", "rendezvous_time_bound", "solve_rendezvous"]


@dataclass(frozen=True, slots=True)
class RendezvousReport:
    """Everything measured and predicted about one rendezvous run."""

    instance: RendezvousInstance
    verdict: FeasibilityVerdict
    algorithm_name: str
    outcome: SimulationOutcome
    bound: Optional[float]

    @property
    def solved(self) -> bool:
        """True when the robots met before the horizon."""
        return self.outcome.solved

    @property
    def time(self) -> float:
        """Measured rendezvous time."""
        return self.outcome.time

    @property
    def bound_ratio(self) -> Optional[float]:
        """Measured time divided by the analytic bound (None when no bound applies)."""
        if self.bound is None or not self.solved:
            return None
        return self.time / self.bound

    def summary(self) -> str:
        """One-paragraph human readable summary."""
        lines = [self.instance.describe(), self.verdict.describe(), f"algorithm: {self.algorithm_name}"]
        if self.solved:
            bound_text = f"{self.bound:.6g}" if self.bound is not None else "n/a"
            ratio_text = f"{self.bound_ratio:.3f}" if self.bound_ratio is not None else "n/a"
            lines.append(
                f"measured time: {self.time:.6g}  |  bound: {bound_text}  (ratio {ratio_text})"
            )
        else:
            lines.append(self.outcome.describe())
        return "\n".join(lines)


def rendezvous_time_bound(instance: RendezvousInstance) -> Optional[float]:
    """The paper's rendezvous-time bound for a feasible instance.

    * equal clocks  -> Theorem 2 (through ``mu`` or ``1 - v``),
    * different clocks -> Theorem 3 (converted to global time when the
      other robot's clock is the fast one),
    * infeasible    -> None,
    * asymmetric clocks whose Theorem 3 time saturates past float64
      range (Lemma 13's ``k*`` explodes as ``t -> 1``) -> None: no
      *finite* bound is representable, and ``None`` keeps the JSON wire
      format RFC-clean (``inf`` would serialise as the non-standard
      ``Infinity`` token).

    The Theorem 2 ``chi = -1`` closed form is stated for ``v < 1``; for a
    mirrored instance with ``v > 1`` the bound is computed from the other
    robot's viewpoint and converted back to global time.
    """
    attributes = instance.attributes.normalized()
    verdict = classify_feasibility(attributes)
    if not verdict.feasible:
        return None
    if not attributes.differs_in_clock():
        if attributes.chirality == 1 or attributes.speed < 1.0:
            return theorem2_rendezvous_bound(
                instance.distance,
                instance.visibility,
                attributes.speed,
                attributes.orientation,
                attributes.chirality,
            )
        # chi = -1 with v > 1: exchange the roles of the robots.  In R''s
        # units the partner has speed 1/v < 1, distances divide by v and
        # one local time unit equals 1/v global units (tau = 1), so a bound
        # of B in R''s frame is B / v global time units... except R' moves
        # v times faster, which exactly cancels: the global bound is the
        # swapped-frame bound evaluated on the rescaled instance.
        swapped = theorem2_rendezvous_bound(
            instance.distance / attributes.speed,
            instance.visibility / attributes.speed,
            1.0 / attributes.speed,
            attributes.orientation,
            attributes.chirality,
        )
        return swapped * attributes.speed
    # Asymmetric clocks: Theorem 3, stated for tau < 1.
    tau, scale = (
        (attributes.time_unit, 1.0)
        if attributes.time_unit < 1.0
        else normalize_clock_ratio(attributes.time_unit)
    )
    # When tau > 1 the slow robot is R; the schedule bound is expressed in
    # the slow robot's local time, which for the swapped view must be
    # converted back with the returned scale.  Distances are world-frame
    # either way; the discovery round is computed for the searching robot,
    # whose distance unit in the swapped view is the world unit divided by
    # the fast robot's distance unit.
    if attributes.time_unit < 1.0:
        bound = theorem3_time_bound(instance.distance, instance.visibility, tau)
    else:
        unit = attributes.speed * attributes.time_unit
        bound_local = theorem3_time_bound(
            instance.distance / unit, instance.visibility / unit, tau
        )
        bound = bound_local * attributes.time_unit
    return bound if math.isfinite(bound) else None


def solve_rendezvous(
    instance: RendezvousInstance,
    algorithm: Optional[MobilityAlgorithm] = None,
    horizon: Optional[HorizonPolicy | float] = None,
    safety_factor: float = 1.25,
    allow_infeasible: bool = False,
    simulate=simulate_rendezvous,
) -> RendezvousReport:
    """Solve a rendezvous instance and compare against the paper's bounds.

    Args:
        instance: the rendezvous instance.
        algorithm: mobility algorithm both robots run; the default picks
            Algorithm 4 for equal clocks and Algorithm 7 otherwise (the
            choice the paper's theorems analyse).
        horizon: optional explicit horizon; mandatory for infeasible
            instances (there is no bound to derive one from).
        safety_factor: slack applied to the bound-derived horizon.
        allow_infeasible: run anyway (up to ``horizon``) when the instance
            is provably infeasible, instead of raising.
        simulate: the simulation entry point to drive (the scalar engine
            by default; the vectorized backend passes
            :func:`repro.simulation.kernel.kernel_simulate_rendezvous`).

    Raises:
        InfeasibleConfigurationError: infeasible instance without
            ``allow_infeasible`` or without an explicit horizon.
        HorizonExceededError: feasible instance that did not meet within
            the derived horizon (indicates a too-small safety factor).
    """
    attributes = instance.attributes.normalized()
    verdict = classify_feasibility(attributes)
    bound = rendezvous_time_bound(instance)

    if not verdict.feasible:
        if not allow_infeasible:
            raise InfeasibleConfigurationError(verdict.describe())
        if horizon is None:
            raise InfeasibleConfigurationError(
                "an explicit horizon is required to simulate a provably infeasible instance"
            )

    if algorithm is None:
        if attributes.differs_in_clock() or not verdict.feasible:
            algorithm = WaitAndSearchRendezvous()
        else:
            algorithm = UniversalSearch()

    if horizon is None:
        if bound is None or not math.isfinite(bound):
            raise InfeasibleConfigurationError(
                "no finite analytic bound available to derive a horizon; pass one explicitly"
            )
        horizon = bound_multiple_horizon(bound, safety_factor)

    outcome = simulate(algorithm, instance, horizon)
    if verdict.feasible and not outcome.solved:
        raise HorizonExceededError(
            outcome.horizon,
            "a feasible instance did not rendezvous within the horizon "
            f"{outcome.horizon:g}; increase the safety factor "
            f"({algorithm.describe()}, {instance.describe()})",
        )
    return RendezvousReport(
        instance=instance,
        verdict=verdict,
        algorithm_name=algorithm.describe(),
        outcome=outcome,
        bound=bound,
    )
