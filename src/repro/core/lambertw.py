"""The Lambert W function (principal branch).

Lemma 12 of the paper expresses the rendezvous round through the solution
of ``z * exp(z) = y``, i.e. ``z = W(y)``.  The library carries its own
small implementation (Halley's iteration with the standard asymptotic
initial guess) so the closed-form round bounds do not depend on scipy
being importable, but the tests cross-check it against
``scipy.special.lambertw``.
"""

from __future__ import annotations

import math

from ..errors import InvalidParameterError

__all__ = ["lambert_w", "lambert_w_upper_bound"]


def lambert_w(value: float, tolerance: float = 1e-12, max_iterations: int = 64) -> float:
    """Principal branch ``W0`` of the Lambert W function for ``value >= 0``.

    Args:
        value: the argument ``y`` of ``W(y)``; only the non-negative domain
            is needed by the paper's formulas.
        tolerance: absolute convergence tolerance on ``w * exp(w) - value``.
        max_iterations: safety cap on the Halley iteration count.
    """
    if value < 0.0 or not math.isfinite(value):
        raise InvalidParameterError(
            f"lambert_w is implemented for finite non-negative arguments, got {value!r}"
        )
    if value == 0.0:
        return 0.0
    # Initial guess: for small arguments W(y) ~ y, for large arguments
    # W(y) ~ ln(y) - ln(ln(y)).
    if value < math.e:
        guess = value / math.e
    else:
        log_value = math.log(value)
        guess = log_value - math.log(max(log_value, 1e-300))
    w = max(guess, 1e-300)
    for _ in range(max_iterations):
        exp_w = math.exp(w)
        numerator = w * exp_w - value
        if abs(numerator) <= tolerance * max(1.0, abs(value)):
            return w
        denominator = exp_w * (w + 1.0) - (w + 2.0) * numerator / (2.0 * w + 2.0)
        step = numerator / denominator
        w -= step
        if w <= -1.0:
            # Stay on the principal branch.
            w = -1.0 + 1e-12
    return w


def lambert_w_upper_bound(value: float) -> float:
    """The asymptotic upper estimate ``ln(y) - ln(ln(y))`` used in Lemma 12.

    The paper replaces ``W(y)`` by its asymptotic behaviour
    ``ln(y) - ln(ln(y))`` (Hoorfar-Hassani) when simplifying the round
    bound; the helper exposes exactly that expression.  Only defined for
    ``y > e`` (below that the inner logarithm is not positive).
    """
    if value <= math.e:
        raise InvalidParameterError(
            f"the asymptotic estimate needs an argument larger than e, got {value!r}"
        )
    log_value = math.log(value)
    return log_value - math.log(log_value)
