"""Closed-form durations and time bounds (Lemmas 2-3, Theorems 1-2).

Every formula in this module is a direct transcription of an expression
proved in the paper.  The experiment harness compares these expressions
against measured trajectory durations (they must match exactly, up to
floating point) and against simulated search/rendezvous times (which must
stay below the bounds).

Logarithms are base 2 throughout, matching the paper's usage (all radii
and granularities are powers of two).
"""

from __future__ import annotations

import math

from ..constants import SEARCH_CIRCLE_FACTOR, SEARCH_ROUND_FACTOR, THEOREM1_FACTOR
from ..errors import InvalidParameterError
from ..geometry import mu_factor
from .schedule import universal_search_prefix_duration

__all__ = [
    "search_circle_duration",
    "search_annulus_duration",
    "search_round_duration",
    "guaranteed_discovery_round",
    "lemma3_difficulty_lower_bound",
    "theorem1_search_bound",
    "theorem2_rendezvous_bound",
    "theorem2_effective_parameters",
]


def search_circle_duration(delta: float) -> float:
    """Duration ``2(pi+1) delta`` of ``SearchCircle(delta)`` (Lemma 2)."""
    if delta <= 0.0:
        raise InvalidParameterError(f"delta must be positive, got {delta!r}")
    return SEARCH_CIRCLE_FACTOR * delta


def search_annulus_duration(delta1: float, delta2: float, rho: float) -> float:
    """Duration of ``SearchAnnulus(delta1, delta2, rho)`` (Lemma 2).

    With ``m = ceil((delta2 - delta1) / (2 rho))`` the duration is
    ``2(pi+1) (1 + m) (delta1 + rho m)``.
    """
    if delta1 < 0.0:
        raise InvalidParameterError(f"delta1 must be non-negative, got {delta1!r}")
    if delta2 <= delta1:
        raise InvalidParameterError(f"delta2 must exceed delta1, got {delta2!r} <= {delta1!r}")
    if rho <= 0.0:
        raise InvalidParameterError(f"rho must be positive, got {rho!r}")
    m = math.ceil((delta2 - delta1) / (2.0 * rho))
    return SEARCH_CIRCLE_FACTOR * (1 + m) * (delta1 + rho * m)


def search_round_duration(k: int) -> float:
    """Duration ``3(pi+1)(k+1) 2^{k+1}`` of ``Search(k)`` (Lemma 2)."""
    if not isinstance(k, int) or k < 1:
        raise InvalidParameterError(f"k must be a positive integer, got {k!r}")
    return SEARCH_ROUND_FACTOR * (k + 1) * 2.0 ** (k + 1)


def guaranteed_discovery_round(distance: float, visibility: float, max_round: int = 64) -> int:
    """Smallest round ``k`` by which Algorithm 4 is guaranteed to find the target.

    Lemma 1: the target (at distance ``d`` with visibility ``r``) is found
    by the end of the first round ``k`` for which some sub-round
    ``j in [0, 2k-1]`` has outer radius ``2^{-k+j+1} >= d`` and granularity
    ``2^{-3k+2j-1} <= r``.  The function returns the smallest such ``k``.
    """
    if distance <= 0.0:
        raise InvalidParameterError(f"distance must be positive, got {distance!r}")
    if visibility <= 0.0:
        raise InvalidParameterError(f"visibility must be positive, got {visibility!r}")
    for k in range(1, max_round + 1):
        for j in range(2 * k):
            outer = 2.0 ** (-k + j + 1)
            granularity = 2.0 ** (-3 * k + 2 * j - 1)
            if outer >= distance and granularity <= visibility:
                return k
    raise InvalidParameterError(
        f"no discovery round below {max_round} for d={distance!r}, r={visibility!r}"
    )


def lemma3_difficulty_lower_bound(k: int) -> float:
    """Lemma 3: if the target is found in round ``k`` then ``d^2/r >= 2^{k+1}``."""
    if not isinstance(k, int) or k < 1:
        raise InvalidParameterError(f"k must be a positive integer, got {k!r}")
    return 2.0 ** (k + 1)


def theorem1_search_bound(distance: float, visibility: float) -> float:
    """Theorem 1: the search time of Algorithm 4 is below ``6(pi+1) log2(d^2/r) d^2/r``.

    The literal formula is meaningful when ``d^2/r >= 4`` (discovery cannot
    happen before round 1, and Lemma 3 then gives ``d^2/r >= 4``).  For
    easier instances the guaranteed-completion time of the first round,
    ``3(pi+1) * 2^3``, is returned instead, which is the tight version of
    the same argument.
    """
    if distance <= 0.0:
        raise InvalidParameterError(f"distance must be positive, got {distance!r}")
    if visibility <= 0.0:
        raise InvalidParameterError(f"visibility must be positive, got {visibility!r}")
    difficulty = distance * distance / visibility
    k = guaranteed_discovery_round(distance, visibility)
    prefix = universal_search_prefix_duration(k)
    if difficulty <= 4.0:
        return prefix
    literal = THEOREM1_FACTOR * math.log2(difficulty) * difficulty
    # The literal Theorem 1 expression dominates the prefix duration for
    # difficulty >= 4 (the proof of Theorem 1); returning the max keeps the
    # function a valid upper bound even at the boundary.
    return max(literal, prefix)


def theorem2_effective_parameters(
    distance: float,
    visibility: float,
    speed: float,
    orientation: float,
    chirality: int,
) -> tuple[float, float]:
    """Worst-case effective ``(d, r)`` of the induced search problem (Theorem 2).

    For equal chiralities the equivalent search trajectory is the reference
    trajectory scaled by ``mu``, so the effective instance is
    ``(d / mu, r / mu)``.  For opposite chiralities the paper bounds the
    worst case over target bearings by ``(d / (1 - v), r / (1 - v))``
    (only meaningful for ``v < 1``; ``v = 1`` with ``chi = -1`` is
    infeasible).
    """
    if distance <= 0.0 or visibility <= 0.0:
        raise InvalidParameterError("distance and visibility must be positive")
    if chirality == 1:
        mu = mu_factor(speed, orientation)
        if mu == 0.0:
            raise InvalidParameterError(
                "v = 1 and phi = 0 with equal chirality: rendezvous infeasible, no bound exists"
            )
        return distance / mu, visibility / mu
    if chirality == -1:
        if speed >= 1.0:
            raise InvalidParameterError(
                "the chi = -1 bound of Theorem 2 is stated for v < 1 "
                "(normalise the instance so the reference robot is the faster one)"
            )
        factor = 1.0 - speed
        return distance / factor, visibility / factor
    raise InvalidParameterError(f"chirality must be +1 or -1, got {chirality!r}")


def theorem2_rendezvous_bound(
    distance: float,
    visibility: float,
    speed: float,
    orientation: float,
    chirality: int,
) -> float:
    """Theorem 2: rendezvous time bound for robots with equal time units.

    ``6(pi+1) log2(d^2/(mu r)) d^2/(mu r)`` when ``chi = +1`` and
    ``6(pi+1) log2(d^2/((1-v) r)) d^2/((1-v) r)`` when ``chi = -1``.
    """
    effective_distance, effective_visibility = theorem2_effective_parameters(
        distance, visibility, speed, orientation, chirality
    )
    return theorem1_search_bound(effective_distance, effective_visibility)
