"""Feasibility of rendezvous (Theorem 4 and the abstract's iff claim).

Rendezvous of the two robots is feasible **iff** at least one of the
following holds:

* their moving speeds differ               (``v != 1``),
* their clocks differ                      (``tau != 1``),
* their orientations differ while their chiralities agree
  (``chi = +1`` and ``0 < phi < 2 pi``).

In every remaining case (identical robots, or robots differing only by a
reflection -- possibly combined with a rotation) the equivalent relative
motion degenerates and an adversarial placement keeps the robots apart
forever.  ``explain_infeasibility`` spells out which degenerate situation
applies, and :func:`adversarial_separation_direction` returns a separation
direction realising the adversarial placement (used by the E06 experiment
to *demonstrate* infeasibility in simulation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..geometry import Vec2, mu_factor, relative_matrix
from ..robots import RobotAttributes

__all__ = [
    "FeasibilityVerdict",
    "is_feasible",
    "classify_feasibility",
    "adversarial_separation_direction",
]

_DEFAULT_TOLERANCE = 1e-12


@dataclass(frozen=True, slots=True)
class FeasibilityVerdict:
    """Outcome of the Theorem 4 feasibility test."""

    feasible: bool
    reasons: tuple[str, ...]

    def describe(self) -> str:
        """One-line human readable verdict."""
        status = "feasible" if self.feasible else "infeasible"
        return f"rendezvous {status}: " + "; ".join(self.reasons)


def classify_feasibility(
    attributes: RobotAttributes, tolerance: float = _DEFAULT_TOLERANCE
) -> FeasibilityVerdict:
    """Theorem 4's characterisation applied to an attribute vector."""
    attributes = attributes.normalized()
    reasons: list[str] = []
    if attributes.differs_in_clock(tolerance):
        reasons.append(f"clocks differ (tau = {attributes.time_unit:g})")
    if attributes.differs_in_speed(tolerance):
        reasons.append(f"speeds differ (v = {attributes.speed:g})")
    if not attributes.differs_in_chirality() and attributes.differs_in_orientation(tolerance):
        reasons.append(
            f"orientations differ with equal chirality (phi = {attributes.orientation:g})"
        )
    if reasons:
        return FeasibilityVerdict(feasible=True, reasons=tuple(reasons))
    # Infeasible: explain which degenerate case applies.
    if attributes.differs_in_chirality():
        if attributes.differs_in_orientation(tolerance):
            detail = (
                "the robots differ only by a reflection combined with a rotation: the relative "
                "motion is confined to a line, and a separation perpendicular to the reflection "
                "axis is never reduced"
            )
        else:
            detail = (
                "the robots differ only by a reflection: the relative motion is confined to a "
                "line, and a separation along the mirror-invariant direction is never reduced"
            )
    else:
        detail = "the robots are identical in every attribute: the relative motion is identically zero"
    return FeasibilityVerdict(feasible=False, reasons=(detail,))


def is_feasible(attributes: RobotAttributes, tolerance: float = _DEFAULT_TOLERANCE) -> bool:
    """True when rendezvous is feasible for the given attribute vector."""
    return classify_feasibility(attributes, tolerance).feasible


def adversarial_separation_direction(attributes: RobotAttributes) -> Vec2:
    """A unit separation direction defeating every algorithm when infeasible.

    For an infeasible configuration with equal clocks the relative matrix
    ``T_circ`` is rank deficient: its range is a line (or the origin).  A
    separation ``d`` orthogonal to that range can never be approached --
    the component of ``d`` orthogonal to the range is invariant.  The
    returned direction is exactly that orthogonal direction (for the
    identical-robots case any direction works and ``(0, 1)`` is returned).

    For feasible configurations the function still returns the direction
    maximising the Theorem 2 bound (the worst-case bearing), which is what
    the adversarial workload generator wants.
    """
    attributes = attributes.normalized()
    matrix = relative_matrix(attributes.speed, attributes.orientation, attributes.chirality)
    mu = mu_factor(attributes.speed, attributes.orientation)
    if attributes.chirality == 1:
        if mu == 0.0:
            return Vec2(0.0, 1.0)
        # chi = +1: T_circ is a scaled rotation, every direction is equivalent.
        return Vec2(0.0, 1.0)
    # chi = -1: T_circ has rank <= 1 exactly when v = 1; its range is then
    # spanned by the image of any vector.  The adversarial separation is the
    # direction orthogonal to the range.
    image_x = matrix.apply(Vec2(1.0, 0.0))
    image_y = matrix.apply(Vec2(0.0, 1.0))
    image = image_x if image_x.norm() >= image_y.norm() else image_y
    if image.norm() <= 1e-15:
        return Vec2(0.0, 1.0)
    direction = image.normalized().perpendicular()
    # Normalise the sign for reproducibility.
    if direction.y < 0 or (direction.y == 0 and direction.x < 0):
        direction = -direction
    return direction


def _is_multiple_of_two_pi(angle: float, tolerance: float) -> bool:
    reduced = math.fmod(angle, 2.0 * math.pi)
    return abs(reduced) <= tolerance or abs(abs(reduced) - 2.0 * math.pi) <= tolerance
