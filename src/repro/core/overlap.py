"""Active/inactive phase overlaps (Lemmas 9-10, Figure 3).

The asymmetric-clock argument hinges on the following: because robot R'
measures the same schedule with a different clock ``tau``, the *active*
phase of R eventually overlaps the *inactive* phase of R', and the overlap
grows without bound.  Lemma 9 covers the configuration of Figure 3(a)
(R' enters its inactive phase before R becomes active), Lemma 10 the
configuration of Figure 3(b) (R becomes active while R' is already
inactive from the previous round).

This module provides both the *measured* overlap (direct interval
intersection of two :class:`~repro.core.schedule.RoundSchedule` objects)
and the paper's closed-form overlap amounts and applicability windows, so
experiment E08 can compare them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidParameterError
from .schedule import RoundSchedule, active_phase_start, inactive_phase_start, search_all_time

__all__ = [
    "OverlapWindow",
    "measured_overlap",
    "lemma9_tau_window",
    "lemma9_applies",
    "lemma9_overlap_amount",
    "lemma10_tau_window",
    "lemma10_applies",
    "lemma10_overlap_amount",
]


@dataclass(frozen=True, slots=True)
class OverlapWindow:
    """Overlap between one active phase of R and one inactive phase of R'."""

    active_round: int
    inactive_round: int
    start: float
    end: float

    @property
    def amount(self) -> float:
        """Length of the overlap (zero when the phases are disjoint)."""
        return max(0.0, self.end - self.start)


def measured_overlap(
    active_round: int, inactive_round: int, tau: float
) -> OverlapWindow:
    """Exact overlap of R's active phase with R''s inactive phase.

    R (time unit 1) is active during ``[A(k), I(k+1)]``; R' (time unit
    ``tau``) is inactive during ``[tau I(n), tau A(n)]``.
    """
    if tau <= 0.0:
        raise InvalidParameterError(f"tau must be positive, got {tau!r}")
    reference = RoundSchedule(1.0)
    other = RoundSchedule(tau)
    active = reference.active_phase(active_round)
    inactive = other.inactive_phase(inactive_round)
    lo = max(active.start, inactive.start)
    hi = min(active.end, inactive.end)
    return OverlapWindow(
        active_round=active_round, inactive_round=inactive_round, start=lo, end=max(lo, hi)
    )


# -- Lemma 9: Figure 3(a) -----------------------------------------------------------


def lemma9_tau_window(k: int, a: int) -> tuple[float, float]:
    """The ``tau`` interval of Lemma 9 for active round ``k`` and offset ``a``.

    Lemma 9 applies when ``k / ((k+1+a) 2^{a+1}) <= tau <=
    (3/2) k / ((k+1+a) 2^{a+1})`` and ``k >= 2(a+1)``.
    """
    _check_k_a(k, a)
    base = k / ((k + 1 + a) * 2.0 ** (a + 1))
    return base, 1.5 * base


def lemma9_applies(k: int, a: int, tau: float) -> bool:
    """True when Lemma 9's hypotheses hold for ``(k, a, tau)``."""
    if k < 2 * (a + 1):
        return False
    low, high = lemma9_tau_window(k, a)
    return low <= tau <= high


def lemma9_overlap_amount(k: int, a: int, tau: float) -> float:
    """Lemma 9's overlap amount ``tau A(k+1+a) - A(k)``."""
    _check_k_a(k, a)
    return tau * active_phase_start(k + 1 + a) - active_phase_start(k)


# -- Lemma 10: Figure 3(b) -----------------------------------------------------------


def lemma10_tau_window(k: int, a: int) -> tuple[float, float]:
    """The ``tau`` interval of Lemma 10 for round ``k`` and offset ``a``.

    Lemma 10 applies when ``(2/3) k / ((k+a) 2^a) <= tau <=
    k / ((k+1+a) 2^a)`` and ``k >= 2(a+1)``.
    """
    _check_k_a(k, a)
    low = (2.0 / 3.0) * k / ((k + a) * 2.0**a)
    high = k / ((k + 1 + a) * 2.0**a)
    return low, high


def lemma10_applies(k: int, a: int, tau: float) -> bool:
    """True when Lemma 10's hypotheses hold for ``(k, a, tau)``."""
    if k < 2 * (a + 1):
        return False
    low, high = lemma10_tau_window(k, a)
    return low <= tau <= high


def lemma10_overlap_amount(k: int, a: int, tau: float) -> float:
    """Lemma 10's overlap amount ``I(k) - tau I(k+a)``."""
    _check_k_a(k, a)
    return inactive_phase_start(k) - tau * inactive_phase_start(k + a)


def _check_k_a(k: int, a: int) -> None:
    if not isinstance(k, int) or k < 1:
        raise InvalidParameterError(f"k must be a positive integer, got {k!r}")
    if not isinstance(a, int) or a < 0:
        raise InvalidParameterError(f"a must be a non-negative integer, got {a!r}")
