"""Engine-level search entry point: run Algorithm 4 on an instance and report.

``solve_search`` wires together the pieces a user would otherwise have to
assemble by hand: it picks the universal search algorithm (or any other
registered mobility algorithm), derives a horizon from Theorem 1, runs the
continuous-time simulation, and returns a report comparing the measured
search time against the paper's bound.

New code should prefer the :mod:`repro.api` facade
(``solve(SearchProblem(...))``), which wraps this function behind the
serializable spec/result envelope and the backend registry; this module
remains as the engine the simulation backend calls and as a stable
compatibility shim for existing imports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..algorithms import MobilityAlgorithm, UniversalSearch
from ..errors import HorizonExceededError
from ..simulation import (
    HorizonPolicy,
    SearchInstance,
    SimulationOutcome,
    bound_multiple_horizon,
    simulate_search,
)
from .bounds import guaranteed_discovery_round, theorem1_search_bound

__all__ = ["SearchReport", "solve_search"]


@dataclass(frozen=True, slots=True)
class SearchReport:
    """Everything measured and predicted about one search run."""

    instance: SearchInstance
    algorithm_name: str
    outcome: SimulationOutcome
    bound: float
    guaranteed_round: int

    @property
    def time(self) -> float:
        """Measured search time."""
        return self.outcome.time

    @property
    def bound_ratio(self) -> float:
        """Measured time divided by the Theorem 1 bound (must be < 1)."""
        return self.time / self.bound

    def summary(self) -> str:
        """One-paragraph human readable summary."""
        return (
            f"{self.instance.describe()}\n"
            f"algorithm: {self.algorithm_name}\n"
            f"measured time: {self.time:.6g}  |  Theorem 1 bound: {self.bound:.6g}  "
            f"(ratio {self.bound_ratio:.3f})\n"
            f"guaranteed discovery round: {self.guaranteed_round}  |  {self.outcome.describe()}"
        )


def solve_search(
    instance: SearchInstance,
    algorithm: Optional[MobilityAlgorithm] = None,
    horizon: Optional[HorizonPolicy | float] = None,
    safety_factor: float = 1.25,
    simulate=simulate_search,
) -> SearchReport:
    """Solve a search instance and compare the measured time to Theorem 1.

    Args:
        instance: the search instance (target position, visibility).
        algorithm: the mobility algorithm to run; defaults to Algorithm 4.
        horizon: optional explicit horizon; by default the Theorem 1 bound
            times ``safety_factor`` is used.
        safety_factor: slack applied to the default horizon.
        simulate: the simulation entry point to drive (the scalar engine
            by default; the vectorized backend passes
            :func:`repro.simulation.kernel.kernel_simulate_search`).

    Raises:
        HorizonExceededError: when the simulation hits the horizon without
            finding the target (should not happen for Algorithm 4 within
            the default horizon).
    """
    algorithm = algorithm if algorithm is not None else UniversalSearch()
    bound = theorem1_search_bound(instance.distance, instance.visibility)
    resolved_horizon = (
        horizon if horizon is not None else bound_multiple_horizon(bound, safety_factor)
    )
    outcome = simulate(algorithm, instance, resolved_horizon)
    if not outcome.solved:
        raise HorizonExceededError(
            outcome.horizon,
            f"search did not finish within the horizon {outcome.horizon:g} "
            f"({algorithm.describe()}, {instance.describe()})",
        )
    return SearchReport(
        instance=instance,
        algorithm_name=algorithm.describe(),
        outcome=outcome,
        bound=bound,
        guaranteed_round=guaranteed_discovery_round(instance.distance, instance.visibility),
    )
