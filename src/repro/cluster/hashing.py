"""Consistent hashing for the sharded serving tier.

A :class:`HashRing` places every shard at ``replicas`` pseudo-random
points on a 2^64 ring (SHA-256 of ``"node:replica"``) and routes a key
to the first shard point at or after the key's own hash.  Two
properties matter for the cluster:

* **determinism** -- the ring is a pure function of the node names, so
  the router, the tests and a future second router all agree on which
  worker owns ``(backend, spec_hash)`` without any coordination;
* **stability** -- when a shard is added or removed only ~1/N of the
  key space moves, so a resized cluster keeps most per-worker stores
  and LRU caches warm.

:meth:`HashRing.preference` returns *all* distinct shards in ring
order from a key's position -- the failover sequence: the first entry
is the home shard, the rest are the re-route candidates the router
tries when the home worker is down.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Sequence, Union

from ..errors import InvalidParameterError

__all__ = ["HashRing", "shard_key"]

Node = Union[int, str]


def shard_key(backend: str, spec_hash: str) -> str:
    """The routing key of one request: the store/LRU key, stringified."""
    return f"{backend}:{spec_hash}"


def _ring_hash(text: str) -> int:
    return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Deterministic consistent-hash ring over a fixed set of shards.

    Args:
        nodes: shard identifiers (worker indices or names); order is
            irrelevant, the ring is the same for any permutation.
        replicas: virtual points per shard; more points smooth the key
            distribution at the cost of a larger (still tiny) ring.
    """

    def __init__(self, nodes: Sequence[Node], replicas: int = 64) -> None:
        if not nodes:
            raise InvalidParameterError("HashRing needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise InvalidParameterError(f"duplicate ring nodes in {nodes!r}")
        if replicas < 1:
            raise InvalidParameterError(f"replicas must be >= 1, got {replicas!r}")
        self.nodes = tuple(nodes)
        self.replicas = replicas
        points = []
        for node in self.nodes:
            for replica in range(replicas):
                points.append((_ring_hash(f"{node}:{replica}"), node))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [node for _, node in points]

    def __len__(self) -> int:
        return len(self.nodes)

    def lookup(self, key: str) -> Node:
        """The shard that owns ``key`` (its home worker)."""
        index = bisect.bisect_right(self._hashes, _ring_hash(key)) % len(self._hashes)
        return self._owners[index]

    def preference(self, key: str) -> list[Node]:
        """Every distinct shard in ring order from ``key``'s position.

        ``preference(key)[0] == lookup(key)``; the remaining entries are
        the deterministic failover order.
        """
        start = bisect.bisect_right(self._hashes, _ring_hash(key))
        seen: list[Node] = []
        for step in range(len(self._owners)):
            owner = self._owners[(start + step) % len(self._owners)]
            if owner not in seen:
                seen.append(owner)
                if len(seen) == len(self.nodes):
                    break
        return seen
