"""Worker processes and their supervision.

Each shard worker is a **full** ``repro serve`` daemon in its own
process: its own :class:`~repro.service.service.SolverService`, its own
kernel state, its own store directory.  Nothing cluster-specific runs
inside a worker -- the router speaks the ordinary JSON-Lines wire
format to it, which is what keeps the fingerprint contract trivially
intact: a worker answers exactly what a standalone daemon would.

The :class:`ClusterSupervisor` owns the fleet lifecycle:

* **spawn** -- workers bind ephemeral ports and publish them through
  ``--port-file`` (no port races, no stdout parsing);
* **store seeding** -- when a primary store is configured, its records
  are exported once and imported into every worker store before the
  fleet starts, so a warm restart of the cluster replays from one
  store;
* **respawn** -- :meth:`ensure_alive` is the router's failure report:
  single-flight per worker (a generation counter collapses concurrent
  reports of the same death), never touching a process that is still
  running;
* **drain + merge** -- :meth:`stop` shuts each worker down gracefully
  (the ``shutdown`` verb, SIGTERM as fallback) so the workers flush
  their buffered segments, then merges every worker store back into
  the primary via :meth:`~repro.api.store.ResultStore.export` /
  :meth:`~repro.api.store.ResultStore.import_file`.
"""

from __future__ import annotations

import json
import os
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Optional, Union

from ..errors import ClusterError, InvalidParameterError

__all__ = ["WorkerHandle", "ClusterSupervisor"]

_WORKER_SUBDIR = "workers"


class WorkerHandle:
    """One supervised shard worker: process, address, store, counters."""

    def __init__(self, worker_id: int, store_dir: Optional[Path]) -> None:
        self.worker_id = worker_id
        self.store_dir = store_dir
        self.process: Optional[subprocess.Popen] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        #: Bumped on every (re)spawn; failure reports quote the
        #: generation they observed so one death triggers one respawn.
        self.generation = 0
        self.restarts = 0
        #: Single-flight guard for spawn/respawn of this worker.
        self.lock = threading.Lock()

    @property
    def address(self) -> Optional[str]:
        if self.host is None or self.port is None:
            return None
        return f"{self.host}:{self.port}"

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def describe(self) -> dict:
        """JSON-safe shard row for health/status documents."""
        return {
            "worker": self.worker_id,
            "address": self.address,
            "alive": self.alive,
            "restarts": self.restarts,
            "pid": self.process.pid if self.process is not None else None,
            "store": str(self.store_dir) if self.store_dir is not None else None,
        }


class ClusterSupervisor:
    """Spawn, watch, respawn and drain a fleet of shard workers.

    Args:
        workers: fleet size (>= 1).
        backend: default backend forwarded to every worker.
        store: the **primary** store directory; each worker gets its own
            sub-store under ``<store>/workers/worker-NN``, seeded from
            the primary and merged back on :meth:`stop`.  ``None`` runs
            the fleet storeless.
        max_inflight / queue_limit: per-worker admission control.
        host: bind address for the workers.
        spawn_timeout: seconds to wait for a worker to publish its port.
    """

    def __init__(
        self,
        workers: int,
        backend: str = "auto",
        store: Union[str, Path, None] = None,
        max_inflight: int = 8,
        queue_limit: int = 128,
        host: str = "127.0.0.1",
        spawn_timeout: float = 60.0,
        async_workers: bool = False,
    ) -> None:
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers!r}")
        self.backend = backend
        #: Boot every worker on the asyncio transport (``serve --async``);
        #: the wire is byte-compatible, so the router never notices.
        self.async_workers = async_workers
        self.primary_store = Path(store) if store is not None else None
        self.max_inflight = max_inflight
        self.queue_limit = queue_limit
        self.host = host
        self.spawn_timeout = spawn_timeout
        self._run_dir = Path(tempfile.mkdtemp(prefix="repro-cluster-"))
        self.handles = [
            WorkerHandle(worker_id, self._worker_store_dir(worker_id))
            for worker_id in range(workers)
        ]
        self._stopped = False
        self._stop_lock = threading.Lock()
        self._stop_done = threading.Event()
        # One fleet-wide compiled-trajectory arena: every worker attaches
        # by name (via the environment) and a trajectory compiled on any
        # shard is mapped zero-copy by all of them.  ``None`` when shared
        # memory is unavailable -- workers then run with private caches.
        from ..simulation.arena import TrajectoryArena

        self.arena: Optional[TrajectoryArena] = None
        try:
            self.arena = TrajectoryArena.create()
        except Exception:
            self.arena = None

    def _worker_store_dir(self, worker_id: int) -> Optional[Path]:
        if self.primary_store is None:
            return None
        return self.primary_store / _WORKER_SUBDIR / f"worker-{worker_id:02d}"

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> None:
        """Seed worker stores from the primary, then spawn the fleet.

        All workers are launched first and awaited second, so fleet
        start costs one interpreter boot (the slowest worker), not the
        sum of them.  Nothing else can touch the handles yet -- the
        router is built after ``start`` returns -- so holding no locks
        between the two passes is safe.
        """
        self._seed_worker_stores()
        launched = []
        for handle in self.handles:
            with handle.lock:
                launched.append((handle, *self._launch(handle)))
        for handle, port_file, log_path in launched:
            with handle.lock:
                self._await_ready(handle, port_file, log_path)

    def _seed_worker_stores(self) -> None:
        if self.primary_store is None:
            return
        from ..api.store import ResultStore

        primary = ResultStore(self.primary_store)
        if len(primary) == 0:
            return
        seed_file = self._run_dir / "seed.jsonl"
        primary.export(seed_file)
        for handle in self.handles:
            assert handle.store_dir is not None
            ResultStore(handle.store_dir).import_file(seed_file)

    def _worker_command(self, handle: WorkerHandle, port_file: Path) -> list[str]:
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            self.host,
            "--port",
            "0",
            "--backend",
            self.backend,
            "--max-inflight",
            str(self.max_inflight),
            "--queue-limit",
            str(self.queue_limit),
            "--port-file",
            str(port_file),
        ]
        if self.async_workers:
            command.append("--async")
        if handle.store_dir is not None:
            command += ["--store", str(handle.store_dir)]
        else:
            command += ["--no-store"]
        return command

    def _launch(self, handle: WorkerHandle) -> tuple[Path, Path]:
        """Start one worker process; returns its port file and log path.

        Caller holds ``handle.lock``.
        """
        if self._stopped:
            raise ClusterError("cluster supervisor is stopped")
        port_file = self._run_dir / f"worker-{handle.worker_id:02d}.port.{handle.generation + 1}"
        log_path = self._run_dir / f"worker-{handle.worker_id:02d}.log"
        # The worker re-imports the library from a fresh interpreter, so
        # make sure the package we are running from is importable there.
        package_root = str(Path(__file__).resolve().parents[2])
        env = os.environ.copy()
        env["PYTHONPATH"] = os.pathsep.join(
            [package_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        if self.arena is not None:
            from ..simulation.arena import ARENA_ENV

            env[ARENA_ENV] = self.arena.name
        with log_path.open("ab") as log:
            handle.process = subprocess.Popen(
                self._worker_command(handle, port_file),
                stdout=log,
                stderr=log,
                env=env,
                start_new_session=True,
            )
        return port_file, log_path

    def _await_ready(self, handle: WorkerHandle, port_file: Path, log_path: Path) -> None:
        """Wait for a launched worker to publish its port, then adopt it.

        Caller holds ``handle.lock``.
        """
        deadline = time.monotonic() + self.spawn_timeout
        while True:
            if port_file.exists():
                text = port_file.read_text(encoding="utf-8").strip()
                if text:
                    host, _, port = text.rpartition(":")
                    handle.host, handle.port = host, int(port)
                    break
            if handle.process.poll() is not None:
                raise ClusterError(
                    f"worker {handle.worker_id} exited with "
                    f"{handle.process.returncode} before binding "
                    f"(log: {log_path})"
                )
            if time.monotonic() > deadline:
                handle.process.kill()
                try:
                    handle.process.wait(timeout=5.0)  # reap: no zombie child
                except subprocess.TimeoutExpired:  # pragma: no cover - kernel lag
                    pass
                raise ClusterError(
                    f"worker {handle.worker_id} did not publish a port within "
                    f"{self.spawn_timeout}s (log: {log_path})"
                )
            time.sleep(0.02)
        handle.generation += 1

    def _spawn(self, handle: WorkerHandle) -> None:
        """(Re)start one worker and wait for it to publish its port.

        Caller holds ``handle.lock``.
        """
        self._await_ready(handle, *self._launch(handle))

    #: How long :meth:`ensure_alive` lets an observed failure settle
    #: before trusting ``alive``: the EOF a router sees can outrun the
    #: process exit itself (the kernel closes the sockets while the
    #: process is still being reaped), so an instant ``alive`` check
    #: would dismiss a real death as a connection blip.
    DEATH_GRACE = 2.0

    def ensure_alive(self, handle: WorkerHandle, observed_generation: int) -> None:
        """Respawn a worker the router observed failing (single-flight).

        ``observed_generation`` is the generation the caller talked to;
        if the handle has moved past it another report already respawned
        the worker.  A process that is still running after the death
        grace is left alone -- a connection blip is not a death.
        """
        deadline = time.monotonic() + self.DEATH_GRACE
        while (
            handle.alive
            and handle.generation == observed_generation
            and not self._stopped
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        with handle.lock:
            if self._stopped or handle.generation != observed_generation:
                return
            if handle.alive:
                return
            handle.restarts += 1
            self._spawn(handle)

    # -- drain -----------------------------------------------------------------
    def _shutdown_worker(self, handle: WorkerHandle, timeout: float) -> None:
        """Ask one worker to drain: shutdown verb, then SIGTERM, then kill."""
        process = handle.process
        if process is None or process.poll() is not None:
            return
        try:
            with socket.create_connection((handle.host, handle.port), timeout=5.0) as conn:
                conn.sendall((json.dumps({"op": "shutdown"}) + "\n").encode("utf-8"))
                with conn.makefile("rb") as stream:
                    stream.readline()
        except OSError:
            process.terminate()
        try:
            process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            process.terminate()
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                process.kill()
                process.wait(timeout=5.0)

    def merge_stores(self) -> int:
        """Fold every worker store into the primary; returns records added.

        Worker segment directories are removed after a successful merge:
        the primary is now the single source of truth, and the next
        :meth:`start` re-seeds fresh worker stores from it.
        """
        if self.primary_store is None:
            return 0
        from ..api.store import ResultStore

        primary = ResultStore(self.primary_store)
        added = 0
        for handle in self.handles:
            worker_dir = handle.store_dir
            if worker_dir is None or not worker_dir.is_dir():
                continue
            worker_store = ResultStore(worker_dir)
            if len(worker_store) == 0:
                shutil.rmtree(worker_dir, ignore_errors=True)
                continue
            export_file = self._run_dir / f"merge-{handle.worker_id:02d}.jsonl"
            worker_store.export(export_file)
            added += primary.import_file(export_file)
            shutil.rmtree(worker_dir, ignore_errors=True)
        primary.flush()
        workers_root = self.primary_store / _WORKER_SUBDIR
        if workers_root.is_dir() and not any(workers_root.iterdir()):
            workers_root.rmdir()
        return added

    def stop(self, drain: bool = True, timeout: float = 30.0) -> int:
        """Drain the fleet and merge its stores; returns records merged.

        Idempotent *and* blocking: a second caller (e.g. the cleanup
        path racing a signal handler's stop) waits for the first stop to
        finish tearing the fleet down.  With ``drain=False`` the workers
        are terminated without the store merge (crash-style stop).
        """
        with self._stop_lock:
            first = not self._stopped
            self._stopped = True
        if not first:
            self._stop_done.wait(timeout=timeout)
            return 0
        try:
            for handle in self.handles:
                with handle.lock:
                    if drain:
                        self._shutdown_worker(handle, timeout)
                    elif handle.process is not None and handle.process.poll() is None:
                        handle.process.kill()
                        handle.process.wait(timeout=5.0)
            added = self.merge_stores() if drain else 0
            shutil.rmtree(self._run_dir, ignore_errors=True)
            return added
        finally:
            # Workers are down: unlink the fleet arena so CI leaves no
            # /dev/shm litter (no-op for attachers and forked children).
            if self.arena is not None:
                self.arena.destroy()
            self._stop_done.set()

    def __enter__(self) -> "ClusterSupervisor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
