"""``repro.cluster`` -- the sharded, multi-process serving topology.

The single-process daemon (:mod:`repro.service`) tops out at one
interpreter; this package is the next rung of the ROADMAP's scaling
ladder: N worker processes, each a full ``repro serve`` daemon with its
own :class:`~repro.service.service.SolverService` and store directory,
behind one :class:`ShardRouter` front daemon.

* :mod:`repro.cluster.hashing` -- :class:`HashRing`: deterministic
  consistent hashing of the ``(backend, spec_hash)`` routing key onto
  shards, with a stable failover preference order;
* :mod:`repro.cluster.worker`  -- :class:`ClusterSupervisor`:
  spawn/respawn of the worker fleet (ephemeral ports published through
  ``--port-file``), store seeding from the primary on start and
  store merge back into the primary on drain;
* :mod:`repro.cluster.router`  -- :class:`ShardRouter`: the front
  daemon speaking the unchanged JSON-Lines wire format, with
  router-side request coalescing, bounded-retry failover along the
  ring, per-shard metrics and worker health probes.

The spec hash already content-addresses the request space (the LRU,
the store and the coalescing all key on it), so sharding by it gives
every worker an exclusive, deterministic slice: caches never overlap,
duplicate traffic lands on the worker that has the answer, and any
worker can stand in for any other because the backends produce
bit-identical envelopes.

Quickstart (also ``repro serve --workers 4``)::

    from repro.cluster import ClusterSupervisor, ShardRouter

    supervisor = ClusterSupervisor(workers=4, backend="auto", store=".repro-store")
    supervisor.start()
    with ShardRouter(supervisor, port=7767) as router:
        router.serve_forever()   # clients speak the ordinary wire format
"""

from .hashing import HashRing, shard_key
from .router import CLUSTER_STATUS_OP, AsyncShardRouter, ShardRouter, boot_router
from .worker import ClusterSupervisor, WorkerHandle

__all__ = [
    "AsyncShardRouter",
    "CLUSTER_STATUS_OP",
    "ClusterSupervisor",
    "HashRing",
    "ShardRouter",
    "WorkerHandle",
    "boot_router",
    "shard_key",
]
