"""The shard router: one front daemon over N worker daemons.

A :class:`ShardRouter` is a :class:`~repro.service.daemon.GracefulLineServer`
that speaks **exactly** the JSON-Lines wire format of
:mod:`repro.service.protocol` -- clients cannot tell a router from a
single daemon -- but answers ``solve`` requests by consistent-hashing
``(backend, spec_hash)`` onto a supervised worker fleet and proxying
the line over a pooled connection.  What the router adds on top of
plain proxying:

* **router-side coalescing** -- concurrent identical requests cost one
  shard round-trip: the first arrival forwards, every overlapping
  duplicate shares the leader's response (with its own ``id``), exactly
  the :class:`~repro.service.service.SolverService` rendezvous pattern
  one level up the topology;
* **failover** -- a dead worker is reported to the supervisor (which
  respawns it, single-flight) while the request is re-routed along the
  ring's preference order; with every worker down the router keeps
  retrying until ``route_timeout`` before answering ``ok: false``.  A
  re-routed solve is safe because the backends are deterministic:
  any worker produces the bit-identical envelope;
* **shard metrics** -- per-shard forwarded/failure/degraded counters
  (the ``metrics`` verb) and per-worker health probes (the ``health``
  and ``cluster-status`` verbs).

The router holds no solver state at all; stopping it drains the fleet
(every worker flushes its store segments) and merges the worker stores
back into the primary, so a warm restart replays from one store.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Any, Optional

from ..errors import ClusterError, ReproError
from ..service.aio import AsyncLineServer
from ..service.daemon import GracefulLineServer
from ..service.frames import (
    FORMAT_BINARY,
    HELLO_OP,
    FrameError,
    decode_payload,
    encode_frame,
    materialize_raw,
    read_frame,
)
from ..service.metrics import ServiceMetrics
from ..service.protocol import (
    CLUSTER_STATUS_OP,
    COMPLETION_OP,
    PARTIAL_OP,
    SHUTDOWN_OP,
    SUBSCRIBE_OP,
    SUMMARY_OP,
    SWEEP_OP,
    decode_request,
    error_response,
    hello_response,
    normalize_request,
    parse_subscribe,
    parse_sweep,
    subscribe_ack,
    subscribe_summary,
    sweep_ack,
    sweep_partial,
    sweep_summary,
)
from ..exec.plan import partition_specs
from .hashing import HashRing, shard_key
from .worker import ClusterSupervisor, WorkerHandle

__all__ = ["AsyncShardRouter", "ShardRouter", "CLUSTER_STATUS_OP", "boot_router"]


class _WorkerDied(Exception):
    """A round-trip to a worker failed mid-request (connect, write or read)."""


class _WorkerTimeout(Exception):
    """A worker accepted the request but did not answer within the budget.

    Deliberately distinct from :class:`_WorkerDied`: the worker is busy,
    not gone -- re-routing would duplicate a solve that is still
    running, and respawning would kill it.  The request fails honestly
    instead.
    """


class _InFlight:
    """Rendezvous between one forwarded solve and its coalesced duplicates."""

    __slots__ = ("event", "response", "waiters")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: Optional[dict[str, Any]] = None
        #: Duplicates currently parked on this forward (under the
        #: router's in-flight lock); lets tests observe joins before
        #: the leader's round-trip completes.
        self.waiters = 0


#: Worker-response keys the router forwards as opaque byte spans on the
#: binary path instead of materialising them (``result`` dominates the
#: response; everything around it is a handful of scalars).
_RAW_KEYS = frozenset({"result"})


class _WorkerPool:
    """A small pool of persistent connections to one worker.

    Connections are tagged with the worker generation they were opened
    against; a respawned worker (new port, new process) invalidates
    every pooled connection of older generations.  With ``binary`` the
    pool offers the ``hello`` upgrade on every fresh connection and
    remembers per connection what was negotiated, so a fleet of old
    workers degrades to JSON transparently.
    """

    def __init__(self, handle: WorkerHandle, timeout: float, binary: bool = True) -> None:
        self.handle = handle
        self.timeout = timeout
        self.binary = binary
        self._lock = threading.Lock()
        self._idle: list[tuple[int, socket.socket, Any, bool]] = []

    def _connect(self) -> tuple[int, socket.socket, Any, bool]:
        generation = self.handle.generation
        host, port = self.handle.host, self.handle.port
        if host is None or port is None:
            raise _WorkerDied(f"worker {self.handle.worker_id} has no address")
        try:
            conn = socket.create_connection((host, port), timeout=self.timeout)
        except OSError as error:
            raise _WorkerDied(
                f"worker {self.handle.worker_id} refused a connection: {error}"
            ) from error
        reader = conn.makefile("rb")
        is_binary = False
        if self.binary:
            try:
                hello = json.dumps({"op": HELLO_OP, "format": FORMAT_BINARY}, allow_nan=False)
                conn.sendall((hello + "\n").encode("utf-8"))
                raw = reader.readline()
                answer = json.loads(raw.decode("utf-8")) if raw else {}
                is_binary = bool(
                    isinstance(answer, dict)
                    and answer.get("ok")
                    and answer.get("format") == FORMAT_BINARY
                )
            except (OSError, ValueError) as error:
                conn.close()
                raise _WorkerDied(
                    f"worker {self.handle.worker_id} failed the hello round-trip: {error}"
                ) from error
        return generation, conn, reader, is_binary

    def request(self, data: dict[str, Any], timeout: Optional[float] = None) -> dict[str, Any]:
        """One round-trip: send a request object, read one response object.

        ``timeout`` caps this round-trip only (the pool default
        otherwise).  A timed-out read raises :class:`_WorkerTimeout`
        (busy worker, request failed), any other socket failure raises
        :class:`_WorkerDied` (dead worker, caller may fail over).  On a
        binary connection the response's ``result`` comes back as a
        :class:`~repro.service.frames.Raw` span, ready to forward
        without re-encoding.
        """
        with self._lock:
            while self._idle:
                generation, conn, reader, is_binary = self._idle.pop()
                if generation == self.handle.generation:
                    break
                conn.close()
            else:
                conn = None
        if conn is None:
            generation, conn, reader, is_binary = self._connect()
        try:
            conn.settimeout(timeout if timeout is not None else self.timeout)
            if is_binary:
                conn.sendall(encode_frame(data))
                payload = read_frame(reader)
            else:
                line = json.dumps(data, sort_keys=True, separators=(",", ":"), allow_nan=False)
                conn.sendall((line + "\n").encode("utf-8"))
                payload = reader.readline()
        except TimeoutError as error:
            # The connection is desynced (an answer may still arrive);
            # it must not be reused.
            conn.close()
            raise _WorkerTimeout(
                f"worker {self.handle.worker_id} did not answer within "
                f"{timeout if timeout is not None else self.timeout}s"
            ) from error
        except FrameError as error:
            conn.close()
            raise _WorkerDied(
                f"worker {self.handle.worker_id} answered a broken frame: {error}"
            ) from error
        except OSError as error:
            conn.close()
            raise _WorkerDied(
                f"worker {self.handle.worker_id} dropped mid-request: {error}"
            ) from error
        if not payload:
            conn.close()
            raise _WorkerDied(f"worker {self.handle.worker_id} closed mid-request")
        with self._lock:
            self._idle.append((generation, conn, reader, is_binary))
        try:
            if is_binary:
                response = decode_payload(payload, raw_keys=_RAW_KEYS)
            else:
                response = json.loads(payload.decode("utf-8"))
        except (FrameError, json.JSONDecodeError, UnicodeDecodeError) as error:
            raise _WorkerDied(
                f"worker {self.handle.worker_id} answered a malformed response: {error}"
            ) from error
        if not isinstance(response, dict):
            raise _WorkerDied(f"worker {self.handle.worker_id} answered a non-object")
        return response

    def close(self) -> None:
        with self._lock:
            for _, conn, _, _ in self._idle:
                conn.close()
            self._idle.clear()


class _ShardCounters:
    """Per-shard routing counters (the router's own view of one worker)."""

    __slots__ = (
        "forwarded",
        "failures",
        "degraded",
        "swept",
        "completed",
        "failed",
        "repartitioned",
    )

    def __init__(self) -> None:
        self.forwarded = 0
        self.failures = 0
        #: True from an observed failure until the next successful
        #: round-trip -- "this shard recently lost a request".
        self.degraded = False
        #: Distributed-sweep accounting: specs assigned to this shard
        #: (re-assignments count again), spec records it answered, spec
        #: records that answered with an error, and specs moved *away*
        #: after this shard died mid-partition.
        self.swept = 0
        self.completed = 0
        self.failed = 0
        self.repartitioned = 0

    def sweep_row(self) -> dict[str, int]:
        return {
            "swept": self.swept,
            "completed": self.completed,
            "failed": self.failed,
            "repartitioned": self.repartitioned,
        }


class ShardRouter(GracefulLineServer):
    """The sharded serving front: routes, coalesces, fails over.

    Args:
        supervisor: the worker fleet (already started).
        host / port: bind address of the router itself.
        backend: default backend for requests that don't name one --
            part of the routing key, so it must be pinned router-side.
        worker_timeout: per-round-trip socket timeout against a worker.
        route_timeout: total time a request may spend cycling the ring
            (including waiting out worker respawns) before ``ok: false``.
        worker_binary: offer the binary-frame upgrade on router->worker
            connections (on by default; old workers degrade to JSON).
    """

    def __init__(
        self,
        supervisor: ClusterSupervisor,
        host: str = "127.0.0.1",
        port: int = 0,
        backend: str = "auto",
        worker_timeout: float = 120.0,
        route_timeout: float = 60.0,
        worker_binary: bool = True,
    ) -> None:
        self.supervisor = supervisor
        self.backend = backend
        self.worker_timeout = worker_timeout
        self.route_timeout = route_timeout
        self.worker_binary = worker_binary
        self.ring = HashRing([handle.worker_id for handle in supervisor.handles])
        self.metrics = ServiceMetrics()
        self._pools = {
            handle.worker_id: _WorkerPool(handle, worker_timeout, binary=worker_binary)
            for handle in supervisor.handles
        }
        self._shards = {handle.worker_id: _ShardCounters() for handle in supervisor.handles}
        self._shard_lock = threading.Lock()
        self._inflight: dict[str, _InFlight] = {}
        self._inflight_lock = threading.Lock()
        self._coalesced = 0
        self._reroutes = 0
        self._started = time.time()
        super().__init__(host=host, port=port)

    # -- the wire --------------------------------------------------------------
    def answer_line(self, line: str) -> dict[str, Any]:
        data, decode_error = decode_request(line)
        if decode_error is not None:
            return decode_error
        op, data, request_id = normalize_request(data)
        # JSON clients must never see a Raw span a binary worker
        # answered with; binary clients (answer_frame) forward it as-is.
        return materialize_raw(self._dispatch(op, data, request_id))

    def answer_frame(self, data: Any) -> dict[str, Any]:
        if not isinstance(data, dict):
            return error_response(
                "?", ReproError(f"request must be an object, got {type(data).__name__}")
            )
        op, data, request_id = normalize_request(data)
        return self._dispatch(op, data, request_id)

    def _dispatch(self, op: Any, data: dict[str, Any], request_id: Any) -> dict[str, Any]:
        try:
            if op == "solve":
                return self._route_solve(data, request_id)
            if op == "health":
                return {"ok": True, "op": "health", "health": self.health()}
            if op == "metrics":
                return {"ok": True, "op": "metrics", "metrics": self.metrics_snapshot()}
            if op == HELLO_OP:
                return hello_response(data, request_id)
            if op == CLUSTER_STATUS_OP:
                return {"ok": True, "op": CLUSTER_STATUS_OP, "cluster": self.cluster_status()}
            if op == SHUTDOWN_OP:
                return {"ok": True, "op": SHUTDOWN_OP, "stopping": True}
            if op in (SUBSCRIBE_OP, SWEEP_OP):
                raise ReproError(
                    f"{op} streams results over one connection and needs the "
                    "asyncio cluster front; start it with `repro serve "
                    "--workers N --async`"
                )
            raise ReproError(
                f"unknown op {op!r}; expected solve, health, metrics, {HELLO_OP}, "
                f"{CLUSTER_STATUS_OP} or {SHUTDOWN_OP}"
            )
        except Exception as error:  # noqa: BLE001 - a request must never kill the stream
            return error_response(str(op), error, request_id)

    # -- solve routing ---------------------------------------------------------
    def _route_solve(self, data: dict[str, Any], request_id: Any) -> dict[str, Any]:
        from ..api.spec import spec_from_dict

        started = time.perf_counter()
        spec_data = data.get("spec")
        if not isinstance(spec_data, dict):
            raise ReproError('solve request needs a "spec" object')
        backend = data.get("backend")
        if backend is not None and not isinstance(backend, str):
            raise ReproError('"backend" must be a string backend name')
        effective = backend if backend is not None else self.backend
        spec = spec_from_dict(spec_data)
        key = shard_key(effective, spec.canonical_hash())
        # The forwarded line is normalised: no id (the leader and every
        # coalesced duplicate stamp their own onto a shared response)
        # and the backend always explicit -- the request was keyed and
        # coalesced under the *router's* effective backend, so the
        # worker must not substitute its own default.
        forward: dict[str, Any] = {"op": "solve", "spec": spec_data, "backend": effective}

        with self._inflight_lock:
            entry = self._inflight.get(key)
            leader = entry is None
            if leader:
                entry = self._inflight[key] = _InFlight()
            else:
                entry.waiters += 1
        if not leader:
            # Unbounded, like SolverService followers: the leader's
            # finally below *always* resolves the entry, and the leader
            # itself is bounded by the routing deadline.
            entry.event.wait()
            response = entry.response
            if response is None:  # pragma: no cover - defensive
                raise ClusterError("coalesced request never received its answer")
            latency = time.perf_counter() - started
            with self._shard_lock:
                self._coalesced += 1
            # Mirror the leader's accounting: a shared failure is an
            # error for every duplicate too, not an answered request.
            if response.get("ok"):
                self.metrics.record(effective, "coalesced", latency)
            else:
                self.metrics.record_error(effective, latency)
            return self._stamp(response, request_id)

        try:
            response = self._forward(key, forward)
            entry.response = response
        except BaseException as error:
            # The leader's failure must count too (followers mirror it):
            # a dead fleet otherwise reports zero errors while every
            # client is told ok:false.
            self.metrics.record_error(effective, time.perf_counter() - started)
            entry.response = error_response("solve", error)
            raise
        finally:
            with self._inflight_lock:
                self._inflight.pop(key, None)
            entry.event.set()

        latency = time.perf_counter() - started
        if response.get("ok"):
            self.metrics.record(effective, response.get("served_by", "solve"), latency)
        else:
            self.metrics.record_error(effective, latency)
        return self._stamp(response, request_id)

    @staticmethod
    def _stamp(response: dict[str, Any], request_id: Any) -> dict[str, Any]:
        """A caller-specific copy of a (possibly shared) response."""
        stamped = dict(response)
        stamped.pop("id", None)
        if request_id is not None:
            stamped["id"] = request_id
        return stamped

    def _forward(self, key: str, forward: dict[str, Any]) -> dict[str, Any]:
        """Send one request to the key's home shard, failing over along the ring.

        An accepted request is never dropped while any worker can be
        reached (or respawned) within ``route_timeout``: every failure
        is reported to the supervisor (which respawns the worker in the
        background) and the request moves to the next shard in the
        key's deterministic preference order, cycling with a small
        backoff so a single-worker cluster rides out its own respawn.
        """
        candidates = self.ring.preference(key)
        # ``route_timeout`` bounds the *failover cycling* over dead
        # workers; each individual round-trip gets the full
        # ``worker_timeout`` -- a solve legitimately slower than the
        # routing deadline must still succeed, exactly as it would
        # against the single-process daemon.
        deadline = time.monotonic() + self.route_timeout
        cycle = 0
        attempts = 0
        last_failure: Optional[str] = None
        while True:
            for position, worker_id in enumerate(candidates):
                if attempts and time.monotonic() > deadline:
                    break  # at least one attempt always runs
                handle = self.supervisor.handles[worker_id]
                generation = handle.generation
                attempts += 1
                try:
                    response = self._pools[worker_id].request(forward)
                except _WorkerTimeout as timeout_error:
                    # Busy, not dead: the solve may still be running on
                    # that shard, so no respawn and no re-route (a second
                    # shard would duplicate the work and take just as
                    # long).  Fail the request honestly instead.
                    self._record_shard_failure(worker_id)
                    raise ClusterError(str(timeout_error)) from timeout_error
                except _WorkerDied as death:
                    last_failure = str(death)
                    self._record_shard_failure(worker_id)
                    self._report_failure(handle, generation)
                    continue
                self._record_shard_ok(worker_id, rerouted=position > 0 or cycle > 0)
                return response
            cycle += 1
            if time.monotonic() > deadline:
                raise ClusterError(
                    f"no shard could answer within {self.route_timeout}s "
                    f"({attempts} attempt(s) over {len(candidates)} worker(s)): "
                    f"{last_failure}"
                )
            time.sleep(min(0.05 * cycle, 0.5))

    def _record_shard_failure(self, worker_id: int) -> None:
        with self._shard_lock:
            counters = self._shards[worker_id]
            counters.failures += 1
            counters.degraded = True

    def _record_shard_ok(self, worker_id: int, rerouted: bool) -> None:
        with self._shard_lock:
            counters = self._shards[worker_id]
            counters.forwarded += 1
            counters.degraded = False
            if rerouted:
                self._reroutes += 1

    def _record_sweep(
        self,
        worker_id: int,
        swept: int = 0,
        completed: int = 0,
        failed: int = 0,
        repartitioned: int = 0,
    ) -> None:
        """Accumulate distributed-sweep deltas onto one shard's counters."""
        with self._shard_lock:
            counters = self._shards.get(worker_id)
            if counters is None:  # pragma: no cover - defensive
                return
            counters.swept += swept
            counters.completed += completed
            counters.failed += failed
            counters.repartitioned += repartitioned

    def _report_failure(self, handle: WorkerHandle, observed_generation: int) -> None:
        """Hand a death report to the supervisor without blocking routing."""
        threading.Thread(
            target=self.supervisor.ensure_alive,
            args=(handle, observed_generation),
            daemon=True,
        ).start()

    # -- introspection ---------------------------------------------------------
    def waiting_for(self, spec: Any, backend: Optional[str] = None) -> int:
        """Duplicates currently coalesced onto a spec's in-flight forward."""
        effective = backend if backend is not None else self.backend
        key = shard_key(effective, spec.canonical_hash())
        with self._inflight_lock:
            entry = self._inflight.get(key)
            return entry.waiters if entry is not None else 0

    #: Health/metrics probes answer from memory, so a worker that cannot
    #: answer within seconds is effectively down for observability
    #: purposes -- and an unbounded probe against a wedged worker would
    #: hang the health verb (and stall a concurrent graceful stop).
    PROBE_TIMEOUT = 5.0

    def _probe(self, handle: WorkerHandle, op: str) -> Optional[dict[str, Any]]:
        """One best-effort verb round-trip to a worker (None when down)."""
        try:
            response = self._pools[handle.worker_id].request(
                {"op": op}, timeout=self.PROBE_TIMEOUT
            )
        except (_WorkerDied, _WorkerTimeout):
            return None
        if not response.get("ok"):
            return None
        return response.get(op)

    def _shard_rows(self, probe: Optional[str] = None) -> list[dict[str, Any]]:
        rows = []
        with self._shard_lock:
            counters = {
                worker_id: (
                    shard.forwarded,
                    shard.failures,
                    shard.degraded,
                    shard.sweep_row(),
                )
                for worker_id, shard in self._shards.items()
            }
        handles = self.supervisor.handles
        probes: dict[int, Optional[dict[str, Any]]] = {}
        if probe is not None:
            # Probe the shards concurrently: a wedged worker costs one
            # PROBE_TIMEOUT for the whole verb, not one per shard.
            def probe_one(handle: WorkerHandle) -> None:
                probes[handle.worker_id] = self._probe(handle, probe)

            threads = [
                threading.Thread(target=probe_one, args=(handle,), daemon=True)
                for handle in handles
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=self.PROBE_TIMEOUT + 5.0)
        for handle in handles:
            row = handle.describe()
            forwarded, failures, degraded, sweeps = counters[handle.worker_id]
            row.update(
                forwarded=forwarded, failures=failures, degraded=degraded, sweeps=sweeps
            )
            if probe is not None:
                row[probe] = probes.get(handle.worker_id)
            rows.append(row)
        return rows

    def health(self) -> dict[str, Any]:
        """Router liveness plus a per-worker ``health`` probe."""
        shards = self._shard_rows(probe="health")
        alive = sum(1 for row in shards if row["alive"])
        return {
            "status": "draining" if self.stopping else "serving",
            "role": "router",
            "backend": self.backend,
            "workers": len(shards),
            "alive": alive,
            "uptime_s": round(time.time() - self._started, 3),
            "shards": shards,
        }

    def metrics_snapshot(self) -> dict[str, Any]:
        """Router request metrics plus per-shard counters and worker metrics."""
        snapshot = self.metrics.snapshot()
        with self._shard_lock:
            coalesced = self._coalesced
            reroutes = self._reroutes
            degraded = sorted(
                worker_id for worker_id, shard in self._shards.items() if shard.degraded
            )
        snapshot["cluster"] = {
            "workers": len(self.supervisor.handles),
            "router_coalesced": coalesced,
            "reroutes": reroutes,
            "worker_restarts": sum(handle.restarts for handle in self.supervisor.handles),
            "degraded": degraded,
        }
        snapshot["transport"] = self.transport.snapshot()
        if self.supervisor.arena is not None:
            snapshot["arena"] = self.supervisor.arena.stats()
        snapshot["shards"] = self._shard_rows(probe="metrics")
        return snapshot

    def cluster_status(self) -> dict[str, Any]:
        """The one-stop shard table for ``repro cluster status``."""
        status = self.health()
        with self._shard_lock:
            status["reroutes"] = self._reroutes
            status["router_coalesced"] = self._coalesced
        status["worker_restarts"] = sum(
            handle.restarts for handle in self.supervisor.handles
        )
        return status

    # -- lifecycle -------------------------------------------------------------
    def _drain(self, timeout: Optional[float]) -> None:
        for pool in self._pools.values():
            pool.close()
        self.supervisor.stop(drain=True, timeout=timeout if timeout is not None else 30.0)


class _SweepState:
    """Shared accounting of one distributed sweep across shard threads.

    Every shard stream funnels through here: records get their global
    ``seq`` and the client's ``id`` stamped under one lock (so the wire
    order matches the sequence numbers), a completed-spec-hash set
    guards against duplicate records when a failover races a late
    delivery, and per-shard counters accumulate for the summary's
    partition table.  Emission happens under the lock too -- a slow
    client backpressures every shard reader, which is exactly the
    bounded-memory contract of the subscription bridge.
    """

    def __init__(self, router: "AsyncShardRouter", bridge: Any, request_id: Any) -> None:
        self.router = router
        self.bridge = bridge
        self.request_id = request_id
        self.lock = threading.Lock()
        self.aborted = False
        self.seq = 0
        self.errors = 0
        self.tiers: dict[str, int] = {}
        self.results: list[Any] = []
        #: Fold-mode partial records in arrival order: (worker_id, order, record).
        self.partials: list[tuple[Any, int, dict[str, Any]]] = []
        self.completed: set[str] = set()
        self.repartitioned = 0
        self.shard_stats: dict[Any, dict[str, int]] = {}

    def _shard(self, worker_id: Any) -> dict[str, int]:
        stats = self.shard_stats.get(worker_id)
        if stats is None:
            stats = self.shard_stats[worker_id] = {
                "specs": 0,
                "completed": 0,
                "failed": 0,
                "repartitioned": 0,
            }
        return stats

    def assign(self, worker_id: Any, count: int) -> None:
        with self.lock:
            self._shard(worker_id)["specs"] += count

    def unfinished(self, pairs: list[tuple[Any, str]]) -> list[tuple[Any, str]]:
        """The subset of ``pairs`` no shard has answered yet."""
        with self.lock:
            return [pair for pair in pairs if pair[1] not in self.completed]

    def on_completion(self, worker_id: Any, record: dict[str, Any]) -> None:
        """Re-sequence and forward one worker completion record."""
        from ..api.result import SolveResult

        with self.lock:
            key = record.get("key") or {}
            spec_hash = key.get("spec_hash")
            if spec_hash in self.completed:
                return  # a failover raced a late delivery: keep the first
            if isinstance(spec_hash, str):
                self.completed.add(spec_hash)
            record = dict(record)
            record["seq"] = self.seq
            self.seq += 1
            record["shard"] = worker_id
            record.pop("id", None)
            if self.request_id is not None:
                record["id"] = self.request_id
            tier = record.get("served_by", "?")
            self.tiers[tier] = self.tiers.get(tier, 0) + 1
            stats = self._shard(worker_id)
            stats["completed"] += 1
            failed = not (record.get("ok") and isinstance(record.get("result"), dict))
            if failed:
                self.errors += 1
                stats["failed"] += 1
            else:
                self.results.append(SolveResult.from_dict(record["result"]))
            self.bridge.put(record)
        self.router.core._record_sweep(
            worker_id, completed=1, failed=1 if failed else 0
        )

    def on_partial(
        self, worker_id: Any, record: dict[str, Any], partition_hashes: list[str]
    ) -> None:
        """Absorb one shard's fold-mode aggregate (covers its whole partition)."""
        records = int(record.get("records", 0))
        errors = int(record.get("errors", 0))
        with self.lock:
            self.partials.append((worker_id, len(self.partials), record))
            self.completed.update(partition_hashes)
            self.seq += records
            self.errors += errors
            for tier, count in (record.get("sources") or {}).items():
                self.tiers[tier] = self.tiers.get(tier, 0) + int(count)
            stats = self._shard(worker_id)
            stats["completed"] += records
            stats["failed"] += errors
        self.router.core._record_sweep(worker_id, completed=records, failed=errors)

    def on_repartition(self, failed_worker: Any, count: int) -> None:
        with self.lock:
            self.repartitioned += count
            self._shard(failed_worker)["repartitioned"] += count
        self.router.core._record_sweep(failed_worker, repartitioned=count)

    def partition_table(self) -> list[dict[str, Any]]:
        with self.lock:
            return [
                {"worker": worker_id, **stats}
                for worker_id, stats in sorted(
                    self.shard_stats.items(), key=lambda item: str(item[0])
                )
            ]


class AsyncShardRouter(AsyncLineServer):
    """The asyncio sharded front: the router's verbs, plus ``subscribe``.

    Composes an *unserved* :class:`ShardRouter` core -- the core binds
    an ephemeral loopback socket it never accepts on, and everything
    that matters (consistent-hash routing, router-side coalescing, ring
    failover, worker pools, shard metrics, the drain-and-merge stop)
    is reused wholesale through :meth:`ShardRouter._dispatch`.  This
    front only replaces the transport: an event loop instead of a
    thread per connection, so the router's connection ceiling scales
    exactly like the single daemon's (:mod:`repro.service.aio`).

    A ``subscribe`` suite fans out over the fleet: the unique specs are
    submitted to a bounded per-subscription thread pool, each solved
    through the core's routed (coalesced, failed-over) path, and the
    completions stream back in completion order with the same record
    shapes as the single-server verb -- summary digest included, so a
    sweep through the cluster fingerprints identically to a local run.

    A ``sweep`` suite goes further: instead of one routed solve per
    spec, the router partitions the deduplicated suite across shards by
    the ``(backend, spec_hash)`` routing key and ships each partition as
    **one** request, which the worker runs through its local batch plan
    (LRU, store, kernel batch, pool -- every tier active) while
    streaming records back over a dedicated connection per shard.  The
    router interleaves the shard streams in completion order; when a
    shard dies mid-partition its unfinished specs are re-partitioned
    along each spec's :meth:`HashRing.preference` failover order (next
    candidate per retry round, with backoff, bounded by
    ``route_timeout`` from the first failure and reset on progress), so
    an accepted sweep finishes if any worker survives.  In ``fold``
    mode the workers ship merged per-``(kind, backend)`` aggregates and
    per-result blob hashes instead of envelopes; the router merges the
    partials (deterministic worker order) and forwards one table record.

    Args:
        supervisor: the worker fleet (already started).
        host / port: bind address of the async front itself.
        sweep_fanout: per-subscription cap on concurrent routed solves.
        Remaining arguments match :class:`ShardRouter` /
        :class:`~repro.service.aio.AsyncLineServer`.
    """

    def __init__(
        self,
        supervisor: ClusterSupervisor,
        host: str = "127.0.0.1",
        port: int = 0,
        backend: str = "auto",
        worker_timeout: float = 120.0,
        route_timeout: float = 60.0,
        worker_binary: bool = True,
        sweep_fanout: int = 8,
        executor_workers: Optional[int] = None,
        subscription_queue_max: Optional[int] = None,
        connection_sndbuf: Optional[int] = None,
    ) -> None:
        self.core = ShardRouter(
            supervisor,
            host="127.0.0.1",
            port=0,
            backend=backend,
            worker_timeout=worker_timeout,
            route_timeout=route_timeout,
            worker_binary=worker_binary,
        )
        self.sweep_fanout = max(1, int(sweep_fanout))
        super().__init__(
            host=host,
            port=port,
            executor_workers=executor_workers,
            subscription_queue_max=subscription_queue_max,
            connection_sndbuf=connection_sndbuf,
        )

    @property
    def supervisor(self) -> ClusterSupervisor:
        return self.core.supervisor

    @property
    def backend(self) -> str:
        return self.core.backend

    def answer_request(self, data: Any) -> dict[str, Any]:
        if not isinstance(data, dict):
            return error_response(
                "?", ReproError(f"request must be a JSON object, got {type(data).__name__}")
            )
        op, data, request_id = normalize_request(data)
        if op in (SUBSCRIBE_OP, SWEEP_OP):  # only reachable through handle_request-less path
            return error_response(
                op,
                ReproError(f"{op} must be served by the streaming transport"),
                request_id,
            )
        response = self.core._dispatch(op, data, request_id)
        if response.get("op") == "metrics" and response.get("ok"):
            metrics = response.get("metrics")
            if isinstance(metrics, dict):
                # The core's transport counters are all zeros (its socket
                # never accepts); report the async front's wire instead.
                metrics["transport"] = self.transport.snapshot()
                metrics["subscriptions"] = self.subscription_stats()
        return response

    # -- the subscribe + sweep verbs -------------------------------------------
    def subscribe_open(self, data: dict[str, Any], request_id: Any) -> tuple[Any, dict]:
        if data.get("op") == SWEEP_OP:
            return self._sweep_open(data, request_id)
        specs, backend = parse_subscribe(data)
        effective = backend if backend is not None else self.core.backend
        seen: set[str] = set()
        unique: list[Any] = []
        for spec in specs:
            key = shard_key(effective, spec.canonical_hash())
            if key not in seen:
                seen.add(key)
                unique.append(spec)
        ack = subscribe_ack(
            request_id,
            len(specs),
            len(unique),
            effective,
            fanout=min(self.sweep_fanout, len(unique)),
        )
        return ("subscribe", unique, effective, request_id, len(specs)), ack

    def _sweep_open(self, data: dict[str, Any], request_id: Any) -> tuple[Any, dict]:
        specs, backend, mode = parse_sweep(data)
        if not self.core.supervisor.async_workers:
            # Threaded workers are request/response only -- they cannot
            # stream a partition back.  Refuse up front instead of
            # failing over forever against a fleet that will never answer.
            raise ClusterError(
                "distributed sweep needs asyncio workers; start the fleet "
                "with `repro serve --workers N --async`"
            )
        effective = backend if backend is not None else self.core.backend
        ring = self.core.ring
        partitions, total, unique = partition_specs(
            specs,
            effective,
            lambda spec_hash: ring.lookup(shard_key(effective, spec_hash)),
        )
        partition_rows = [
            {"worker": partition.node, "specs": len(partition.specs)}
            for partition in partitions
        ]
        for partition in partitions:
            self.core._record_sweep(partition.node, swept=len(partition.specs))
        ack = sweep_ack(
            request_id,
            total,
            unique,
            effective,
            mode,
            fanout=len(partitions),
            partitions=partition_rows,
        )
        return ("sweep", partitions, effective, request_id, total, unique, mode), ack

    def _sweep_one(self, spec: Any, effective: str) -> dict[str, Any]:
        """One routed solve of a subscription; never raises."""
        try:
            return self.core._route_solve(
                {"spec": spec.to_dict(), "backend": effective}, None
            )
        except Exception as error:  # noqa: BLE001 - becomes a failed record
            return error_response("solve", error)

    def subscribe_pump(self, job: Any, bridge: Any) -> None:
        if job[0] == "sweep":
            self._sweep_pump(job, bridge)
        else:
            self._subscribe_pump(job, bridge)

    def _subscribe_pump(self, job: Any, bridge: Any) -> None:
        from concurrent.futures import ThreadPoolExecutor, as_completed

        from ..api.result import SolveResult
        from ..experiments.manifest import fingerprint_digest

        _, unique, effective, request_id, total = job
        started = time.perf_counter()
        seq = 0
        errors = 0
        sources: dict[str, int] = {}
        results: list[Any] = []
        aborted = False
        with ThreadPoolExecutor(
            max_workers=min(self.sweep_fanout, len(unique)),
            thread_name_prefix="repro-sweep",
        ) as pool:
            futures = {
                pool.submit(self._sweep_one, spec, effective): spec for spec in unique
            }
            for future in as_completed(futures):
                if self.stopping:
                    aborted = True
                    for pending in futures:
                        pending.cancel()
                    bridge.put(
                        error_response(
                            SUBSCRIBE_OP,
                            ClusterError("router is shutting down, subscription aborted"),
                            request_id,
                        )
                    )
                    break
                spec = futures[future]
                response = materialize_raw(future.result())
                record: dict[str, Any] = {
                    "ok": bool(response.get("ok")),
                    "op": COMPLETION_OP,
                    "seq": seq,
                    "key": {"backend": effective, "spec_hash": spec.canonical_hash()},
                    "served_by": response.get("served_by", "cluster"),
                    "latency_ms": response.get("latency_ms", 0.0),
                }
                seq += 1
                if response.get("ok"):
                    record["result"] = response["result"]
                    results.append(SolveResult.from_dict(response["result"]))
                    source = response.get("served_by", "cluster")
                    sources[source] = sources.get(source, 0) + 1
                else:
                    errors += 1
                    record["served_by"] = "cluster"
                    record["error"] = response.get("error", "routed solve failed")
                    record["error_type"] = response.get("error_type", "ClusterError")
                    sources["error"] = sources.get("error", 0) + 1
                if request_id is not None:
                    record["id"] = request_id
                bridge.put(record)
        if aborted:
            return
        bridge.put(
            subscribe_summary(
                request_id,
                records=seq,
                errors=errors,
                total=total,
                unique=len(unique),
                fingerprint_digest=fingerprint_digest(results),
                sources=sources,
                wall_time_ms=(time.perf_counter() - started) * 1e3,
            )
        )

    # -- the distributed sweep -------------------------------------------------
    def _run_shard_sweep(
        self,
        state: _SweepState,
        worker_id: int,
        pairs: list[tuple[Any, str]],
        effective: str,
        mode: str,
    ) -> list[tuple[Any, str]]:
        """Run one partition on one worker over a dedicated stream.

        The worker pools are strict request/response (a pooled
        connection must never carry a multi-record stream), so each
        partition opens its own JSON-Lines connection for the sweep's
        lifetime.  Returns the ``(spec, hash)`` pairs still unanswered
        when the stream ends -- empty on success, the unfinished tail on
        a death (reported to the supervisor for a background respawn).
        """
        core = self.core
        handle = core.supervisor.handles[worker_id]
        generation = handle.generation
        host, port = handle.host, handle.port
        try:
            if host is None or port is None:
                raise _WorkerDied(f"worker {worker_id} has no address")
            conn = socket.create_connection((host, port), timeout=core.worker_timeout)
        except (OSError, _WorkerDied):
            core._record_shard_failure(worker_id)
            core._report_failure(handle, generation)
            return state.unfinished(pairs)
        partition_hashes = [spec_hash for _, spec_hash in pairs]
        try:
            with conn:
                conn.settimeout(core.worker_timeout)
                reader = conn.makefile("rb")
                request = {
                    "op": SWEEP_OP,
                    "mode": "fold" if mode == "fold" else "stream",
                    "backend": effective,
                    "specs": [spec.to_dict() for spec, _ in pairs],
                }
                line = json.dumps(request, sort_keys=True, separators=(",", ":"), allow_nan=False)
                conn.sendall((line + "\n").encode("utf-8"))
                raw = reader.readline()
                ack = json.loads(raw.decode("utf-8")) if raw else None
                if not isinstance(ack, dict) or not ack.get("ok"):
                    detail = ack.get("error") if isinstance(ack, dict) else "no ack"
                    raise _WorkerDied(f"worker {worker_id} refused the sweep: {detail}")
                while True:
                    if state.aborted or self.stopping:
                        return []  # the pump reports the abort, not the shard
                    raw = reader.readline()
                    if not raw:
                        raise _WorkerDied(
                            f"worker {worker_id} closed its stream mid-partition"
                        )
                    record = json.loads(raw.decode("utf-8"))
                    if not isinstance(record, dict):
                        raise _WorkerDied(
                            f"worker {worker_id} streamed a non-object record"
                        )
                    op = record.get("op")
                    if op == COMPLETION_OP:
                        state.on_completion(worker_id, record)
                    elif op == PARTIAL_OP and record.get("ok"):
                        state.on_partial(worker_id, record, partition_hashes)
                    elif op == SUMMARY_OP:
                        if not record.get("ok"):
                            raise _WorkerDied(
                                f"worker {worker_id} failed its partition: "
                                f"{record.get('error', 'unknown error')}"
                            )
                        break
                    elif not record.get("ok"):
                        raise _WorkerDied(
                            f"worker {worker_id} aborted its partition: "
                            f"{record.get('error', 'unknown error')}"
                        )
        except (OSError, ValueError, _WorkerDied):
            core._record_shard_failure(worker_id)
            core._report_failure(handle, generation)
            return state.unfinished(pairs)
        core._record_shard_ok(worker_id, rerouted=False)
        return []

    def _sweep_pump(self, job: Any, bridge: Any) -> None:
        """Drive one distributed sweep: fan out partitions, merge, fail over.

        Retry rounds are barriers: a spec is only re-assigned after the
        stream that owned it ended, so within a round the in-flight
        partitions are disjoint by spec hash.  Round ``r`` re-assigns an
        unfinished spec to ``preference[r % len]`` of its routing key --
        the ring's deterministic failover order, cycling back to the
        (respawned) home shard on a full lap.  The failover budget is
        ``route_timeout`` from the first failure, reset whenever a round
        makes progress; exhausting it aborts the sweep with an ``ok:
        false`` record, exactly like a routed solve that ran out of
        shards.
        """
        from concurrent.futures import ThreadPoolExecutor, as_completed

        from ..analysis.streaming import EnvelopeAggregate
        from ..experiments.manifest import digest_blob_hashes, fingerprint_digest

        _, partitions, effective, request_id, total, unique, mode = job
        started = time.perf_counter()
        state = _SweepState(self, bridge, request_id)
        assignments: list[tuple[Any, list[tuple[Any, str]]]] = [
            (partition.node, list(zip(partition.specs, partition.hashes)))
            for partition in partitions
        ]
        for worker_id, pairs in assignments:
            state.assign(worker_id, len(pairs))
        ring = self.core.ring
        deadline: Optional[float] = None
        round_index = 0
        while assignments:
            if self.stopping:
                state.aborted = True
                bridge.put(
                    error_response(
                        SWEEP_OP,
                        ClusterError("router is shutting down, sweep aborted"),
                        request_id,
                    )
                )
                return
            progress_before = state.seq
            with ThreadPoolExecutor(
                max_workers=max(1, len(assignments)),
                thread_name_prefix="repro-sweep-shard",
            ) as pool:
                futures = {
                    pool.submit(
                        self._run_shard_sweep, state, worker_id, pairs, effective, mode
                    ): worker_id
                    for worker_id, pairs in assignments
                }
                leftovers: list[tuple[Any, list[tuple[Any, str]]]] = []
                for future in as_completed(futures):
                    unfinished = future.result()
                    if unfinished:
                        leftovers.append((futures[future], unfinished))
            if self.stopping:
                continue  # the loop head reports the abort
            if not leftovers:
                break
            now = time.monotonic()
            if state.seq > progress_before:
                deadline = None  # the fleet is advancing: reset the budget
            if deadline is None:
                deadline = now + self.core.route_timeout
            elif now > deadline:
                state.aborted = True
                stranded = sum(len(pairs) for _, pairs in leftovers)
                bridge.put(
                    error_response(
                        SWEEP_OP,
                        ClusterError(
                            f"sweep made no progress within {self.core.route_timeout}s "
                            f"of the last shard failure; {stranded} spec(s) unfinished"
                        ),
                        request_id,
                    )
                )
                return
            round_index += 1
            regrouped: dict[Any, list[tuple[Any, str]]] = {}
            for failed_worker, pairs in leftovers:
                state.on_repartition(failed_worker, len(pairs))
                for spec, spec_hash in pairs:
                    candidates = ring.preference(shard_key(effective, spec_hash))
                    target = candidates[round_index % len(candidates)]
                    regrouped.setdefault(target, []).append((spec, spec_hash))
            assignments = sorted(regrouped.items(), key=lambda item: str(item[0]))
            for worker_id, pairs in assignments:
                state.assign(worker_id, len(pairs))
                self.core._record_sweep(worker_id, swept=len(pairs))
            # Ride out a single-worker respawn exactly like _forward does.
            time.sleep(min(0.1 * round_index, 0.5))
        wall_time_ms = (time.perf_counter() - started) * 1e3
        if mode == "fold":
            merged = EnvelopeAggregate()
            blob_hashes: set[str] = set()
            failures: list[dict[str, Any]] = []
            # Deterministic merge order (worker id, then arrival) so the
            # folded moments are reproducible run to run.
            for _, _, record in sorted(
                state.partials, key=lambda item: (str(item[0]), item[1])
            ):
                merged.merge(EnvelopeAggregate.from_wire(record.get("fold") or {}))
                blob_hashes.update(record.get("blob_hashes") or [])
                failures.extend(record.get("failures") or [])
            # blob_hashes=None: the hashes stay router-side; the client
            # gets the fold_digest in the summary as its proof.
            bridge.put(
                sweep_partial(
                    request_id,
                    fold=merged.to_wire(),
                    blob_hashes=None,
                    sources=state.tiers,
                    records=state.seq,
                    errors=state.errors,
                    failures=failures or None,
                )
            )
            digests = {"fold_digest": digest_blob_hashes(blob_hashes)}
        else:
            digests = {"fingerprint_digest": fingerprint_digest(state.results)}
        bridge.put(
            sweep_summary(
                request_id,
                records=state.seq,
                errors=state.errors,
                total=total,
                unique=unique,
                mode=mode,
                tiers=state.tiers,
                wall_time_ms=wall_time_ms,
                partitions=state.partition_table(),
                repartitioned=state.repartitioned,
                **digests,
            )
        )

    # -- lifecycle -------------------------------------------------------------
    def _drain(self, timeout: Optional[float]) -> None:
        # The core was never served: its stop() skips the serve loop and
        # goes straight to closing the pools and draining the fleet.
        self.core.stop(drain_timeout=timeout)


def boot_router(
    supervisor: ClusterSupervisor, use_async: bool = False, **router_kwargs: Any
) -> "ShardRouter | AsyncShardRouter":
    """Start a fleet and build its router, leak-proof on failure.

    The workers are detached processes; any failure between spawning
    them and having a router that can stop them would otherwise leave
    the fleet running unsupervised.  Every caller (CLI, benchmark,
    smoke) boots through here so that invariant lives in one place.
    ``use_async`` boots the asyncio front (:class:`AsyncShardRouter`)
    instead of the thread-per-connection router.
    """
    try:
        supervisor.start()
        if use_async:
            return AsyncShardRouter(supervisor, **router_kwargs)
        return ShardRouter(supervisor, **router_kwargs)
    except BaseException:
        supervisor.stop(drain=False)
        raise
