"""The shard router: one front daemon over N worker daemons.

A :class:`ShardRouter` is a :class:`~repro.service.daemon.GracefulLineServer`
that speaks **exactly** the JSON-Lines wire format of
:mod:`repro.service.protocol` -- clients cannot tell a router from a
single daemon -- but answers ``solve`` requests by consistent-hashing
``(backend, spec_hash)`` onto a supervised worker fleet and proxying
the line over a pooled connection.  What the router adds on top of
plain proxying:

* **router-side coalescing** -- concurrent identical requests cost one
  shard round-trip: the first arrival forwards, every overlapping
  duplicate shares the leader's response (with its own ``id``), exactly
  the :class:`~repro.service.service.SolverService` rendezvous pattern
  one level up the topology;
* **failover** -- a dead worker is reported to the supervisor (which
  respawns it, single-flight) while the request is re-routed along the
  ring's preference order; with every worker down the router keeps
  retrying until ``route_timeout`` before answering ``ok: false``.  A
  re-routed solve is safe because the backends are deterministic:
  any worker produces the bit-identical envelope;
* **shard metrics** -- per-shard forwarded/failure/degraded counters
  (the ``metrics`` verb) and per-worker health probes (the ``health``
  and ``cluster-status`` verbs).

The router holds no solver state at all; stopping it drains the fleet
(every worker flushes its store segments) and merges the worker stores
back into the primary, so a warm restart replays from one store.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Any, Optional

from ..errors import ClusterError, ReproError
from ..service.aio import AsyncLineServer
from ..service.daemon import GracefulLineServer
from ..service.frames import (
    FORMAT_BINARY,
    HELLO_OP,
    FrameError,
    decode_payload,
    encode_frame,
    materialize_raw,
    read_frame,
)
from ..service.metrics import ServiceMetrics
from ..service.protocol import (
    COMPLETION_OP,
    SHUTDOWN_OP,
    SUBSCRIBE_OP,
    decode_request,
    error_response,
    hello_response,
    normalize_request,
    parse_subscribe,
    subscribe_ack,
    subscribe_summary,
)
from .hashing import HashRing, shard_key
from .worker import ClusterSupervisor, WorkerHandle

__all__ = ["AsyncShardRouter", "ShardRouter", "CLUSTER_STATUS_OP", "boot_router"]

#: Router-only verb: one document with the shard table, health and
#: restart counters (the ``repro cluster status`` CLI reads it).
CLUSTER_STATUS_OP = "cluster-status"


class _WorkerDied(Exception):
    """A round-trip to a worker failed mid-request (connect, write or read)."""


class _WorkerTimeout(Exception):
    """A worker accepted the request but did not answer within the budget.

    Deliberately distinct from :class:`_WorkerDied`: the worker is busy,
    not gone -- re-routing would duplicate a solve that is still
    running, and respawning would kill it.  The request fails honestly
    instead.
    """


class _InFlight:
    """Rendezvous between one forwarded solve and its coalesced duplicates."""

    __slots__ = ("event", "response", "waiters")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: Optional[dict[str, Any]] = None
        #: Duplicates currently parked on this forward (under the
        #: router's in-flight lock); lets tests observe joins before
        #: the leader's round-trip completes.
        self.waiters = 0


#: Worker-response keys the router forwards as opaque byte spans on the
#: binary path instead of materialising them (``result`` dominates the
#: response; everything around it is a handful of scalars).
_RAW_KEYS = frozenset({"result"})


class _WorkerPool:
    """A small pool of persistent connections to one worker.

    Connections are tagged with the worker generation they were opened
    against; a respawned worker (new port, new process) invalidates
    every pooled connection of older generations.  With ``binary`` the
    pool offers the ``hello`` upgrade on every fresh connection and
    remembers per connection what was negotiated, so a fleet of old
    workers degrades to JSON transparently.
    """

    def __init__(self, handle: WorkerHandle, timeout: float, binary: bool = True) -> None:
        self.handle = handle
        self.timeout = timeout
        self.binary = binary
        self._lock = threading.Lock()
        self._idle: list[tuple[int, socket.socket, Any, bool]] = []

    def _connect(self) -> tuple[int, socket.socket, Any, bool]:
        generation = self.handle.generation
        host, port = self.handle.host, self.handle.port
        if host is None or port is None:
            raise _WorkerDied(f"worker {self.handle.worker_id} has no address")
        try:
            conn = socket.create_connection((host, port), timeout=self.timeout)
        except OSError as error:
            raise _WorkerDied(
                f"worker {self.handle.worker_id} refused a connection: {error}"
            ) from error
        reader = conn.makefile("rb")
        is_binary = False
        if self.binary:
            try:
                hello = json.dumps({"op": HELLO_OP, "format": FORMAT_BINARY})
                conn.sendall((hello + "\n").encode("utf-8"))
                raw = reader.readline()
                answer = json.loads(raw.decode("utf-8")) if raw else {}
                is_binary = bool(
                    isinstance(answer, dict)
                    and answer.get("ok")
                    and answer.get("format") == FORMAT_BINARY
                )
            except (OSError, ValueError) as error:
                conn.close()
                raise _WorkerDied(
                    f"worker {self.handle.worker_id} failed the hello round-trip: {error}"
                ) from error
        return generation, conn, reader, is_binary

    def request(self, data: dict[str, Any], timeout: Optional[float] = None) -> dict[str, Any]:
        """One round-trip: send a request object, read one response object.

        ``timeout`` caps this round-trip only (the pool default
        otherwise).  A timed-out read raises :class:`_WorkerTimeout`
        (busy worker, request failed), any other socket failure raises
        :class:`_WorkerDied` (dead worker, caller may fail over).  On a
        binary connection the response's ``result`` comes back as a
        :class:`~repro.service.frames.Raw` span, ready to forward
        without re-encoding.
        """
        with self._lock:
            while self._idle:
                generation, conn, reader, is_binary = self._idle.pop()
                if generation == self.handle.generation:
                    break
                conn.close()
            else:
                conn = None
        if conn is None:
            generation, conn, reader, is_binary = self._connect()
        try:
            conn.settimeout(timeout if timeout is not None else self.timeout)
            if is_binary:
                conn.sendall(encode_frame(data))
                payload = read_frame(reader)
            else:
                line = json.dumps(data, sort_keys=True, separators=(",", ":"))
                conn.sendall((line + "\n").encode("utf-8"))
                payload = reader.readline()
        except TimeoutError as error:
            # The connection is desynced (an answer may still arrive);
            # it must not be reused.
            conn.close()
            raise _WorkerTimeout(
                f"worker {self.handle.worker_id} did not answer within "
                f"{timeout if timeout is not None else self.timeout}s"
            ) from error
        except FrameError as error:
            conn.close()
            raise _WorkerDied(
                f"worker {self.handle.worker_id} answered a broken frame: {error}"
            ) from error
        except OSError as error:
            conn.close()
            raise _WorkerDied(
                f"worker {self.handle.worker_id} dropped mid-request: {error}"
            ) from error
        if not payload:
            conn.close()
            raise _WorkerDied(f"worker {self.handle.worker_id} closed mid-request")
        with self._lock:
            self._idle.append((generation, conn, reader, is_binary))
        try:
            if is_binary:
                response = decode_payload(payload, raw_keys=_RAW_KEYS)
            else:
                response = json.loads(payload.decode("utf-8"))
        except (FrameError, json.JSONDecodeError, UnicodeDecodeError) as error:
            raise _WorkerDied(
                f"worker {self.handle.worker_id} answered a malformed response: {error}"
            ) from error
        if not isinstance(response, dict):
            raise _WorkerDied(f"worker {self.handle.worker_id} answered a non-object")
        return response

    def close(self) -> None:
        with self._lock:
            for _, conn, _, _ in self._idle:
                conn.close()
            self._idle.clear()


class _ShardCounters:
    """Per-shard routing counters (the router's own view of one worker)."""

    __slots__ = ("forwarded", "failures", "degraded")

    def __init__(self) -> None:
        self.forwarded = 0
        self.failures = 0
        #: True from an observed failure until the next successful
        #: round-trip -- "this shard recently lost a request".
        self.degraded = False


class ShardRouter(GracefulLineServer):
    """The sharded serving front: routes, coalesces, fails over.

    Args:
        supervisor: the worker fleet (already started).
        host / port: bind address of the router itself.
        backend: default backend for requests that don't name one --
            part of the routing key, so it must be pinned router-side.
        worker_timeout: per-round-trip socket timeout against a worker.
        route_timeout: total time a request may spend cycling the ring
            (including waiting out worker respawns) before ``ok: false``.
        worker_binary: offer the binary-frame upgrade on router->worker
            connections (on by default; old workers degrade to JSON).
    """

    def __init__(
        self,
        supervisor: ClusterSupervisor,
        host: str = "127.0.0.1",
        port: int = 0,
        backend: str = "auto",
        worker_timeout: float = 120.0,
        route_timeout: float = 60.0,
        worker_binary: bool = True,
    ) -> None:
        self.supervisor = supervisor
        self.backend = backend
        self.worker_timeout = worker_timeout
        self.route_timeout = route_timeout
        self.worker_binary = worker_binary
        self.ring = HashRing([handle.worker_id for handle in supervisor.handles])
        self.metrics = ServiceMetrics()
        self._pools = {
            handle.worker_id: _WorkerPool(handle, worker_timeout, binary=worker_binary)
            for handle in supervisor.handles
        }
        self._shards = {handle.worker_id: _ShardCounters() for handle in supervisor.handles}
        self._shard_lock = threading.Lock()
        self._inflight: dict[str, _InFlight] = {}
        self._inflight_lock = threading.Lock()
        self._coalesced = 0
        self._reroutes = 0
        self._started = time.time()
        super().__init__(host=host, port=port)

    # -- the wire --------------------------------------------------------------
    def answer_line(self, line: str) -> dict[str, Any]:
        data, decode_error = decode_request(line)
        if decode_error is not None:
            return decode_error
        op, data, request_id = normalize_request(data)
        # JSON clients must never see a Raw span a binary worker
        # answered with; binary clients (answer_frame) forward it as-is.
        return materialize_raw(self._dispatch(op, data, request_id))

    def answer_frame(self, data: Any) -> dict[str, Any]:
        if not isinstance(data, dict):
            return error_response(
                "?", ReproError(f"request must be an object, got {type(data).__name__}")
            )
        op, data, request_id = normalize_request(data)
        return self._dispatch(op, data, request_id)

    def _dispatch(self, op: Any, data: dict[str, Any], request_id: Any) -> dict[str, Any]:
        try:
            if op == "solve":
                return self._route_solve(data, request_id)
            if op == "health":
                return {"ok": True, "op": "health", "health": self.health()}
            if op == "metrics":
                return {"ok": True, "op": "metrics", "metrics": self.metrics_snapshot()}
            if op == HELLO_OP:
                return hello_response(data, request_id)
            if op == CLUSTER_STATUS_OP:
                return {"ok": True, "op": CLUSTER_STATUS_OP, "cluster": self.cluster_status()}
            if op == SHUTDOWN_OP:
                return {"ok": True, "op": SHUTDOWN_OP, "stopping": True}
            raise ReproError(
                f"unknown op {op!r}; expected solve, health, metrics, {HELLO_OP}, "
                f"{CLUSTER_STATUS_OP} or {SHUTDOWN_OP}"
            )
        except Exception as error:  # noqa: BLE001 - a request must never kill the stream
            return error_response(str(op), error, request_id)

    # -- solve routing ---------------------------------------------------------
    def _route_solve(self, data: dict[str, Any], request_id: Any) -> dict[str, Any]:
        from ..api.spec import spec_from_dict

        started = time.perf_counter()
        spec_data = data.get("spec")
        if not isinstance(spec_data, dict):
            raise ReproError('solve request needs a "spec" object')
        backend = data.get("backend")
        if backend is not None and not isinstance(backend, str):
            raise ReproError('"backend" must be a string backend name')
        effective = backend if backend is not None else self.backend
        spec = spec_from_dict(spec_data)
        key = shard_key(effective, spec.canonical_hash())
        # The forwarded line is normalised: no id (the leader and every
        # coalesced duplicate stamp their own onto a shared response)
        # and the backend always explicit -- the request was keyed and
        # coalesced under the *router's* effective backend, so the
        # worker must not substitute its own default.
        forward: dict[str, Any] = {"op": "solve", "spec": spec_data, "backend": effective}

        with self._inflight_lock:
            entry = self._inflight.get(key)
            leader = entry is None
            if leader:
                entry = self._inflight[key] = _InFlight()
            else:
                entry.waiters += 1
        if not leader:
            # Unbounded, like SolverService followers: the leader's
            # finally below *always* resolves the entry, and the leader
            # itself is bounded by the routing deadline.
            entry.event.wait()
            response = entry.response
            if response is None:  # pragma: no cover - defensive
                raise ClusterError("coalesced request never received its answer")
            latency = time.perf_counter() - started
            with self._shard_lock:
                self._coalesced += 1
            # Mirror the leader's accounting: a shared failure is an
            # error for every duplicate too, not an answered request.
            if response.get("ok"):
                self.metrics.record(effective, "coalesced", latency)
            else:
                self.metrics.record_error(effective, latency)
            return self._stamp(response, request_id)

        try:
            response = self._forward(key, forward)
            entry.response = response
        except BaseException as error:
            # The leader's failure must count too (followers mirror it):
            # a dead fleet otherwise reports zero errors while every
            # client is told ok:false.
            self.metrics.record_error(effective, time.perf_counter() - started)
            entry.response = error_response("solve", error)
            raise
        finally:
            with self._inflight_lock:
                self._inflight.pop(key, None)
            entry.event.set()

        latency = time.perf_counter() - started
        if response.get("ok"):
            self.metrics.record(effective, response.get("served_by", "solve"), latency)
        else:
            self.metrics.record_error(effective, latency)
        return self._stamp(response, request_id)

    @staticmethod
    def _stamp(response: dict[str, Any], request_id: Any) -> dict[str, Any]:
        """A caller-specific copy of a (possibly shared) response."""
        stamped = dict(response)
        stamped.pop("id", None)
        if request_id is not None:
            stamped["id"] = request_id
        return stamped

    def _forward(self, key: str, forward: dict[str, Any]) -> dict[str, Any]:
        """Send one request to the key's home shard, failing over along the ring.

        An accepted request is never dropped while any worker can be
        reached (or respawned) within ``route_timeout``: every failure
        is reported to the supervisor (which respawns the worker in the
        background) and the request moves to the next shard in the
        key's deterministic preference order, cycling with a small
        backoff so a single-worker cluster rides out its own respawn.
        """
        candidates = self.ring.preference(key)
        # ``route_timeout`` bounds the *failover cycling* over dead
        # workers; each individual round-trip gets the full
        # ``worker_timeout`` -- a solve legitimately slower than the
        # routing deadline must still succeed, exactly as it would
        # against the single-process daemon.
        deadline = time.monotonic() + self.route_timeout
        cycle = 0
        attempts = 0
        last_failure: Optional[str] = None
        while True:
            for position, worker_id in enumerate(candidates):
                if attempts and time.monotonic() > deadline:
                    break  # at least one attempt always runs
                handle = self.supervisor.handles[worker_id]
                generation = handle.generation
                attempts += 1
                try:
                    response = self._pools[worker_id].request(forward)
                except _WorkerTimeout as timeout_error:
                    # Busy, not dead: the solve may still be running on
                    # that shard, so no respawn and no re-route (a second
                    # shard would duplicate the work and take just as
                    # long).  Fail the request honestly instead.
                    self._record_shard_failure(worker_id)
                    raise ClusterError(str(timeout_error)) from timeout_error
                except _WorkerDied as death:
                    last_failure = str(death)
                    self._record_shard_failure(worker_id)
                    self._report_failure(handle, generation)
                    continue
                self._record_shard_ok(worker_id, rerouted=position > 0 or cycle > 0)
                return response
            cycle += 1
            if time.monotonic() > deadline:
                raise ClusterError(
                    f"no shard could answer within {self.route_timeout}s "
                    f"({attempts} attempt(s) over {len(candidates)} worker(s)): "
                    f"{last_failure}"
                )
            time.sleep(min(0.05 * cycle, 0.5))

    def _record_shard_failure(self, worker_id: int) -> None:
        with self._shard_lock:
            counters = self._shards[worker_id]
            counters.failures += 1
            counters.degraded = True

    def _record_shard_ok(self, worker_id: int, rerouted: bool) -> None:
        with self._shard_lock:
            counters = self._shards[worker_id]
            counters.forwarded += 1
            counters.degraded = False
            if rerouted:
                self._reroutes += 1

    def _report_failure(self, handle: WorkerHandle, observed_generation: int) -> None:
        """Hand a death report to the supervisor without blocking routing."""
        threading.Thread(
            target=self.supervisor.ensure_alive,
            args=(handle, observed_generation),
            daemon=True,
        ).start()

    # -- introspection ---------------------------------------------------------
    def waiting_for(self, spec: Any, backend: Optional[str] = None) -> int:
        """Duplicates currently coalesced onto a spec's in-flight forward."""
        effective = backend if backend is not None else self.backend
        key = shard_key(effective, spec.canonical_hash())
        with self._inflight_lock:
            entry = self._inflight.get(key)
            return entry.waiters if entry is not None else 0

    #: Health/metrics probes answer from memory, so a worker that cannot
    #: answer within seconds is effectively down for observability
    #: purposes -- and an unbounded probe against a wedged worker would
    #: hang the health verb (and stall a concurrent graceful stop).
    PROBE_TIMEOUT = 5.0

    def _probe(self, handle: WorkerHandle, op: str) -> Optional[dict[str, Any]]:
        """One best-effort verb round-trip to a worker (None when down)."""
        try:
            response = self._pools[handle.worker_id].request(
                {"op": op}, timeout=self.PROBE_TIMEOUT
            )
        except (_WorkerDied, _WorkerTimeout):
            return None
        if not response.get("ok"):
            return None
        return response.get(op)

    def _shard_rows(self, probe: Optional[str] = None) -> list[dict[str, Any]]:
        rows = []
        with self._shard_lock:
            counters = {
                worker_id: (shard.forwarded, shard.failures, shard.degraded)
                for worker_id, shard in self._shards.items()
            }
        handles = self.supervisor.handles
        probes: dict[int, Optional[dict[str, Any]]] = {}
        if probe is not None:
            # Probe the shards concurrently: a wedged worker costs one
            # PROBE_TIMEOUT for the whole verb, not one per shard.
            def probe_one(handle: WorkerHandle) -> None:
                probes[handle.worker_id] = self._probe(handle, probe)

            threads = [
                threading.Thread(target=probe_one, args=(handle,), daemon=True)
                for handle in handles
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=self.PROBE_TIMEOUT + 5.0)
        for handle in handles:
            row = handle.describe()
            forwarded, failures, degraded = counters[handle.worker_id]
            row.update(forwarded=forwarded, failures=failures, degraded=degraded)
            if probe is not None:
                row[probe] = probes.get(handle.worker_id)
            rows.append(row)
        return rows

    def health(self) -> dict[str, Any]:
        """Router liveness plus a per-worker ``health`` probe."""
        shards = self._shard_rows(probe="health")
        alive = sum(1 for row in shards if row["alive"])
        return {
            "status": "draining" if self.stopping else "serving",
            "role": "router",
            "backend": self.backend,
            "workers": len(shards),
            "alive": alive,
            "uptime_s": round(time.time() - self._started, 3),
            "shards": shards,
        }

    def metrics_snapshot(self) -> dict[str, Any]:
        """Router request metrics plus per-shard counters and worker metrics."""
        snapshot = self.metrics.snapshot()
        with self._shard_lock:
            coalesced = self._coalesced
            reroutes = self._reroutes
            degraded = sorted(
                worker_id for worker_id, shard in self._shards.items() if shard.degraded
            )
        snapshot["cluster"] = {
            "workers": len(self.supervisor.handles),
            "router_coalesced": coalesced,
            "reroutes": reroutes,
            "worker_restarts": sum(handle.restarts for handle in self.supervisor.handles),
            "degraded": degraded,
        }
        snapshot["transport"] = self.transport.snapshot()
        if self.supervisor.arena is not None:
            snapshot["arena"] = self.supervisor.arena.stats()
        snapshot["shards"] = self._shard_rows(probe="metrics")
        return snapshot

    def cluster_status(self) -> dict[str, Any]:
        """The one-stop shard table for ``repro cluster status``."""
        status = self.health()
        with self._shard_lock:
            status["reroutes"] = self._reroutes
            status["router_coalesced"] = self._coalesced
        status["worker_restarts"] = sum(
            handle.restarts for handle in self.supervisor.handles
        )
        return status

    # -- lifecycle -------------------------------------------------------------
    def _drain(self, timeout: Optional[float]) -> None:
        for pool in self._pools.values():
            pool.close()
        self.supervisor.stop(drain=True, timeout=timeout if timeout is not None else 30.0)


class AsyncShardRouter(AsyncLineServer):
    """The asyncio sharded front: the router's verbs, plus ``subscribe``.

    Composes an *unserved* :class:`ShardRouter` core -- the core binds
    an ephemeral loopback socket it never accepts on, and everything
    that matters (consistent-hash routing, router-side coalescing, ring
    failover, worker pools, shard metrics, the drain-and-merge stop)
    is reused wholesale through :meth:`ShardRouter._dispatch`.  This
    front only replaces the transport: an event loop instead of a
    thread per connection, so the router's connection ceiling scales
    exactly like the single daemon's (:mod:`repro.service.aio`).

    A ``subscribe`` suite fans out over the fleet: the unique specs are
    submitted to a bounded per-subscription thread pool, each solved
    through the core's routed (coalesced, failed-over) path, and the
    completions stream back in completion order with the same record
    shapes as the single-server verb -- summary digest included, so a
    sweep through the cluster fingerprints identically to a local run.

    Args:
        supervisor: the worker fleet (already started).
        host / port: bind address of the async front itself.
        sweep_fanout: per-subscription cap on concurrent routed solves.
        Remaining arguments match :class:`ShardRouter` /
        :class:`~repro.service.aio.AsyncLineServer`.
    """

    def __init__(
        self,
        supervisor: ClusterSupervisor,
        host: str = "127.0.0.1",
        port: int = 0,
        backend: str = "auto",
        worker_timeout: float = 120.0,
        route_timeout: float = 60.0,
        worker_binary: bool = True,
        sweep_fanout: int = 8,
        executor_workers: Optional[int] = None,
        subscription_queue_max: Optional[int] = None,
        connection_sndbuf: Optional[int] = None,
    ) -> None:
        self.core = ShardRouter(
            supervisor,
            host="127.0.0.1",
            port=0,
            backend=backend,
            worker_timeout=worker_timeout,
            route_timeout=route_timeout,
            worker_binary=worker_binary,
        )
        self.sweep_fanout = max(1, int(sweep_fanout))
        super().__init__(
            host=host,
            port=port,
            executor_workers=executor_workers,
            subscription_queue_max=subscription_queue_max,
            connection_sndbuf=connection_sndbuf,
        )

    @property
    def supervisor(self) -> ClusterSupervisor:
        return self.core.supervisor

    @property
    def backend(self) -> str:
        return self.core.backend

    def answer_request(self, data: Any) -> dict[str, Any]:
        if not isinstance(data, dict):
            return error_response(
                "?", ReproError(f"request must be a JSON object, got {type(data).__name__}")
            )
        op, data, request_id = normalize_request(data)
        if op == SUBSCRIBE_OP:  # only reachable through handle_request-less path
            return error_response(
                SUBSCRIBE_OP,
                ReproError("subscribe must be served by the streaming transport"),
                request_id,
            )
        response = self.core._dispatch(op, data, request_id)
        if response.get("op") == "metrics" and response.get("ok"):
            metrics = response.get("metrics")
            if isinstance(metrics, dict):
                # The core's transport counters are all zeros (its socket
                # never accepts); report the async front's wire instead.
                metrics["transport"] = self.transport.snapshot()
                metrics["subscriptions"] = self.subscription_stats()
        return response

    # -- the subscribe verb ----------------------------------------------------
    def subscribe_open(self, data: dict[str, Any], request_id: Any) -> tuple[Any, dict]:
        specs, backend = parse_subscribe(data)
        effective = backend if backend is not None else self.core.backend
        seen: set[str] = set()
        unique: list[Any] = []
        for spec in specs:
            key = shard_key(effective, spec.canonical_hash())
            if key not in seen:
                seen.add(key)
                unique.append(spec)
        ack = subscribe_ack(request_id, len(specs), len(unique), effective)
        return (unique, effective, request_id, len(specs)), ack

    def _sweep_one(self, spec: Any, effective: str) -> dict[str, Any]:
        """One routed solve of a subscription; never raises."""
        try:
            return self.core._route_solve(
                {"spec": spec.to_dict(), "backend": effective}, None
            )
        except Exception as error:  # noqa: BLE001 - becomes a failed record
            return error_response("solve", error)

    def subscribe_pump(self, job: Any, bridge: Any) -> None:
        from concurrent.futures import ThreadPoolExecutor, as_completed

        from ..api.result import SolveResult
        from ..experiments.manifest import fingerprint_digest

        unique, effective, request_id, total = job
        started = time.perf_counter()
        seq = 0
        errors = 0
        sources: dict[str, int] = {}
        results: list[Any] = []
        aborted = False
        with ThreadPoolExecutor(
            max_workers=min(self.sweep_fanout, len(unique)),
            thread_name_prefix="repro-sweep",
        ) as pool:
            futures = {
                pool.submit(self._sweep_one, spec, effective): spec for spec in unique
            }
            for future in as_completed(futures):
                if self.stopping:
                    aborted = True
                    for pending in futures:
                        pending.cancel()
                    bridge.put(
                        error_response(
                            SUBSCRIBE_OP,
                            ClusterError("router is shutting down, subscription aborted"),
                            request_id,
                        )
                    )
                    break
                spec = futures[future]
                response = materialize_raw(future.result())
                record: dict[str, Any] = {
                    "ok": bool(response.get("ok")),
                    "op": COMPLETION_OP,
                    "seq": seq,
                    "key": {"backend": effective, "spec_hash": spec.canonical_hash()},
                    "served_by": response.get("served_by", "cluster"),
                    "latency_ms": response.get("latency_ms", 0.0),
                }
                seq += 1
                if response.get("ok"):
                    record["result"] = response["result"]
                    results.append(SolveResult.from_dict(response["result"]))
                    source = response.get("served_by", "cluster")
                    sources[source] = sources.get(source, 0) + 1
                else:
                    errors += 1
                    record["served_by"] = "cluster"
                    record["error"] = response.get("error", "routed solve failed")
                    record["error_type"] = response.get("error_type", "ClusterError")
                    sources["error"] = sources.get("error", 0) + 1
                if request_id is not None:
                    record["id"] = request_id
                bridge.put(record)
        if aborted:
            return
        bridge.put(
            subscribe_summary(
                request_id,
                records=seq,
                errors=errors,
                total=total,
                unique=len(unique),
                fingerprint_digest=fingerprint_digest(results),
                sources=sources,
                wall_time_ms=(time.perf_counter() - started) * 1e3,
            )
        )

    # -- lifecycle -------------------------------------------------------------
    def _drain(self, timeout: Optional[float]) -> None:
        # The core was never served: its stop() skips the serve loop and
        # goes straight to closing the pools and draining the fleet.
        self.core.stop(drain_timeout=timeout)


def boot_router(
    supervisor: ClusterSupervisor, use_async: bool = False, **router_kwargs: Any
) -> "ShardRouter | AsyncShardRouter":
    """Start a fleet and build its router, leak-proof on failure.

    The workers are detached processes; any failure between spawning
    them and having a router that can stop them would otherwise leave
    the fleet running unsupervised.  Every caller (CLI, benchmark,
    smoke) boots through here so that invariant lives in one place.
    ``use_async`` boots the asyncio front (:class:`AsyncShardRouter`)
    instead of the thread-per-connection router.
    """
    try:
        supervisor.start()
        if use_async:
            return AsyncShardRouter(supervisor, **router_kwargs)
        return ShardRouter(supervisor, **router_kwargs)
    except BaseException:
        supervisor.stop(drain=False)
        raise
