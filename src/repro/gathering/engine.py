"""Simulation of multi-robot gathering via pairwise rendezvous.

Every robot of the swarm runs the *same* mobility algorithm (each in its own
frame), exactly as in the two-robot model; robots do not change behaviour
when they meet (the model gives them no way to agree on having met, short of
extra assumptions), so the pairwise meeting times are independent and the
whole gathering outcome is determined by the matrix of pairwise first-contact
times:

* *pairwise gathering time*  = the latest pairwise meeting time;
* *connectivity gathering time* = the earliest time at which the "has met"
  graph is connected (the bottleneck edge of a minimum spanning tree over
  meeting times, computed with networkx).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import networkx as nx

from ..algorithms.base import MobilityAlgorithm
from ..algorithms.wait_search import WaitAndSearchRendezvous
from ..constants import TIME_TOLERANCE
from ..errors import InvalidParameterError
from ..simulation import HorizonPolicy, SimulationOutcome, simulate_robot_pair
from .feasibility import swarm_feasibility
from .instance import GatheringInstance

__all__ = ["PairwiseResult", "GatheringOutcome", "simulate_gathering"]


@dataclass(frozen=True, slots=True)
class PairwiseResult:
    """First-contact result for one pair of swarm members."""

    first: int
    second: int
    feasible: bool
    outcome: SimulationOutcome

    @property
    def met(self) -> bool:
        """True when the pair saw each other before the horizon."""
        return self.outcome.solved

    @property
    def time(self) -> Optional[float]:
        """Meeting time, or None when the pair did not meet."""
        return self.outcome.time if self.outcome.solved else None


@dataclass(frozen=True)
class GatheringOutcome:
    """Everything measured about one gathering simulation."""

    instance: GatheringInstance
    pairwise: tuple[PairwiseResult, ...]
    horizon: float

    # -- raw access -------------------------------------------------------------
    def result_for(self, i: int, j: int) -> PairwiseResult:
        """The pairwise result for members ``i`` and ``j`` (any order)."""
        low, high = min(i, j), max(i, j)
        for result in self.pairwise:
            if (result.first, result.second) == (low, high):
                return result
        raise InvalidParameterError(f"no pairwise result recorded for ({i}, {j})")

    def meeting_graph(self, until: Optional[float] = None) -> nx.Graph:
        """The "has met by ``until``" graph (all recorded meetings by default)."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.instance.size))
        for result in self.pairwise:
            if result.met and (until is None or result.time <= until):
                graph.add_edge(result.first, result.second, time=result.time)
        return graph

    # -- gathering criteria ----------------------------------------------------------
    @property
    def all_pairs_met(self) -> bool:
        """True when every pair saw each other before the horizon."""
        return all(result.met for result in self.pairwise)

    @property
    def pairwise_gathering_time(self) -> Optional[float]:
        """Latest pairwise meeting time (None when some pair never met)."""
        if not self.all_pairs_met:
            return None
        return max(result.time for result in self.pairwise)

    @property
    def connectivity_gathering_time(self) -> Optional[float]:
        """Earliest time the meeting graph is connected (None if never).

        This is the bottleneck edge weight of a minimum spanning tree of the
        meeting-time graph: the graph restricted to edges with time <= T is
        connected exactly when T is at least that bottleneck.
        """
        graph = self.meeting_graph()
        if graph.number_of_nodes() < 2 or not nx.is_connected(graph):
            return None
        spanning_tree = nx.minimum_spanning_tree(graph, weight="time")
        return max(data["time"] for _, _, data in spanning_tree.edges(data=True))

    def describe(self) -> str:
        """Human-readable outcome summary."""
        lines = [self.instance.describe(), f"horizon {self.horizon:g}"]
        for result in self.pairwise:
            status = f"met at t={result.time:.4g}" if result.met else "did not meet"
            feasibility = "feasible" if result.feasible else "infeasible"
            lines.append(f"  (R{result.first}, R{result.second}) [{feasibility}]: {status}")
        pairwise_time = self.pairwise_gathering_time
        connectivity_time = self.connectivity_gathering_time
        lines.append(
            "pairwise gathering: "
            + (f"t = {pairwise_time:.4g}" if pairwise_time is not None else "not achieved")
        )
        lines.append(
            "connectivity gathering: "
            + (f"t = {connectivity_time:.4g}" if connectivity_time is not None else "not achieved")
        )
        return "\n".join(lines)


def simulate_gathering(
    instance: GatheringInstance,
    horizon: HorizonPolicy | float,
    algorithm: Optional[MobilityAlgorithm] = None,
    time_tolerance: float = TIME_TOLERANCE,
) -> GatheringOutcome:
    """Simulate every pair of the swarm running ``algorithm``.

    Args:
        instance: the swarm.
        horizon: per-pair simulation horizon (a pair whose rendezvous is
            infeasible will simply run to this horizon without meeting).
        algorithm: mobility algorithm used by every robot; defaults to the
            universal Algorithm 7 (it covers all feasible attribute
            combinations, per Theorem 4).
        time_tolerance: event-detection tolerance.
    """
    algorithm = algorithm if algorithm is not None else WaitAndSearchRendezvous()
    feasibility = swarm_feasibility(instance)
    robots = instance.robots()
    limit = horizon.limit if isinstance(horizon, HorizonPolicy) else float(horizon)
    if not (limit > 0.0 and math.isfinite(limit)):
        raise InvalidParameterError(f"the horizon must be positive and finite, got {horizon!r}")

    results = []
    for i, j in instance.pairs():
        outcome = simulate_robot_pair(
            algorithm, robots[i], robots[j], instance.visibility, limit, time_tolerance
        )
        results.append(
            PairwiseResult(
                first=i,
                second=j,
                feasible=feasibility.pair_verdicts[(i, j)].feasible,
                outcome=outcome,
            )
        )
    return GatheringOutcome(instance=instance, pairwise=tuple(results), horizon=limit)
