"""Gathering instances: a swarm of robots with heterogeneous attributes.

The paper's conclusion lists "deterministic gathering for multiple robots in
this setting of minimal knowledge" as an open direction.  This extension
(documented as such in DESIGN.md) explores the natural first step: every
robot runs the paper's pairwise rendezvous algorithm, and we ask when pairs
of robots see each other.

Two gathering criteria are exposed:

* **pairwise gathering** -- every pair of robots has seen each other; this is
  the strongest notion expressible without changing the robots' behaviour on
  contact, and it is feasible iff every pair satisfies Theorem 4.
* **connectivity gathering** -- the "has seen" graph becomes connected; once
  connected, robots could in principle relay information / elect a meeting
  point, so this is the natural relaxed notion.  It can be feasible even when
  some pairs are attribute-identical, as long as the *feasibility graph* is
  connected.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import InvalidParameterError
from ..geometry import Vec2
from ..robots import Robot, RobotAttributes

__all__ = ["SwarmMember", "GatheringInstance"]


@dataclass(frozen=True, slots=True)
class SwarmMember:
    """One robot of the swarm: a start position and an attribute vector."""

    position: Vec2
    attributes: RobotAttributes

    def robot(self, name: str) -> Robot:
        """Materialise the member as a :class:`~repro.robots.Robot`."""
        return Robot(name=name, start=self.position, attributes=self.attributes)


@dataclass(frozen=True)
class GatheringInstance:
    """A swarm of robots plus the common visibility radius."""

    members: tuple[SwarmMember, ...]
    visibility: float

    def __post_init__(self) -> None:
        if len(self.members) < 2:
            raise InvalidParameterError("a gathering instance needs at least two robots")
        if not (self.visibility > 0.0 and math.isfinite(self.visibility)):
            raise InvalidParameterError(
                f"visibility must be positive and finite, got {self.visibility!r}"
            )
        for index, first in enumerate(self.members):
            for second in self.members[index + 1 :]:
                if first.position.distance_to(second.position) == 0.0:
                    raise InvalidParameterError("robots must start at pairwise distinct locations")

    @staticmethod
    def create(
        positions: list[Vec2], attributes: list[RobotAttributes], visibility: float
    ) -> "GatheringInstance":
        """Build an instance from parallel position/attribute lists."""
        if len(positions) != len(attributes):
            raise InvalidParameterError("positions and attributes must have the same length")
        members = tuple(
            SwarmMember(position=position, attributes=attribute)
            for position, attribute in zip(positions, attributes)
        )
        return GatheringInstance(members=members, visibility=visibility)

    @property
    def size(self) -> int:
        """Number of robots in the swarm."""
        return len(self.members)

    def pairs(self) -> list[tuple[int, int]]:
        """All index pairs ``(i, j)`` with ``i < j``."""
        return [(i, j) for i in range(self.size) for j in range(i + 1, self.size)]

    def pair_distance(self, i: int, j: int) -> float:
        """Initial distance between members ``i`` and ``j``."""
        return self.members[i].position.distance_to(self.members[j].position)

    def robots(self) -> list[Robot]:
        """All members materialised as robots (named R0, R1, ...)."""
        return [member.robot(f"R{index}") for index, member in enumerate(self.members)]

    def describe(self) -> str:
        """Human-readable instance summary."""
        lines = [f"gathering of {self.size} robots, visibility r = {self.visibility:g}"]
        for index, member in enumerate(self.members):
            lines.append(
                f"  R{index} at ({member.position.x:.3g}, {member.position.y:.3g}) "
                f"[{member.attributes.describe()}]"
            )
        return "\n".join(lines)
