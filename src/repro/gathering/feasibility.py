"""Feasibility of gathering, derived pairwise from Theorem 4.

A pair of robots can be forced together iff their relative attributes
satisfy Theorem 4.  Lifting that to a swarm:

* *pairwise gathering* (every pair meets) is feasible iff **every** pair is
  feasible;
* *connectivity gathering* (the meeting graph becomes connected) is feasible
  iff the **feasibility graph** -- robots as nodes, feasible pairs as edges --
  is connected: along a spanning tree of feasible pairs every meeting can be
  forced, while robots in different components of the feasibility graph can
  be placed so that no pair across the cut ever meets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import networkx as nx

from ..core.feasibility import FeasibilityVerdict
from .instance import GatheringInstance
from .relative import pair_feasibility

__all__ = ["SwarmFeasibility", "swarm_feasibility"]


@dataclass(frozen=True)
class SwarmFeasibility:
    """Pairwise and swarm-level feasibility verdicts."""

    pair_verdicts: Dict[Tuple[int, int], FeasibilityVerdict]
    size: int

    @property
    def feasibility_graph(self) -> nx.Graph:
        """Graph with an edge for every feasible pair."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.size))
        for (i, j), verdict in self.pair_verdicts.items():
            if verdict.feasible:
                graph.add_edge(i, j)
        return graph

    @property
    def pairwise_gathering_feasible(self) -> bool:
        """True when every pair of the swarm can be forced to meet."""
        return all(verdict.feasible for verdict in self.pair_verdicts.values())

    @property
    def connectivity_gathering_feasible(self) -> bool:
        """True when the feasibility graph is connected."""
        graph = self.feasibility_graph
        return graph.number_of_nodes() > 0 and nx.is_connected(graph)

    def infeasible_pairs(self) -> list[Tuple[int, int]]:
        """The pairs Theorem 4 declares impossible."""
        return [pair for pair, verdict in self.pair_verdicts.items() if not verdict.feasible]

    def describe(self) -> str:
        """Human-readable summary."""
        lines = [
            f"swarm of {self.size} robots: "
            f"pairwise gathering {'feasible' if self.pairwise_gathering_feasible else 'infeasible'}, "
            f"connectivity gathering "
            f"{'feasible' if self.connectivity_gathering_feasible else 'infeasible'}"
        ]
        for (i, j), verdict in sorted(self.pair_verdicts.items()):
            lines.append(f"  (R{i}, R{j}): {verdict.describe()}")
        return "\n".join(lines)


def swarm_feasibility(instance: GatheringInstance) -> SwarmFeasibility:
    """Apply Theorem 4 to every pair of the swarm."""
    verdicts: Dict[Tuple[int, int], FeasibilityVerdict] = {}
    for i, j in instance.pairs():
        verdicts[(i, j)] = pair_feasibility(
            instance.members[i].attributes, instance.members[j].attributes
        )
    return SwarmFeasibility(pair_verdicts=verdicts, size=instance.size)
