"""Pairwise relative attributes inside a swarm.

The paper analyses two robots by normalising one of them to the reference
frame (speed 1, clock 1, orientation 0, chirality +1).  For a swarm, every
*pair* of robots can be normalised the same way: seen from robot ``i``,
robot ``j`` has

* speed ``v_j / v_i``,
* time unit ``tau_j / tau_i``,
* chirality ``chi_i * chi_j``,
* orientation ``chi_i * (phi_j - phi_i)`` (the sign flip accounts for the
  mirrored frame of a ``chi_i = -1`` observer; only whether the angle is a
  multiple of ``2 pi`` matters for feasibility).

This makes the Theorem 4 characterisation directly applicable to every pair,
which is all the gathering extension needs.
"""

from __future__ import annotations

from ..core.feasibility import FeasibilityVerdict, classify_feasibility
from ..robots import RobotAttributes

__all__ = ["relative_attributes", "pair_feasibility"]


def relative_attributes(observer: RobotAttributes, other: RobotAttributes) -> RobotAttributes:
    """Attributes of ``other`` expressed in ``observer``'s normalised frame."""
    observer = observer.normalized()
    other = other.normalized()
    return RobotAttributes(
        speed=other.speed / observer.speed,
        time_unit=other.time_unit / observer.time_unit,
        orientation=observer.chirality * (other.orientation - observer.orientation),
        chirality=observer.chirality * other.chirality,
    ).normalized()


def pair_feasibility(observer: RobotAttributes, other: RobotAttributes) -> FeasibilityVerdict:
    """Theorem 4 applied to the pair ``(observer, other)``."""
    return classify_feasibility(relative_attributes(observer, other))
