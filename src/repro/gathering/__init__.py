"""Multi-robot gathering extension (the paper's stated future-work direction).

Everything in this subpackage goes *beyond* the paper: it lifts the two-robot
results to a swarm by applying them pairwise.  See DESIGN.md for the scope
note and experiment E12 for the accompanying evaluation.
"""

from .engine import GatheringOutcome, PairwiseResult, simulate_gathering
from .feasibility import SwarmFeasibility, swarm_feasibility
from .instance import GatheringInstance, SwarmMember
from .relative import pair_feasibility, relative_attributes

__all__ = [
    "GatheringOutcome",
    "PairwiseResult",
    "simulate_gathering",
    "SwarmFeasibility",
    "swarm_feasibility",
    "GatheringInstance",
    "SwarmMember",
    "pair_feasibility",
    "relative_attributes",
]
