"""Run every registered experiment and collect the results.

This is the programmatic backend of ``python -m repro experiments --all``
and of the EXPERIMENTS.md regeneration helper.

Every sweep shares one :class:`~repro.api.BatchRunner` (one LRU across
all experiments), and -- when a ``store`` is given -- one persistent
:class:`~repro.api.store.ResultStore` plus a
:class:`~repro.experiments.manifest.RunManifest`.  That combination makes
``--all`` *incremental*: an interrupted or repeated run only solves the
specs missing from the store, and the manifest's fingerprint digests
verify that replayed results are bit-identical to the originals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Callable, Optional, Union

from ..analysis import ExperimentReport, combine_markdown
from ..api import BatchRunner
from ..api.store import ResultStore
from .base import shared_runner
from .manifest import MANIFEST_NAME, ExperimentRecorder, RunManifest
from .registry import experiment_ids, run_experiment

__all__ = [
    "ExperimentRunInfo",
    "RunAllSummary",
    "run_all",
    "run_all_resumable",
    "write_summary",
]


@dataclass(frozen=True, slots=True)
class ExperimentRunInfo:
    """Solve accounting for one experiment inside a sweep."""

    experiment_id: str
    specs: int
    #: Unique spec keys -- the unit of the three hit/solve counters
    #: (they partition it exactly); ``specs`` additionally counts
    #: duplicates.
    unique: int
    cache_hits: int
    store_hits: int
    fresh_solves: int
    #: Digest of this run's results (None when the experiment solved nothing).
    fingerprint: Optional[str] = None
    #: Digest recorded by the previous run (None on first contact).
    previous_fingerprint: Optional[str] = None
    #: Recorded specs absent from the store before this run (None without history).
    missing_before: Optional[int] = None

    @property
    def fingerprint_match(self) -> Optional[bool]:
        """Whether this run reproduced the previous digest (None without one)."""
        if self.fingerprint is None or self.previous_fingerprint is None:
            return None
        return self.fingerprint == self.previous_fingerprint

    def describe(self) -> str:
        """One-line summary for the CLI."""
        if self.specs == 0:
            return f"{self.experiment_id}: no facade solves (pure computation)"
        match = self.fingerprint_match
        match_text = (
            ""
            if match is None
            else (", fingerprints match previous run" if match else ", FINGERPRINT MISMATCH")
        )
        missing_text = (
            f" (resumed: {self.missing_before} recorded spec(s) were missing from the store)"
            if self.missing_before
            else ""
        )
        return (
            f"{self.experiment_id}: {self.specs} specs ({self.unique} unique), "
            f"{self.cache_hits} cache hits, {self.store_hits} store hits, "
            f"{self.fresh_solves} solved fresh{match_text}{missing_text}"
        )


@dataclass
class RunAllSummary:
    """Aggregate solve accounting for one ``run_all`` sweep."""

    store_path: Optional[str] = None
    entries: list[ExperimentRunInfo] = field(default_factory=list)

    @property
    def specs(self) -> int:
        return sum(entry.specs for entry in self.entries)

    @property
    def store_hits(self) -> int:
        return sum(entry.store_hits for entry in self.entries)

    @property
    def fresh_solves(self) -> int:
        return sum(entry.fresh_solves for entry in self.entries)

    @property
    def fingerprint_mismatches(self) -> list[str]:
        """Experiments whose digest diverged from the recorded one."""
        return [
            entry.experiment_id
            for entry in self.entries
            if entry.fingerprint_match is False
        ]

    @property
    def fully_warm(self) -> bool:
        """True when every facade solve was answered by a cache or the store."""
        return self.fresh_solves == 0

    def describe(self) -> str:
        """Multi-line summary for the CLI."""
        lines = [entry.describe() for entry in self.entries]
        store_text = f" [store: {self.store_path}]" if self.store_path else ""
        lines.append(
            f"sweep total: {self.specs} specs, {self.store_hits} store hits, "
            f"{self.fresh_solves} solved fresh{store_text}"
        )
        if self.fingerprint_mismatches:
            lines.append(
                "FINGERPRINT MISMATCH in: " + ", ".join(self.fingerprint_mismatches)
            )
        return "\n".join(lines)


def run_all_resumable(
    output_dir: Optional[Path | str] = None,
    quick: bool = False,
    ids: Optional[list[str]] = None,
    store: Union[ResultStore, str, Path, None] = None,
    processes: Optional[int] = None,
    progress: Optional[Callable[[str, object], None]] = None,
) -> tuple[list[ExperimentReport], RunAllSummary]:
    """Run experiments through one shared runner; report solve accounting.

    Args:
        output_dir: artefact directory handed to every experiment.
        quick: reduced workloads for smoke runs.
        ids: experiment identifiers to run (all registered when None).
        store: persistent result store (instance or directory path); when
            given, solves are served from and recorded to it, and the run
            manifest next to it tracks per-experiment spec hashes.
        processes: worker-pool size of the shared runner.
        progress: optional streaming observer called as
            ``progress(experiment_id, completion)`` for every result
            **as it completes** (the runner's streaming pipeline) --
            live progress during a sweep instead of post-hoc stats.
    """
    selected = [identifier.upper() for identifier in ids] if ids else experiment_ids()
    store_obj: Optional[ResultStore] = None
    if store is not None:
        store_obj = store if isinstance(store, ResultStore) else ResultStore(store)
    manifest: Optional[RunManifest] = None
    if store_obj is not None:
        manifest = RunManifest.load(store_obj.path / MANIFEST_NAME)
    runner = BatchRunner(store=store_obj, processes=processes)

    reports: list[ExperimentReport] = []
    summary = RunAllSummary(store_path=str(store_obj.path) if store_obj is not None else None)
    for experiment_id in selected:
        recorder = ExperimentRecorder()
        previous = manifest.entry(experiment_id, quick) if manifest else None
        missing_before: Optional[int] = None
        if manifest is not None and store_obj is not None:
            missing = manifest.missing_pairs(experiment_id, quick, store_obj)
            missing_before = len(missing) if missing is not None else None
        experiment_progress = None
        if progress is not None:
            experiment_progress = partial(progress, experiment_id)
        with shared_runner(runner, recorder, experiment_progress):
            reports.append(
                run_experiment(experiment_id, output_dir=output_dir, quick=quick)
            )
        summary.entries.append(
            ExperimentRunInfo(
                experiment_id=experiment_id,
                specs=recorder.total,
                unique=recorder.unique,
                cache_hits=recorder.cache_hits,
                store_hits=recorder.store_hits,
                fresh_solves=recorder.fresh_solves,
                fingerprint=recorder.digest,
                previous_fingerprint=(
                    previous.get("fingerprint_digest") if previous else None
                ),
                missing_before=missing_before,
            )
        )
        if manifest is not None and recorder.pairs:
            manifest.record(
                experiment_id,
                quick=quick,
                pairs=recorder.pairs,
                fingerprint=recorder.digest,
            )
            # Saved after every experiment, so an interrupted sweep keeps
            # the progress it already paid for.
            manifest.save()
    if store_obj is not None:
        store_obj.flush()
    return reports, summary


def run_all(
    output_dir: Optional[Path | str] = None,
    quick: bool = False,
    ids: Optional[list[str]] = None,
    store: Union[ResultStore, str, Path, None] = None,
    processes: Optional[int] = None,
) -> list[ExperimentReport]:
    """Run all (or the selected) experiments and return their reports."""
    reports, _ = run_all_resumable(
        output_dir=output_dir, quick=quick, ids=ids, store=store, processes=processes
    )
    return reports


def write_summary(reports: list[ExperimentReport], path: Path | str) -> Path:
    """Write a combined markdown summary of several reports."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = [
        "# Experiment results",
        "",
        "Regenerated by `python -m repro experiments --all --output <dir>`.",
        "",
    ]
    path.write_text("\n".join(header) + combine_markdown(reports) + "\n", encoding="utf-8")
    return path
