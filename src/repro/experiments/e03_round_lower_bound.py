"""E03 -- Lemma 3: difficulty lower bound at the discovery round.

Lemma 3 is the counting step of Theorem 1's proof: *for the round ``k`` at
which the analysis guarantees discovery*, the difficulty satisfies
``d^2/r >= 2^{k+1}``.  In simulation the target is usually found *earlier*
than the guaranteed round (a lucky bearing or a generous visibility), so
the experiment reports three things:

* the round in which the simulated search actually found the target,
* the guaranteed round of Lemma 1 (never exceeded by the former -- this is
  the hard check),
* how often the literal Lemma 3 inequality holds for the *actual* round
  (informational: the paper applies the inequality only to the guaranteed
  round inside the proof of Theorem 1).

Discovery times come from the facade's batch path with the
``vectorized`` backend, which solves the whole random suite against one
compiled trajectory.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from ..analysis import ExperimentReport, Table
from ..core import guaranteed_discovery_round, lemma3_difficulty_lower_bound
from ..core.schedule import universal_search_prefix_duration
from ..workloads import as_specs, search_random_suite
from .base import finalize_report, solve_specs

EXPERIMENT_ID = "E03"
TITLE = "Discovery rounds and the Lemma 3 difficulty lower bound"
PAPER_REFERENCE = "Lemma 1, Lemma 3, Section 2"

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_REFERENCE", "run"]


def _round_of_time(time: float, max_round: int = 64) -> int:
    """The Algorithm 4 round during which global time ``time`` falls."""
    for k in range(1, max_round + 1):
        if time <= universal_search_prefix_duration(k) + 1e-9:
            return k
    raise ValueError(f"time {time!r} beyond round {max_round}")


def run(output_dir: Optional[Path | str] = None, quick: bool = False) -> ExperimentReport:
    """Run the discovery-round experiment."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    instances = search_random_suite(count=8 if quick else 24, seed=11)
    results = solve_specs(as_specs(instances), backend="vectorized")

    table = Table(
        columns=[
            "d",
            "r",
            "d^2/r",
            "found round",
            "guaranteed round",
            "lemma3 bound (guaranteed)",
            "holds (guaranteed)",
            "holds (found)",
        ],
        title="Actual vs guaranteed discovery rounds",
    )
    never_late = True
    guaranteed_holds = True
    literal_holds = 0
    for instance, result in zip(instances, results):
        found_round = _round_of_time(result.measured_time)
        guaranteed = guaranteed_discovery_round(instance.distance, instance.visibility)
        never_late = never_late and found_round <= guaranteed
        lower_guaranteed = lemma3_difficulty_lower_bound(guaranteed) if guaranteed >= 1 else 0.0
        holds_guaranteed = instance.difficulty >= 2.0**guaranteed
        guaranteed_holds = guaranteed_holds and (
            holds_guaranteed or instance.difficulty <= 4.0
        )
        holds_found = instance.difficulty >= lemma3_difficulty_lower_bound(found_round)
        literal_holds += int(holds_found)
        table.add_row(
            [
                instance.distance,
                instance.visibility,
                instance.difficulty,
                found_round,
                guaranteed,
                lower_guaranteed,
                holds_guaranteed,
                holds_found,
            ]
        )
    report.add_table(table)
    report.add_check(
        "the target is never found later than the guaranteed round of Lemma 1", never_late
    )
    report.add_check(
        "difficulty >= 2^k at the guaranteed round (up to the easy-instance floor d^2/r <= 4)",
        guaranteed_holds,
    )
    report.add_note(
        f"literal Lemma 3 inequality (difficulty >= 2^(k+1) at the *actual* round) held on "
        f"{literal_holds}/{len(instances)} instances; the remaining instances were found early "
        "by luck, which only helps the Theorem 1 upper bound"
    )
    return finalize_report(report, output_dir)
