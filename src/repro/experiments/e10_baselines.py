"""E10 -- Baseline comparison: the price of not knowing d and r.

Algorithm 4 is universal: it knows neither the target distance ``d`` nor
the visibility ``r``.  The experiment compares it, on a shared instance
suite, against

* two *clairvoyant* baselines that know ``r`` (concentric circles and an
  expanding square lawnmower) -- these should win, by roughly the
  ``log(d^2/r)`` factor the paper pays for universality, and
* a naive universal baseline (diagonal hedging over guesses of ``d`` and
  ``r``) -- Algorithm 4 should win against it, because its per-annulus
  granularity choice balances the work geometrically.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from ..algorithms import (
    ConcentricCoverageSearch,
    DiagonalHedgingSearch,
    ExpandingSquareSearch,
    UniversalSearch,
)
from ..analysis import ExperimentReport, Table, geometric_mean, log_log_slope
from ..core import theorem1_search_bound
from ..geometry import Vec2
from ..simulation import SearchInstance, bound_multiple_horizon, fixed_horizon, simulate_search
from ..workloads import baseline_comparison_suite
from .base import finalize_report

EXPERIMENT_ID = "E10"
TITLE = "Algorithm 4 vs clairvoyant and naive-universal search baselines"
PAPER_REFERENCE = "Section 2 (context: the cost of unknown d and r)"

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_REFERENCE", "run"]


def run(output_dir: Optional[Path | str] = None, quick: bool = False) -> ExperimentReport:
    """Run the baseline comparison on the shared suite."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    instances = baseline_comparison_suite(count=4 if quick else 10)

    table = Table(
        columns=[
            "d",
            "r",
            "d^2/r",
            "Algorithm 4",
            "concentric (knows r)",
            "square (knows r)",
            "diagonal hedging",
        ],
        title="Search times of Algorithm 4 and the baselines",
    )
    universal_times = []
    concentric_times = []
    square_times = []
    diagonal_times = []
    for instance in instances:
        bound = theorem1_search_bound(instance.distance, instance.visibility)
        horizon = bound_multiple_horizon(bound, 1.5)
        generous = fixed_horizon(bound * 40.0)

        universal = simulate_search(UniversalSearch(), instance, horizon)
        concentric = simulate_search(
            ConcentricCoverageSearch(instance.visibility), instance, horizon
        )
        square = simulate_search(ExpandingSquareSearch(instance.visibility), instance, horizon)
        diagonal = simulate_search(DiagonalHedgingSearch(), instance, generous)

        universal_times.append(universal.time)
        concentric_times.append(concentric.time)
        square_times.append(square.time)
        diagonal_times.append(diagonal.time if diagonal.solved else float("nan"))
        table.add_row(
            [
                instance.distance,
                instance.visibility,
                instance.difficulty,
                universal.time,
                concentric.time,
                square.time,
                diagonal.time if diagonal.solved else "timeout",
            ]
        )
    report.add_table(table)

    clairvoyant_advantage = geometric_mean(
        [u / c for u, c in zip(universal_times, concentric_times)]
    )
    report.add_note(
        f"clairvoyant concentric search wins by a geometric-mean factor of "
        f"{clairvoyant_advantage:.2f}x over Algorithm 4 (the price of not knowing r)"
    )
    report.add_check(
        "the clairvoyant concentric baseline is faster than Algorithm 4 on average",
        clairvoyant_advantage > 1.0,
        f"geometric mean ratio {clairvoyant_advantage:.2f}",
    )
    report.add_check(
        "every searcher found the target on every instance (correctness of all baselines)",
        all(time == time for time in diagonal_times),
    )

    # Part 2: scaling comparison against the naive universal baseline.  On
    # easy instances the naive hedger can be faster (its early phases are
    # tiny), so the meaningful claim is about growth: as the visibility
    # shrinks at fixed distance, Algorithm 4's time grows like
    # (1/r) log(1/r) while the hedger's grows like (1/r)^2.
    scaling_table = Table(
        columns=["r", "Algorithm 4 (summed)", "diagonal hedging (summed)", "hedging / Algorithm 4"],
        title="Growth with shrinking visibility (summed over two fixed targets)",
    )
    targets = (Vec2.polar(1.29, 2.0), Vec2.polar(1.73, 0.9))
    visibilities = (0.2, 0.0125) if quick else (0.2, 0.05, 0.0125)
    universal_sweep = []
    diagonal_sweep = []
    for visibility in visibilities:
        universal_total = 0.0
        diagonal_total = 0.0
        for target in targets:
            instance = SearchInstance(target=target, visibility=visibility)
            bound = theorem1_search_bound(instance.distance, visibility)
            universal_total += simulate_search(
                UniversalSearch(), instance, bound_multiple_horizon(bound, 1.5)
            ).time
            diagonal_total += simulate_search(
                DiagonalHedgingSearch(), instance, fixed_horizon(bound * 80.0)
            ).time
        universal_sweep.append(universal_total)
        diagonal_sweep.append(diagonal_total)
        scaling_table.add_row(
            [visibility, universal_total, diagonal_total, diagonal_total / universal_total]
        )
    report.add_table(scaling_table)
    inverse_visibilities = [1.0 / v for v in visibilities]
    universal_slope = log_log_slope(inverse_visibilities, universal_sweep)
    diagonal_slope = log_log_slope(inverse_visibilities, diagonal_sweep)
    report.add_note(
        f"log-log growth in 1/r at fixed d: Algorithm 4 slope {universal_slope:.2f}, "
        f"diagonal hedging slope {diagonal_slope:.2f} (the hedger pays roughly the square)"
    )
    report.add_check(
        "Algorithm 4 scales better with shrinking visibility than the naive universal baseline",
        diagonal_slope > universal_slope,
        f"slopes {diagonal_slope:.2f} vs {universal_slope:.2f}",
    )
    return finalize_report(report, output_dir)
