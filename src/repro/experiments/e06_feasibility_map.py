"""E06 -- Theorem 4: the feasibility characterisation.

For a labelled grid of attribute configurations the experiment checks both
directions of the iff:

* configurations the theorem declares *feasible* do rendezvous in
  simulation within the analytic bound;
* configurations the theorem declares *infeasible* do not rendezvous
  within a generous horizon when the separation is placed along the
  adversarial direction, and the invariant-component argument (the gap can
  never drop below the separation's invariant component) certifies that no
  horizon would ever suffice.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from ..algorithms import UniversalSearch
from ..analysis import ExperimentReport, Table
from ..core import classify_feasibility, solve_rendezvous
from ..core.feasibility import adversarial_separation_direction
from ..geometry import Vec2, relative_matrix
from ..simulation import fixed_horizon, simulate_rendezvous
from ..workloads import feasibility_grid
from .base import finalize_report

EXPERIMENT_ID = "E06"
TITLE = "Feasibility map of rendezvous (Theorem 4)"
PAPER_REFERENCE = "Theorem 4, Sections 3-4 and the abstract's iff characterisation"

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_REFERENCE", "run"]

_INFEASIBLE_HORIZON = 1500.0


def _invariant_component(instance) -> float:
    """Length of the separation component the relative motion can never touch.

    With equal clocks the relative motion lies in the range of ``T_circ``;
    the component of the separation orthogonal to that range is invariant,
    so the gap can never drop below it.
    """
    attributes = instance.attributes.normalized()
    matrix = relative_matrix(attributes.speed, attributes.orientation, attributes.chirality)
    invariant_direction = adversarial_separation_direction(attributes)
    image_x = matrix.apply(Vec2(1.0, 0.0))
    image_y = matrix.apply(Vec2(0.0, 1.0))
    if max(image_x.norm(), image_y.norm()) <= 1e-12:
        # Identical robots: the whole separation is invariant.
        return instance.distance
    return abs(instance.separation.dot(invariant_direction))


def run(output_dir: Optional[Path | str] = None, quick: bool = False) -> ExperimentReport:
    """Run the Theorem 4 feasibility grid."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    table = Table(
        columns=[
            "configuration",
            "v",
            "tau",
            "phi",
            "chi",
            "predicted feasible",
            "simulated rendezvous",
            "time or invariant gap",
        ],
        title="Predicted vs simulated feasibility",
    )
    grid = feasibility_grid()
    if quick:
        grid = grid[:4] + grid[-2:]

    agreement = True
    infeasible_certified = True
    for label, instance, expected_feasible in grid:
        verdict = classify_feasibility(instance.attributes)
        predicted = verdict.feasible
        agreement = agreement and predicted == expected_feasible
        if predicted:
            result = solve_rendezvous(instance)
            solved = result.solved
            detail = result.time
        else:
            outcome = simulate_rendezvous(
                UniversalSearch(), instance, fixed_horizon(_INFEASIBLE_HORIZON)
            )
            solved = outcome.solved
            invariant = _invariant_component(instance)
            infeasible_certified = infeasible_certified and invariant > instance.visibility
            detail = invariant
        agreement = agreement and (solved == predicted)
        table.add_row(
            [
                label,
                instance.attributes.speed,
                instance.attributes.time_unit,
                instance.attributes.orientation,
                instance.attributes.chirality,
                predicted,
                solved,
                detail,
            ]
        )
    report.add_table(table)
    report.add_check(
        "Theorem 4's verdict matches the simulation outcome on every grid point", agreement
    )
    report.add_check(
        "every infeasible configuration has an invariant separation component above r "
        "(certifying that no horizon would change the outcome)",
        infeasible_certified,
    )
    report.add_note(
        f"infeasible configurations were simulated up to horizon {_INFEASIBLE_HORIZON:g} with the "
        "separation placed along the adversarial (invariant) direction"
    )
    return finalize_report(report, output_dir)
