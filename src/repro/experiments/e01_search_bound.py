"""E01 -- Theorem 1: the universal search time bound.

For a sweep of ``(d, r)`` instances the experiment runs Algorithm 4,
measures the time at which the target is first seen and compares it with
the closed-form bound ``6(pi+1) log2(d^2/r) d^2/r``.  Two claims are
checked:

* every measured time is below the bound (Theorem 1 is an upper bound);
* the measured times follow the predicted shape ``c * log2(x) * x`` in the
  difficulty ``x = d^2/r`` (the scaling, not just the constant).

The sweep runs on the facade's batch path with the ``vectorized``
backend: the whole suite shares one compiled trajectory and the kernel's
event times match the scalar engine within ``TIME_TOLERANCE``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from ..analysis import ExperimentReport, Table, scaling_fit, summarize
from ..workloads import as_specs, search_sweep_suite
from .base import finalize_report, solve_specs

EXPERIMENT_ID = "E01"
TITLE = "Universal search time vs the Theorem 1 bound"
PAPER_REFERENCE = "Theorem 1, Section 2"

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_REFERENCE", "run"]


def run(output_dir: Optional[Path | str] = None, quick: bool = False) -> ExperimentReport:
    """Run the Theorem 1 sweep and return its report."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    specs = as_specs(search_sweep_suite())
    if quick:
        specs = specs[:: max(1, len(specs) // 12)]
    results = solve_specs(specs, backend="vectorized")

    table = Table(
        columns=["d", "r", "d^2/r", "measured", "bound", "ratio", "round"],
        title="Measured search time vs Theorem 1 bound",
    )
    ratios = []
    shape_difficulties = []
    shape_times = []
    for spec, result in zip(specs, results):
        ratios.append(result.bound_ratio)
        table.add_row(
            [
                spec.distance,
                spec.visibility,
                spec.difficulty,
                result.measured_time,
                result.bound,
                result.bound_ratio,
                result.details["guaranteed_round"],
            ]
        )
        if spec.difficulty >= 8.0:
            shape_difficulties.append(spec.difficulty)
            shape_times.append(result.measured_time)

    stats = summarize(ratios)
    report.add_note(f"bound ratios: {stats.describe()}")
    report.add_check(
        "every measured search time is below the Theorem 1 bound",
        stats.maximum < 1.0,
        f"max ratio {stats.maximum:.3f}",
    )
    if len(shape_times) >= 3:
        constant, relative_error = scaling_fit(shape_difficulties, shape_times)
        report.add_note(
            f"shape fit time ~ c*log2(x)*x over difficulties >= 8: c = {constant:.3f}, "
            f"relative RMS error = {relative_error:.2f} (bearing luck at low difficulty adds "
            "variance, which is why easy instances are excluded from the fit)"
        )
        report.add_check(
            "measured times follow the log2(x)*x shape (relative RMS below 1.0)",
            relative_error < 1.0,
            f"relative RMS error {relative_error:.2f}",
        )
        report.add_check(
            "fitted constant is below the worst-case 6(pi+1)",
            constant < 6.0 * (3.141592653589793 + 1.0),
            f"fitted c = {constant:.3f}",
        )
    report.add_table(table)
    return finalize_report(report, output_dir)
