"""E08 -- Lemmas 9-10 and Figure 3: active/inactive phase overlaps.

For clock ratios written as ``tau = t * 2^{-a}`` the experiment measures
the actual overlap between R's active phases and R''s inactive phases
(exact interval intersection of the two schedules) and compares it with
the closed-form overlap amounts of Lemmas 9 and 10 on the rounds where
their hypotheses hold.  It also verifies the qualitative driver of
Theorem 3: the overlap grows without bound as the round index grows.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from ..analysis import ExperimentReport, Table
from ..core import (
    decompose_tau,
    lemma9_applies,
    lemma9_overlap_amount,
    lemma10_applies,
    lemma10_overlap_amount,
    measured_overlap,
    search_all_time,
)
from .base import finalize_report

EXPERIMENT_ID = "E08"
TITLE = "Phase overlaps between the two robots (Lemmas 9-10, Figure 3)"
PAPER_REFERENCE = "Lemmas 9 and 10, Figure 3, Section 4"

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_REFERENCE", "run"]

_TAUS = (0.5, 0.55, 0.625, 0.7, 0.8, 0.9, 0.3, 0.2)


def run(output_dir: Optional[Path | str] = None, quick: bool = False) -> ExperimentReport:
    """Compare measured schedule overlaps against Lemmas 9 and 10."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    taus = _TAUS[:4] if quick else _TAUS
    max_round = 14 if quick else 20

    table = Table(
        columns=[
            "tau",
            "t",
            "a",
            "lemma",
            "active round",
            "inactive round",
            "claimed overlap",
            "measured overlap",
            "usable overlap ok",
        ],
        title="Closed-form overlap amounts vs measured schedule intersections",
    )
    containment_holds = True
    usable_holds = True
    growth_holds = True
    any_applicable = False

    def _record(
        tau: float,
        t: float,
        a: int,
        lemma: str,
        active_round: int,
        inactive_round: int,
        claimed: float,
        anchor_inside: bool,
    ) -> float:
        nonlocal containment_holds, usable_holds, any_applicable
        any_applicable = True
        window = measured_overlap(active_round, inactive_round, tau)
        containment_holds = containment_holds and anchor_inside
        # The paper's stated amount assumes the whole window fits inside R's
        # active phase; what the downstream Lemmas 11-12 actually use is
        # that the overlap leaves room for a full SearchAll of the active
        # round, i.e. min(claimed, S(active round)).
        usable = min(claimed, search_all_time(active_round))
        usable_ok = usable <= window.amount + 1e-6
        usable_holds = usable_holds and usable_ok
        table.add_row(
            [tau, t, a, lemma, active_round, inactive_round, claimed, window.amount, usable_ok]
        )
        return window.amount

    from ..core import active_phase_start, inactive_phase_start

    for tau in taus:
        decomposition = decompose_tau(tau)
        t, a = decomposition.t, decomposition.a
        previous_amount = None
        for k in range(2 * (a + 1), max_round + 1):
            if lemma9_applies(k, a, tau):
                claimed = lemma9_overlap_amount(k, a, tau)
                anchor = active_phase_start(k)
                inside = (
                    tau * inactive_phase_start(k + 1 + a) <= anchor + 1e-9
                    and anchor <= tau * active_phase_start(k + 1 + a) + 1e-9
                )
                amount = _record(tau, t, a, "Lemma 9", k, k + 1 + a, claimed, inside)
            elif lemma10_applies(k, a, tau):
                claimed = lemma10_overlap_amount(k, a, tau)
                anchor = inactive_phase_start(k)
                inside = (
                    tau * inactive_phase_start(k + a) <= anchor + 1e-9
                    and anchor <= tau * active_phase_start(k + a) + 1e-9
                )
                amount = _record(tau, t, a, "Lemma 10", k - 1, k + a, claimed, inside)
            else:
                continue
            if previous_amount is not None:
                growth_holds = growth_holds and amount >= previous_amount - 1e-6
            previous_amount = amount

    report.add_table(table)
    report.add_note(
        "the paper states the overlap as tau*A(n) - A(k) (Lemma 9) or I(k) - tau*I(n) (Lemma 10); "
        "that amount can exceed the part of R's active phase actually available, so the checked "
        "quantity is the one the rendezvous argument needs: the measured overlap must cover "
        "min(claimed, S(active round))"
    )
    report.add_check("at least one lemma applies for every examined tau", any_applicable)
    report.add_check(
        "the phase boundary the proofs anchor on always lies inside the other robot's inactive "
        "phase (the containment established in Lemmas 9-10)",
        containment_holds,
    )
    report.add_check(
        "the measured overlap always covers min(claimed amount, S(active round))", usable_holds
    )
    report.add_check(
        "the overlap grows with the round index (the driver of Theorem 3)", growth_holds
    )

    # Overlap eventually exceeds S(n) for any fixed n -- the rendezvous
    # trigger used by Lemmas 11-12.
    trigger_table = Table(
        columns=["tau", "n", "S(n)", "first round with overlap >= S(n)"],
        title="First round whose overlap covers a full SearchAll(n)",
    )
    trigger_ok = True
    for tau in taus[:4]:
        decomposition = decompose_tau(tau)
        a = decomposition.a
        for n in (1, 2, 3):
            needed = search_all_time(n)
            found_round = None
            for k in range(2 * (a + 1), max_round + 8):
                amount = max(
                    measured_overlap(k, k + 1 + a, tau).amount,
                    measured_overlap(k, k + a, tau).amount,
                )
                if amount >= needed:
                    found_round = k
                    break
            trigger_ok = trigger_ok and found_round is not None
            trigger_table.add_row([tau, n, needed, found_round if found_round else "not found"])
    report.add_table(trigger_table)
    report.add_check(
        "for every examined tau the overlap eventually exceeds S(n) (n = 1, 2, 3)", trigger_ok
    )
    return finalize_report(report, output_dir)
