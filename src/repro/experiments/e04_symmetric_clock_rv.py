"""E04 -- Theorem 2 (chi = +1): rendezvous with symmetric clocks.

Both robots run Algorithm 4.  For a sweep over speeds and orientations
(equal chirality) the measured rendezvous time is compared against the
Theorem 2 bound ``6(pi+1) log2(d^2/(mu r)) d^2/(mu r)`` with
``mu = sqrt(v^2 - 2 v cos(phi) + 1)``.

Runs on the facade's batch path with the ``vectorized`` backend (the
kernel's pair path); event times match the scalar engine within
``TIME_TOLERANCE``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from ..analysis import ExperimentReport, Table, summarize
from ..core.reduction import RendezvousReduction
from ..workloads import as_specs, symmetric_clock_suite
from .base import finalize_report, solve_specs

EXPERIMENT_ID = "E04"
TITLE = "Symmetric-clock rendezvous vs the Theorem 2 bound (equal chirality)"
PAPER_REFERENCE = "Theorem 2 and Lemma 6, Section 3"

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_REFERENCE", "run"]


def run(output_dir: Optional[Path | str] = None, quick: bool = False) -> ExperimentReport:
    """Run the equal-chirality Theorem 2 sweep."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    specs = as_specs(symmetric_clock_suite())
    if quick:
        specs = specs[:: max(1, len(specs) // 8)]
    results = solve_specs(specs, backend="vectorized")

    table = Table(
        columns=["v", "phi", "d", "r", "mu", "d^2/(mu r)", "measured", "bound", "ratio"],
        title="Measured rendezvous time vs Theorem 2 (chi = +1)",
    )
    ratios = []
    for spec, result in zip(specs, results):
        reduction = RendezvousReduction(spec.attributes)
        mu = reduction.mu
        ratios.append(result.bound_ratio)
        table.add_row(
            [
                spec.speed,
                spec.orientation,
                spec.distance,
                spec.visibility,
                mu,
                spec.difficulty / mu,
                result.measured_time,
                result.bound,
                result.bound_ratio,
            ]
        )
    stats = summarize([r for r in ratios if r is not None])
    report.add_table(table)
    report.add_note(f"bound ratios: {stats.describe()}")
    report.add_check(
        "every measured rendezvous time is below the Theorem 2 bound",
        stats.maximum < 1.0,
        f"max ratio {stats.maximum:.3f}",
    )
    report.add_check(
        "all instances in the sweep rendezvoused (Theorem 2 feasibility)",
        len([r for r in ratios if r is not None]) == len(specs),
    )
    return finalize_report(report, output_dir)
