"""Shared plumbing for experiment modules.

Every experiment module exposes ``run(output_dir=None, quick=False)``
returning an :class:`~repro.analysis.report.ExperimentReport`.  The helpers
here keep the per-experiment code focused on the science: they handle
artefact writing and the common "measured vs bound" bookkeeping.

Solving goes through :func:`solve_specs`.  Historically it built a fresh
:class:`~repro.api.BatchRunner` per call, which silently defeated the LRU
across the stages of a single experiment (and across experiments in a
``--all`` sweep).  It now prefers a *shared* runner: either one passed
explicitly, or the ambient one installed by :func:`shared_runner` -- the
run-all driver wraps every experiment in that context, so one LRU (and,
when requested, one persistent store) serves the whole sweep.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional

from ..analysis import ExperimentReport
from ..api import BatchRunner, ProblemSpec, SolveResult

__all__ = [
    "finalize_report",
    "solve_specs",
    "shared_runner",
    "active_runner",
    "active_progress",
]

#: Stack of ``(runner, recorder, progress)`` triples installed by
#: :func:`shared_runner`.
_ACTIVE: list[tuple[BatchRunner, Optional[Any], Optional[Any]]] = []


@contextmanager
def shared_runner(
    runner: Optional[BatchRunner] = None,
    recorder: Optional[Any] = None,
    progress: Optional[Any] = None,
) -> Iterator[BatchRunner]:
    """Install a runner every :func:`solve_specs` call in the block shares.

    Args:
        runner: the runner to share (a default one is built when omitted).
        recorder: optional observer with a
            ``record(backend, specs, results, stats)`` method (see
            :class:`~repro.experiments.manifest.ExperimentRecorder`),
            notified after every solve.
        progress: optional streaming observer invoked with every
            :class:`~repro.exec.plan.Completion` *as it happens* (the
            runner's ``run_iter`` stream), not after the batch returns.
    """
    if runner is None:
        runner = BatchRunner()
    _ACTIVE.append((runner, recorder, progress))
    try:
        yield runner
    finally:
        _ACTIVE.pop()


def active_runner() -> Optional[BatchRunner]:
    """The innermost shared runner, or None outside any context."""
    return _ACTIVE[-1][0] if _ACTIVE else None


def active_progress() -> Optional[Any]:
    """The innermost shared progress observer, or None."""
    return _ACTIVE[-1][2] if _ACTIVE else None


def finalize_report(report: ExperimentReport, output_dir: Optional[Path | str]) -> ExperimentReport:
    """Write artefacts when an output directory was requested, then return the report."""
    if output_dir is not None:
        report.write_artifacts(Path(output_dir))
    return report


def solve_specs(
    specs: Iterable[ProblemSpec],
    backend: str = "simulation",
    processes: Optional[int] = None,
    runner: Optional[BatchRunner] = None,
) -> list[SolveResult]:
    """Solve a batch of specs through the facade (the experiments' solve path).

    Experiments default to the simulation backend -- they exist to compare
    measured behaviour against the paper's bounds -- but share the facade's
    batch runner, so caching, the persistent store and pooling come for
    free when a driver wants them.

    Resolution order for the runner: the explicit ``runner`` argument,
    then the ambient :func:`shared_runner` context, then a throwaway
    runner (in which case ``processes`` configures its pool; a shared
    runner keeps its own pool configuration).  The requested ``backend``
    always applies per call -- the shared runner keys its caches by
    backend name, so experiments with different fidelity needs never mix
    results.
    """
    spec_list = list(specs)
    recorder = progress = None
    if runner is None and _ACTIVE:
        runner, recorder, progress = _ACTIVE[-1]
    if runner is None:
        runner = BatchRunner(backend=backend, processes=processes)
    results, stats = runner.run(spec_list, backend=backend, on_completion=progress)
    if recorder is not None:
        recorder.record(backend, spec_list, results, stats)
    return results
