"""Shared plumbing for experiment modules.

Every experiment module exposes ``run(output_dir=None, quick=False)``
returning an :class:`~repro.analysis.report.ExperimentReport`.  The helpers
here keep the per-experiment code focused on the science: they handle
artefact writing and the common "measured vs bound" bookkeeping.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from ..analysis import ExperimentReport

__all__ = ["finalize_report"]


def finalize_report(report: ExperimentReport, output_dir: Optional[Path | str]) -> ExperimentReport:
    """Write artefacts when an output directory was requested, then return the report."""
    if output_dir is not None:
        report.write_artifacts(Path(output_dir))
    return report
