"""Shared plumbing for experiment modules.

Every experiment module exposes ``run(output_dir=None, quick=False)``
returning an :class:`~repro.analysis.report.ExperimentReport`.  The helpers
here keep the per-experiment code focused on the science: they handle
artefact writing and the common "measured vs bound" bookkeeping.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional

from ..analysis import ExperimentReport
from ..api import BatchRunner, ProblemSpec, SolveResult

__all__ = ["finalize_report", "solve_specs"]


def finalize_report(report: ExperimentReport, output_dir: Optional[Path | str]) -> ExperimentReport:
    """Write artefacts when an output directory was requested, then return the report."""
    if output_dir is not None:
        report.write_artifacts(Path(output_dir))
    return report


def solve_specs(
    specs: Iterable[ProblemSpec],
    backend: str = "simulation",
    processes: Optional[int] = None,
) -> list[SolveResult]:
    """Solve a batch of specs through the facade (the experiments' solve path).

    Experiments default to the simulation backend -- they exist to compare
    measured behaviour against the paper's bounds -- but share the facade's
    batch runner, so caching and pooling come for free when a driver wants
    them.
    """
    return BatchRunner(backend=backend, processes=processes).solve_many(specs)
