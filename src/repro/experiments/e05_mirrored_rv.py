"""E05 -- Theorem 2 / Lemma 7 (chi = -1): rendezvous of mirrored robots.

Both robots run Algorithm 4 but disagree on the +y direction.  For a sweep
over speeds ``v < 1`` and orientations the measured rendezvous time is
compared with the Theorem 2 bound
``6(pi+1) log2(d^2/((1-v) r)) d^2/((1-v) r)``.  The sweep includes the
adversarial bearing and the bound-maximising orientation ``phi = pi``
(where the ``1/(1-v)`` blow-up is actually felt).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from ..analysis import ExperimentReport, Table, summarize
from ..core import solve_rendezvous
from ..workloads import mirrored_suite, mirrored_worst_instance
from .base import finalize_report

EXPERIMENT_ID = "E05"
TITLE = "Mirrored rendezvous vs the Theorem 2 bound (opposite chirality)"
PAPER_REFERENCE = "Theorem 2 and Lemma 7, Section 3"

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_REFERENCE", "run"]


def run(output_dir: Optional[Path | str] = None, quick: bool = False) -> ExperimentReport:
    """Run the opposite-chirality Theorem 2 sweep."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    instances = mirrored_suite()
    if quick:
        instances = instances[:: max(1, len(instances) // 6)]
    # Add the explicit worst-case configurations of Lemma 7.
    for speed in (0.3, 0.6):
        instances.append(mirrored_worst_instance(speed=speed, distance=1.2, visibility=0.4))

    table = Table(
        columns=["v", "phi", "bearing", "d", "r", "measured", "bound", "ratio"],
        title="Measured rendezvous time vs Theorem 2 (chi = -1)",
    )
    ratios = []
    for instance in instances:
        result = solve_rendezvous(instance)
        ratios.append(result.bound_ratio)
        table.add_row(
            [
                instance.attributes.speed,
                instance.attributes.orientation,
                instance.separation.angle(),
                instance.distance,
                instance.visibility,
                result.time,
                result.bound,
                result.bound_ratio,
            ]
        )
    stats = summarize([r for r in ratios if r is not None])
    report.add_table(table)
    report.add_note(f"bound ratios: {stats.describe()}")
    report.add_check(
        "every measured rendezvous time is below the Theorem 2 bound",
        stats.maximum < 1.0,
        f"max ratio {stats.maximum:.3f}",
    )
    report.add_check(
        "all mirrored instances with v < 1 rendezvoused",
        len([r for r in ratios if r is not None]) == len(instances),
    )
    return finalize_report(report, output_dir)
