"""F03 -- Figure 3: the two overlap configurations.

Figure 3 illustrates the two ways in which an active phase of R can
overlap an inactive phase of R': (a) R' becomes inactive before R becomes
active (Lemma 9), and (b) R becomes active while R' is still inactive
from an earlier round (Lemma 10).  The experiment picks clock ratios that
realise each configuration, regenerates the two-robot schedule diagram,
and checks that the realised overlap window matches the corresponding
lemma's window.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from ..analysis import ExperimentReport, Table
from ..core import (
    decompose_tau,
    lemma9_applies,
    lemma9_overlap_amount,
    lemma10_applies,
    lemma10_overlap_amount,
    measured_overlap,
)
from ..viz import overlap_rows, plot_schedule_svg, render_schedule_ascii
from .base import finalize_report

EXPERIMENT_ID = "F03"
TITLE = "Figure 3: the two active/inactive overlap configurations"
PAPER_REFERENCE = "Figure 3, Lemmas 9-10, Section 4"

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_REFERENCE", "run"]

#: (tau, active round) pairs chosen so that the first realises the
#: Figure 3(a)/Lemma 9 configuration and the second Figure 3(b)/Lemma 10.
_CASES = ((0.55, 10), (0.8, 10))


def run(output_dir: Optional[Path | str] = None, quick: bool = False) -> ExperimentReport:
    """Regenerate Figure 3."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    table = Table(
        columns=["tau", "a", "configuration", "active round", "inactive round", "claimed", "measured", "realised"],
        title="Figure 3 overlap windows",
    )
    both_configurations = {"a": False, "b": False}
    claims_ok = True
    for tau, base_round in _CASES:
        decomposition = decompose_tau(tau)
        a = decomposition.a
        for k in range(max(2 * (a + 1), base_round - 4), base_round + 6):
            if lemma9_applies(k, a, tau):
                claimed = lemma9_overlap_amount(k, a, tau)
                window = measured_overlap(k, k + 1 + a, tau)
                realised = window.amount > 0.0
                both_configurations["a"] = both_configurations["a"] or realised
                claims_ok = claims_ok and claimed <= window.amount + 1e-6
                table.add_row(
                    [tau, a, "Figure 3(a) / Lemma 9", k, k + 1 + a, claimed, window.amount, realised]
                )
                break
        for k in range(max(2 * (a + 1), base_round - 4), base_round + 6):
            if lemma10_applies(k, a, tau):
                claimed = lemma10_overlap_amount(k, a, tau)
                window = measured_overlap(k - 1, k + a, tau)
                realised = window.amount > 0.0
                both_configurations["b"] = both_configurations["b"] or realised
                claims_ok = claims_ok and claimed <= window.amount + 1e-6
                table.add_row(
                    [tau, a, "Figure 3(b) / Lemma 10", k - 1, k + a, claimed, window.amount, realised]
                )
                break
    report.add_table(table)
    report.add_check("the Figure 3(a) configuration is realised by some examined round", both_configurations["a"])
    report.add_check("the Figure 3(b) configuration is realised by some examined round", both_configurations["b"])
    report.add_check("the realised overlaps are at least the lemmas' claimed amounts", claims_ok)

    rows = overlap_rows(6, _CASES[0][0])
    report.add_note(
        "Figure 3 rendering (two robots' schedules on the global time axis; w = inactive, a = active):\n"
        + render_schedule_ascii(rows)
    )
    if output_dir is not None:
        plot_schedule_svg(rows, Path(output_dir) / "figure3.svg", title="Figure 3: schedules of both robots")
    return finalize_report(report, output_dir)
