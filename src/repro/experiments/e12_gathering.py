"""E12 -- Extension: multi-robot gathering (the paper's future-work direction).

This experiment goes beyond the paper (see the scope note in DESIGN.md).  It
lifts the two-robot results pairwise to small swarms and checks the
predictions that follow directly from Theorem 4:

* a swarm whose members all have distinct speeds meets pairwise, and every
  pairwise meeting respects the corresponding Theorem 2/3 bound;
* a swarm containing two attribute-identical robots cannot gather pairwise
  (that pair never meets), yet *connectivity* gathering is still achieved
  through a third, attribute-distinct robot -- the feasibility graph, not the
  complete graph, is what matters.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from ..algorithms import UniversalSearch
from ..analysis import ExperimentReport, Table
from ..core import rendezvous_time_bound
from ..geometry import Vec2
from ..gathering import GatheringInstance, simulate_gathering, swarm_feasibility
from ..robots import RobotAttributes
from ..simulation import RendezvousInstance
from .base import finalize_report

EXPERIMENT_ID = "E12"
TITLE = "Extension: pairwise and connectivity gathering of small swarms"
PAPER_REFERENCE = "Section 5 (conclusions / future work); builds on Theorems 2-4"

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_REFERENCE", "run"]

_HORIZON = 20000.0


def _heterogeneous_swarm(size: int) -> GatheringInstance:
    speeds = [0.5 + 0.25 * index for index in range(size)]
    positions = [Vec2.polar(0.9, 2.1 * index) for index in range(size)]
    attributes = [RobotAttributes(speed=speed) for speed in speeds]
    return GatheringInstance.create(positions, attributes, visibility=0.4)


def _swarm_with_twins() -> GatheringInstance:
    return GatheringInstance.create(
        [Vec2(0.0, 0.0), Vec2(1.2, 0.0), Vec2(0.5, 0.9)],
        [RobotAttributes(), RobotAttributes(), RobotAttributes(time_unit=0.5)],
        visibility=0.45,
    )


def run(output_dir: Optional[Path | str] = None, quick: bool = False) -> ExperimentReport:
    """Run the gathering extension experiment."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )

    # Part 1: fully heterogeneous swarm -- every pair must meet, each within
    # its own two-robot bound.  All clocks are equal in this swarm, so every
    # robot runs Algorithm 4 (the regime of Theorem 2, whose bound is the
    # yardstick below); the twins swarm of part 2 exercises Algorithm 7.
    swarm = _heterogeneous_swarm(3 if quick else 4)
    feasibility = swarm_feasibility(swarm)
    outcome = simulate_gathering(swarm, horizon=_HORIZON, algorithm=UniversalSearch())
    table = Table(
        columns=["pair", "initial distance", "feasible", "met", "time", "two-robot bound", "within bound"],
        title=f"Pairwise meetings of a {swarm.size}-robot swarm with distinct speeds",
    )
    all_within_bound = True
    for result in outcome.pairwise:
        i, j = result.first, result.second
        # Normalise the pair to the paper's reference frame: distances are
        # expressed in the observer's distance unit and the resulting bound
        # (stated in the observer's local time) is converted back to global
        # time with the observer's clock unit.
        observer = swarm.members[i].attributes
        unit = observer.speed * observer.time_unit
        relative_instance = RendezvousInstance(
            separation=(swarm.members[j].position - swarm.members[i].position) / unit,
            visibility=swarm.visibility / unit,
            attributes=_relative(swarm, i, j),
        )
        local_bound = rendezvous_time_bound(relative_instance)
        bound = local_bound * observer.time_unit if local_bound is not None else None
        within = result.met and bound is not None and result.time <= bound
        all_within_bound = all_within_bound and within
        table.add_row(
            [
                f"(R{i}, R{j})",
                swarm.pair_distance(i, j),
                result.feasible,
                result.met,
                result.time if result.met else "-",
                bound if bound is not None else "-",
                within,
            ]
        )
    report.add_table(table)
    report.add_check(
        "a swarm with pairwise-distinct speeds is predicted fully gatherable",
        feasibility.pairwise_gathering_feasible,
    )
    report.add_check("every pair of the heterogeneous swarm met in simulation", outcome.all_pairs_met)
    report.add_check(
        "every pairwise meeting respects its two-robot time bound", all_within_bound
    )
    report.add_check(
        "connectivity gathering never happens later than pairwise gathering",
        outcome.connectivity_gathering_time is not None
        and outcome.connectivity_gathering_time <= outcome.pairwise_gathering_time + 1e-9,
    )

    # Part 2: a swarm containing attribute-identical twins.
    twins = _swarm_with_twins()
    twins_feasibility = swarm_feasibility(twins)
    twins_outcome = simulate_gathering(twins, horizon=_HORIZON)
    twins_table = Table(
        columns=["pair", "feasible", "met", "time"],
        title="Swarm containing two attribute-identical robots",
    )
    for result in twins_outcome.pairwise:
        twins_table.add_row(
            [
                f"(R{result.first}, R{result.second})",
                result.feasible,
                result.met,
                result.time if result.met else "-",
            ]
        )
    report.add_table(twins_table)
    report.add_check(
        "the twin pair is predicted infeasible and indeed never meets",
        not twins_feasibility.pairwise_gathering_feasible
        and not twins_outcome.result_for(0, 1).met,
    )
    report.add_check(
        "connectivity gathering is still predicted feasible and achieved through the third robot",
        twins_feasibility.connectivity_gathering_feasible
        and twins_outcome.connectivity_gathering_time is not None,
    )
    report.add_note(
        "this experiment is an extension beyond the paper: it applies the paper's pairwise "
        "theory to swarms; 'gathering at a single point' in the strong sense remains open, as "
        "the paper notes"
    )
    return finalize_report(report, output_dir)


def _relative(swarm: GatheringInstance, i: int, j: int) -> RobotAttributes:
    from ..gathering import relative_attributes

    return relative_attributes(swarm.members[i].attributes, swarm.members[j].attributes)
