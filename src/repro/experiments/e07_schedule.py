"""E07 -- Lemma 8 and Figures 1-2: the Algorithm 7 schedule.

The experiment materialises the first rounds of Algorithm 7 and measures
where the inactive and active phases actually begin in the generated
trajectory, comparing against Lemma 8's closed forms ``I(n)``, ``A(n)``
and ``S(n)``.  It also regenerates the interval diagrams of Figures 1-2
(data plus ASCII/SVG renderings).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from ..algorithms import SearchAll, TruncatedWaitAndSearch
from ..analysis import ExperimentReport, Table
from ..core import RoundSchedule, active_phase_start, inactive_phase_start, search_all_time
from ..motion import WaitMotion
from ..viz import active_phase_rows, render_schedule_ascii, round_structure_rows
from .base import finalize_report

EXPERIMENT_ID = "E07"
TITLE = "The Algorithm 7 schedule: S(n), I(n), A(n) (Lemma 8, Figures 1-2)"
PAPER_REFERENCE = "Lemma 8, Figures 1 and 2, Section 4"

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_REFERENCE", "run"]

_RELATIVE_TOLERANCE = 1e-9


def _measured_phase_starts(rounds: int) -> list[tuple[int, float, float]]:
    """Measured ``(round, inactive start, active start)`` from the trajectory.

    The inactive phase of round ``n`` begins at the long wait segment that
    opens the round; the active phase begins when that wait ends.
    """
    algorithm = TruncatedWaitAndSearch(rounds)
    starts: list[tuple[int, float, float]] = []
    elapsed = 0.0
    round_index = 0
    for segment in algorithm.segments():
        if isinstance(segment, WaitMotion) and round_index < rounds:
            expected_wait = 2.0 * search_all_time(round_index + 1)
            if abs(segment.duration - expected_wait) <= 1e-6 * expected_wait:
                round_index += 1
                starts.append((round_index, elapsed, elapsed + segment.duration))
        elapsed += segment.duration
    return starts


def run(output_dir: Optional[Path | str] = None, quick: bool = False) -> ExperimentReport:
    """Compare the measured Algorithm 7 schedule with Lemma 8."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    rounds = 3 if quick else 5

    table = Table(
        columns=["n", "measured I(n)", "predicted I(n)", "measured A(n)", "predicted A(n)", "S(n)"],
        title="Phase start times vs Lemma 8",
    )
    worst = 0.0
    for n, measured_inactive, measured_active in _measured_phase_starts(rounds):
        predicted_inactive = inactive_phase_start(n)
        predicted_active = active_phase_start(n)
        for measured, predicted in (
            (measured_inactive, predicted_inactive),
            (measured_active, predicted_active),
        ):
            denominator = max(abs(predicted), 1.0)
            worst = max(worst, abs(measured - predicted) / denominator)
        table.add_row(
            [
                n,
                measured_inactive,
                predicted_inactive,
                measured_active,
                predicted_active,
                search_all_time(n),
            ]
        )
    report.add_table(table)
    report.add_check(
        "measured inactive/active phase starts match I(n) and A(n) exactly",
        worst <= _RELATIVE_TOLERANCE,
        f"worst relative error {worst:.3e}",
    )

    # S(n) closed form vs the duration of SearchAll(n).
    sn_table = Table(columns=["n", "measured S(n)", "predicted S(n)"], title="SearchAll durations")
    sn_worst = 0.0
    for n in range(1, rounds + 1):
        measured = SearchAll(n).duration()
        predicted = search_all_time(n)
        sn_worst = max(sn_worst, abs(measured - predicted) / predicted)
        sn_table.add_row([n, measured, predicted])
    report.add_table(sn_table)
    report.add_check(
        "SearchAll(n) durations match S(n) = 12(pi+1) n 2^n",
        sn_worst <= _RELATIVE_TOLERANCE,
        f"worst relative error {sn_worst:.3e}",
    )

    # Figure reproductions (data-level, rendered as ASCII in the notes and
    # as SVG artefacts when an output directory is given).
    schedule = RoundSchedule(1.0)
    figure1 = round_structure_rows(3)
    figure2 = active_phase_rows(4 if not quick else 3)
    report.add_note("Figure 1 (three rounds):\n" + render_schedule_ascii(figure1))
    report.add_note("Figure 2 (structure of one active phase):\n" + render_schedule_ascii(figure2))
    report.add_check(
        "each round's inactive and active phases have equal length 2 S(n)",
        all(
            abs(schedule.inactive_phase(n).duration - 2.0 * search_all_time(n)) <= 1e-9
            and abs(schedule.active_phase(n).duration - 2.0 * search_all_time(n)) <= 1e-9
            for n in range(1, rounds + 1)
        ),
    )
    if output_dir is not None:
        from ..viz import plot_schedule_svg

        plot_schedule_svg(figure1, Path(output_dir) / "figure1_rounds.svg", title="Figure 1")
        plot_schedule_svg(figure2, Path(output_dir) / "figure2_active_phase.svg", title="Figure 2")
    return finalize_report(report, output_dir)
