"""E02 -- Lemma 2: closed-form durations of Algorithms 1-4.

The trajectories produced by ``SearchCircle``, ``SearchAnnulus``,
``Search(k)`` and the truncated Algorithm 4 are materialised and their
exact durations compared against Lemma 2's closed forms.  These are exact
identities, so the comparison tolerance is pure floating point.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Optional

from ..algorithms import SearchAnnulus, SearchCircle, SearchRound, TruncatedUniversalSearch
from ..analysis import ExperimentReport, Table
from ..core import (
    search_annulus_duration,
    search_circle_duration,
    search_round_duration,
    universal_search_prefix_duration,
)
from .base import finalize_report

EXPERIMENT_ID = "E02"
TITLE = "Closed-form durations of Algorithms 1-4 (Lemma 2)"
PAPER_REFERENCE = "Lemma 2, Section 2"

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_REFERENCE", "run"]

_RELATIVE_TOLERANCE = 1e-9


def _relative_error(measured: float, predicted: float) -> float:
    return abs(measured - predicted) / max(abs(predicted), 1e-300)


def run(output_dir: Optional[Path | str] = None, quick: bool = False) -> ExperimentReport:
    """Compare measured trajectory durations against Lemma 2."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    table = Table(
        columns=["algorithm", "parameters", "measured", "predicted", "relative error"],
        title="Trajectory durations vs Lemma 2 closed forms",
    )
    worst = 0.0

    for delta in (0.25, 0.5, 1.0, 2.0, 3.5):
        measured = SearchCircle(delta).duration()
        predicted = search_circle_duration(delta)
        worst = max(worst, _relative_error(measured, predicted))
        table.add_row(["SearchCircle", f"delta={delta:g}", measured, predicted, _relative_error(measured, predicted)])

    annulus_cases = [(0.5, 1.0, 0.125), (0.25, 2.0, 0.0625), (1.0, 4.0, 0.5), (0.0, 1.0, 0.25)]
    for delta1, delta2, rho in annulus_cases:
        measured = SearchAnnulus(delta1, delta2, rho).duration()
        predicted = search_annulus_duration(delta1, delta2, rho)
        worst = max(worst, _relative_error(measured, predicted))
        table.add_row(
            [
                "SearchAnnulus",
                f"delta1={delta1:g}, delta2={delta2:g}, rho={rho:g}",
                measured,
                predicted,
                _relative_error(measured, predicted),
            ]
        )

    max_round = 3 if quick else 5
    for k in range(1, max_round + 1):
        measured = SearchRound(k).duration()
        predicted = search_round_duration(k)
        worst = max(worst, _relative_error(measured, predicted))
        table.add_row(["Search(k)", f"k={k}", measured, predicted, _relative_error(measured, predicted)])

    for k in range(1, max_round + 1):
        measured = TruncatedUniversalSearch(k).duration()
        predicted = universal_search_prefix_duration(k)
        worst = max(worst, _relative_error(measured, predicted))
        table.add_row(
            ["Algorithm 4, rounds 1..k", f"k={k}", measured, predicted, _relative_error(measured, predicted)]
        )

    report.add_table(table)
    report.add_note(f"worst relative error across all closed forms: {worst:.3e}")
    report.add_check(
        "all measured durations match Lemma 2's closed forms",
        worst <= _RELATIVE_TOLERANCE,
        f"worst relative error {worst:.3e}",
    )

    # Special case noted in the annulus formula: delta1 = 0 skips the
    # degenerate zero-radius circle, so the closed form over-counts one
    # circle of zero radius -- the durations still agree because that
    # circle contributes zero time.
    zero_inner = SearchAnnulus(0.0, 1.0, 0.25)
    report.add_check(
        "the delta1 = 0 annulus matches the closed form despite the degenerate circle",
        math.isclose(zero_inner.duration(), search_annulus_duration(0.0, 1.0, 0.25), rel_tol=1e-9),
    )
    return finalize_report(report, output_dir)
