"""E14 -- Fault tolerance: crashes, Byzantine partners, Monte-Carlo envelopes.

The paper's model assumes two reliable robots.  This experiment probes
what survives when that assumption breaks, using the ``repro.faults``
subsystem and the ``montecarlo`` backend:

* **Symmetry breaking by wreckage.**  Theorem 4 proves identical robots
  can never rendezvous -- yet if one of them crash-stops, its wreck is a
  static target and the healthy robot's spiral search finds it.  The
  provably-infeasible instance becomes *solved* under the fault, with
  ``feasible`` still honestly ``False``.
* **Crash-onset monotonicity.**  A searcher that crash-stops earlier has
  less time to work: the per-spec solve rate is non-decreasing in the
  crash onset, and crash-recovery (which merely delays the schedule)
  always completes.
* **Byzantine envelopes.**  An adversarial partner produces genuinely
  randomized trials; the seeded trial stream still makes the whole
  mean/percentile/CI envelope a pure function of the spec, which this
  experiment verifies by resolving through two independent backend
  instances and comparing envelopes bit-for-bit.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Optional

from ..analysis import ExperimentReport, Table
from ..api import RendezvousProblem, SearchProblem
from ..faults import FaultModel
from ..faults.montecarlo import MonteCarloBackend
from .base import finalize_report, solve_specs

EXPERIMENT_ID = "E14"
TITLE = "Fault tolerance: crash and Byzantine robots under Monte-Carlo envelopes"
PAPER_REFERENCE = "Beyond the paper: Theorems 1 and 4 stressed by crash/Byzantine faults"

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_REFERENCE", "run"]

_MC_SEED = 97


def _search_spec(fault: Optional[FaultModel]) -> SearchProblem:
    return SearchProblem(distance=1.5, visibility=0.3, bearing=0.8, fault_model=fault)


def run(output_dir: Optional[Path | str] = None, quick: bool = False) -> ExperimentReport:
    """Run the fault-tolerance study."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    trials = 4 if quick else 8

    # --- Symmetry breaking: infeasible instance solved via the wreck. ---
    identical = RendezvousProblem(distance=1.5, visibility=0.3)
    crashed_partner = dataclasses.replace(
        identical,
        fault_model=FaultModel(
            kind="crash-stop",
            robot="other",
            crash_time=1.0,
            trials=trials,
            mc_seed=_MC_SEED,
            jitter=0.25,
        ),
    )
    healthy_result, crashed_result = solve_specs(
        [identical, crashed_partner], backend="montecarlo"
    )
    crossover_table = Table(
        columns=["scenario", "feasible", "solved", "solve rate", "mean time"],
        title="Theorem 4 instance: identical robots, with and without a partner crash",
    )
    for label, result in (("healthy", healthy_result), ("partner crash-stop", crashed_result)):
        crossover_table.add_row(
            [
                label,
                result.feasible,
                result.solved,
                result.details["solve_rate"],
                result.details["envelope"]["mean"],
            ]
        )
    report.add_table(crossover_table)
    report.add_check(
        "identical robots never rendezvous while both are healthy (Theorem 4)",
        not healthy_result.feasible and not healthy_result.solved,
    )
    report.add_check(
        "the same instance is solved in every trial once the partner crash-stops "
        "(the wreck is a static target for the Theorem 1 search)",
        crashed_result.solved and crashed_result.details["solve_rate"] == 1.0,
    )
    report.add_check(
        "the fault does not launder feasibility: the faulted result still reports "
        "feasible=False",
        crashed_result.feasible is False,
    )

    # --- Crash onset: earlier crashes solve less often. ---
    # The healthy searcher finishes near t = 41.7; the grid straddles that
    # so the solve rate actually climbs from 0 through a jitter-mixed band
    # to 1 instead of sitting flat at either end.
    onsets = (0.5, 8.0, 64.0) if quick else (0.5, 2.0, 8.0, 48.0, 64.0)
    stop_specs = [
        _search_spec(
            FaultModel(
                kind="crash-stop",
                robot="reference",
                crash_time=onset,
                trials=trials,
                mc_seed=_MC_SEED,
                jitter=0.25,
            )
        )
        for onset in onsets
    ]
    recovery_specs = [
        _search_spec(
            FaultModel(
                kind="crash-recovery",
                robot="reference",
                crash_time=onset,
                recovery_delay=4.0,
                trials=trials,
                mc_seed=_MC_SEED,
                jitter=0.25,
            )
        )
        for onset in onsets
    ]
    healthy_search = solve_specs([_search_spec(None)], backend="simulation")[0]
    stop_results = solve_specs(stop_specs, backend="montecarlo")
    recovery_results = solve_specs(recovery_specs, backend="montecarlo")
    onset_table = Table(
        columns=[
            "crash onset",
            "stop solve rate",
            "stop statuses",
            "recovery solve rate",
            "recovery mean time",
        ],
        title="Searcher crash onset sweep (healthy time "
        f"{healthy_search.measured_time:.3f})",
    )
    for onset, stop, recovery in zip(onsets, stop_results, recovery_results):
        onset_table.add_row(
            [
                onset,
                stop.details["solve_rate"],
                ", ".join(f"{k}:{v}" for k, v in stop.details["statuses"].items()),
                recovery.details["solve_rate"],
                recovery.details["envelope"]["mean"],
            ]
        )
    report.add_table(onset_table)
    stop_rates = [result.details["solve_rate"] for result in stop_results]
    report.add_check(
        "crash-stop solve rate is non-decreasing in the crash onset",
        all(a <= b + 1e-12 for a, b in zip(stop_rates, stop_rates[1:])),
        f"rates: {stop_rates}",
    )
    report.add_check(
        "a searcher that crashes almost immediately reports the typed "
        "crashed-before-discovery outcome, not an exception",
        "crashed-before-discovery" in stop_results[0].details["statuses"],
    )
    report.add_check(
        "a crash after the healthy completion time never disturbs the search",
        stop_rates[-1] == 1.0,
    )
    report.add_check(
        "crash-recovery always completes the search (the schedule is delayed, not lost)",
        all(result.details["solve_rate"] == 1.0 for result in recovery_results),
    )
    recovery_means = [result.details["envelope"]["mean"] for result in recovery_results]
    report.add_check(
        "crash-recovery is slower on average than the healthy searcher whenever the "
        "crash strikes mid-search, and never faster",
        all(
            mean > healthy_search.measured_time
            if onset < healthy_search.measured_time
            else mean >= healthy_search.measured_time - 1e-6
            for onset, mean in zip(onsets, recovery_means)
        ),
        f"healthy {healthy_search.measured_time:.3f}, means {recovery_means}",
    )

    # --- Byzantine partner: randomized trials, deterministic envelope. ---
    byzantine = RendezvousProblem(
        distance=1.6,
        visibility=0.35,
        bearing=0.9,
        speed=0.7,
        fault_model=FaultModel(
            kind="byzantine",
            robot="other",
            crash_time=2.0,
            trials=trials,
            mc_seed=_MC_SEED,
        ),
    )
    # Two *independent* backend instances, bypassing every cache tier, so
    # envelope equality is a real determinism statement.
    first = MonteCarloBackend().solve(byzantine)
    second = MonteCarloBackend().solve(byzantine)
    byz_table = Table(
        columns=["trials", "solve rate", "mean", "p90", "ci95 halfwidth"],
        title="Byzantine partner ensemble",
    )
    envelope = first.details["envelope"]
    byz_table.add_row(
        [
            first.details["trials"],
            first.details["solve_rate"],
            envelope["mean"],
            envelope["p90"],
            envelope["ci95_halfwidth"],
        ]
    )
    report.add_table(byz_table)
    report.add_check(
        "the Byzantine ensemble ran every requested trial "
        "(the walk varies per trial, so no collapse)",
        first.details["trials"] == trials,
    )
    report.add_check(
        "independent backend instances produce bit-identical envelopes for the "
        "same spec (seeds are a pure function of the canonical hash)",
        first.details["envelope"] == second.details["envelope"]
        and first.details["statuses"] == second.details["statuses"],
    )
    report.add_check(
        "envelope percentiles are ordered: p50 <= p90 <= p99 <= max",
        envelope["p50"] <= envelope["p90"] <= envelope["p99"] <= envelope["max"]
        if envelope["p50"] is not None
        else True,
    )
    report.add_note(
        "crash faults turn the paper's worst case on its head: the adversary that "
        "disables a robot also hands the survivor a static target, which is strictly "
        "easier than symmetric rendezvous"
    )
    return finalize_report(report, output_dir)
