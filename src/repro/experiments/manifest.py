"""Run manifests: what each experiment solved, and how to resume it.

A :class:`RunManifest` is a small JSON file living next to a persistent
:class:`~repro.api.store.ResultStore`.  For every experiment it records
the ``(backend, canonical spec hash)`` pairs the experiment solved plus
an order-independent *fingerprint digest* of the results.  Together with
the store this makes ``repro experiments --all`` incremental:

* before re-running an experiment, the manifest says exactly which of
  its specs are already in the store (an interrupted run resumes where
  it stopped -- the store flushes progress segment by segment);
* after re-running, the digest must match the recorded one -- a cheap,
  end-to-end determinism check across processes and machines.

The :class:`ExperimentRecorder` is the bridge: installed by the run-all
driver around each experiment, it observes every
:func:`~repro.experiments.base.solve_specs` call the experiment makes.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional, Sequence, Union

from .._version import __version__
from ..api.result import SolveResult
from ..api.spec import ProblemSpec
from ..api.store import ResultStore

__all__ = [
    "fingerprint_digest",
    "fingerprint_blob_hash",
    "digest_blob_hashes",
    "fold_digest",
    "ExperimentRecorder",
    "RunManifest",
    "MANIFEST_NAME",
]

#: File name of the manifest inside a store directory.
MANIFEST_NAME = "manifest.json"


def _fingerprint_blob(result: SolveResult) -> str:
    return json.dumps(result.fingerprint(), sort_keys=True, separators=(",", ":"), allow_nan=False)


def _digest_blobs(blobs: Iterable[str]) -> str:
    """SHA-256 over the sorted, deduplicated fingerprint blobs."""
    digest = hashlib.sha256()
    for blob in sorted(set(blobs)):
        digest.update(blob.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def fingerprint_digest(results: Iterable[SolveResult]) -> str:
    """Order-independent SHA-256 digest over result fingerprints.

    Equal result sets digest equally no matter how the solves were
    ordered, batched, pooled, duplicated or replayed from a store
    (fingerprints neutralise wall time and store provenance; duplicate
    envelopes collapse before hashing).
    """
    return _digest_blobs(_fingerprint_blob(result) for result in results)


def fingerprint_blob_hash(result: SolveResult) -> str:
    """SHA-256 hex of one result's fingerprint blob.

    A 64-character stand-in for the full envelope: fold-mode sweeps ship
    these instead of results, an order-of-magnitude byte saving while
    still letting the coordinator prove set equality end to end.
    """
    return hashlib.sha256(_fingerprint_blob(result).encode("utf-8")).hexdigest()


def digest_blob_hashes(hashes: Iterable[str]) -> str:
    """Order-independent SHA-256 over per-result blob hashes.

    Same sort/dedup/newline construction as :func:`fingerprint_digest`,
    but over :func:`fingerprint_blob_hash` values instead of the blobs
    themselves -- so shards can contribute hashes without shipping
    envelopes, and any grouping of the same result set digests equally.
    """
    digest = hashlib.sha256()
    for item in sorted(set(hashes)):
        digest.update(item.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


def fold_digest(results: Iterable[SolveResult]) -> str:
    """The fold-mode counterpart of :func:`fingerprint_digest`.

    Distinct from ``fingerprint_digest`` (it hashes blob *hashes*, not
    blobs), but shares its guarantees: order-independent, duplicate-safe,
    and computable either locally or as the merge of per-shard hash sets.
    """
    return digest_blob_hashes(fingerprint_blob_hash(result) for result in results)


@dataclass
class ExperimentRecorder:
    """Accumulates what one experiment solved through the shared runner."""

    #: ``(backend, spec_hash)`` pairs in solve order (duplicates collapsed).
    pairs: list[tuple[str, str]] = field(default_factory=list)
    total: int = 0
    #: Unique keys per solve call, summed -- the unit the hit counters
    #: are measured in, so ``cache_hits + store_hits + fresh_solves ==
    #: unique`` always holds (``total`` additionally counts duplicates).
    unique: int = 0
    cache_hits: int = 0
    store_hits: int = 0
    fresh_solves: int = 0
    _blobs: list[str] = field(default_factory=list)

    def record(
        self,
        backend: str,
        specs: Sequence[ProblemSpec],
        results: Sequence[SolveResult],
        stats: Any,
    ) -> None:
        """Observe one ``solve_specs`` call (invoked by the base helper)."""
        seen = set(self.pairs)
        for spec in specs:
            pair = (backend, spec.canonical_hash())
            if pair not in seen:
                seen.add(pair)
                self.pairs.append(pair)
        self.total += stats.total
        self.unique += stats.unique
        self.cache_hits += stats.cache_hits
        self.store_hits += stats.solved_from_store
        self.fresh_solves += stats.solved_fresh
        self._blobs.extend(_fingerprint_blob(result) for result in results)

    @property
    def digest(self) -> Optional[str]:
        """Order-independent digest of every observed result (None when idle)."""
        if not self._blobs:
            return None
        return _digest_blobs(self._blobs)


class RunManifest:
    """Per-experiment solve bookkeeping persisted as JSON.

    Entries are keyed by ``experiment_id`` and scoped by the ``quick``
    flag (quick sweeps solve different specs, so the two modes never
    answer for each other).
    """

    def __init__(self, path: Union[str, Path], entries: Optional[dict] = None) -> None:
        self.path = Path(path)
        self.entries: dict[str, dict[str, Any]] = entries if entries is not None else {}

    @staticmethod
    def _entry_key(experiment_id: str, quick: bool) -> str:
        return f"{experiment_id.upper()}:{'quick' if quick else 'full'}"

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        """Read a manifest, tolerating a missing or corrupt file."""
        path = Path(path)
        entries: dict[str, dict[str, Any]] = {}
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(data, dict) and isinstance(data.get("experiments"), dict):
                entries = data["experiments"]
        except (OSError, json.JSONDecodeError):
            pass
        return cls(path, entries)

    def save(self) -> None:
        """Atomically persist the manifest (temp file + rename)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "manifest_version": 1,
            "library_version": __version__,
            "experiments": self.entries,
        }
        temp = self.path.with_name(f".{self.path.name}.tmp")
        with temp.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.path)

    def entry(self, experiment_id: str, quick: bool) -> Optional[dict[str, Any]]:
        """The recorded entry for an experiment/mode, or None."""
        return self.entries.get(self._entry_key(experiment_id, quick))

    def record(
        self,
        experiment_id: str,
        *,
        quick: bool,
        pairs: Sequence[tuple[str, str]],
        fingerprint: Optional[str],
    ) -> None:
        """Record (or replace) an experiment's solved specs and digest."""
        self.entries[self._entry_key(experiment_id, quick)] = {
            "experiment_id": experiment_id.upper(),
            "quick": quick,
            "spec_hashes": [list(pair) for pair in pairs],
            "fingerprint_digest": fingerprint,
            "library_version": __version__,
        }

    def missing_pairs(
        self, experiment_id: str, quick: bool, store: ResultStore
    ) -> Optional[list[tuple[str, str]]]:
        """The recorded specs not yet present in ``store``.

        None when the experiment was never recorded in this mode (so
        nothing is known about what it will solve).
        """
        entry = self.entry(experiment_id, quick)
        if entry is None:
            return None
        missing = []
        for item in entry.get("spec_hashes", []):
            backend, spec_hash = item
            if not store.contains(backend, spec_hash):
                missing.append((backend, spec_hash))
        return missing
