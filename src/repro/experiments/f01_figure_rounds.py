"""F01 -- Figure 1: three rounds of Algorithm 7.

Figure 1 of the paper illustrates the alternation of inactive and active
phases over the first three rounds.  The experiment regenerates the exact
interval structure from Lemma 8, renders it (ASCII inline, SVG artefact)
and checks the structural properties the figure conveys: phases alternate,
inactive and active phases of a round have equal length, and each round is
twice as long per unit ``n 2^n`` as prescribed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from ..analysis import ExperimentReport, Table
from ..core import RoundSchedule, round_duration, search_all_time
from ..viz import plot_schedule_svg, render_schedule_ascii, round_structure_rows
from .base import finalize_report

EXPERIMENT_ID = "F01"
TITLE = "Figure 1: inactive/active phases of the first three rounds"
PAPER_REFERENCE = "Figure 1, Section 4"

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_REFERENCE", "run"]


def run(output_dir: Optional[Path | str] = None, quick: bool = False) -> ExperimentReport:
    """Regenerate Figure 1."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    rounds = 3
    schedule = RoundSchedule(1.0)

    table = Table(
        columns=["round", "inactive start", "active start", "round end", "phase length", "round length"],
        title="Figure 1 interval data",
    )
    structure_ok = True
    previous_end = 0.0
    for n in range(1, rounds + 1):
        inactive = schedule.inactive_phase(n)
        active = schedule.active_phase(n)
        structure_ok = structure_ok and abs(inactive.start - previous_end) <= 1e-9
        structure_ok = structure_ok and abs(inactive.end - active.start) <= 1e-9
        structure_ok = structure_ok and abs(inactive.duration - active.duration) <= 1e-9
        structure_ok = structure_ok and abs(
            (active.end - inactive.start) - round_duration(n)
        ) <= 1e-9
        structure_ok = structure_ok and abs(inactive.duration - 2.0 * search_all_time(n)) <= 1e-9
        previous_end = active.end
        table.add_row(
            [n, inactive.start, active.start, active.end, inactive.duration, active.end - inactive.start]
        )
    report.add_table(table)
    rows = round_structure_rows(rounds)
    report.add_note("Figure 1 rendering (w = inactive/waiting, a = active):\n" + render_schedule_ascii(rows))
    report.add_check(
        "phases alternate contiguously, inactive = active = 2 S(n), round length = 4 S(n)",
        structure_ok,
    )
    if output_dir is not None:
        plot_schedule_svg(rows, Path(output_dir) / "figure1.svg", title="Figure 1: three rounds")
    return finalize_report(report, output_dir)
