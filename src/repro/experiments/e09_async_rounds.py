"""E09 -- Lemmas 11-13 and Theorem 3: asymmetric-clock rendezvous rounds.

Both robots run Algorithm 7 with clock ratios ``tau < 1``.  The experiment
measures the rendezvous time, converts it into the round of Algorithm 7 in
which it happened (on the reference robot's schedule) and compares it with
the round bound ``k*`` of Lemma 13 and the time bound of Theorem 3.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from ..analysis import ExperimentReport, Table, summarize
from ..core import (
    guaranteed_discovery_round,
    inactive_phase_start,
    lemma13_round_bound,
    solve_rendezvous,
    theorem3_time_bound,
)
from ..workloads import asymmetric_clock_suite
from .base import finalize_report

EXPERIMENT_ID = "E09"
TITLE = "Asymmetric-clock rendezvous rounds vs Lemma 13 / Theorem 3"
PAPER_REFERENCE = "Lemmas 11-13, Theorem 3, Section 4"

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_REFERENCE", "run"]


def _round_of_time(time: float, max_round: int = 64) -> int:
    """The Algorithm 7 round (reference schedule) containing global time ``time``."""
    for n in range(1, max_round + 1):
        if time <= inactive_phase_start(n + 1) + 1e-9:
            return n
    raise ValueError(f"time {time!r} beyond round {max_round}")


def run(output_dir: Optional[Path | str] = None, quick: bool = False) -> ExperimentReport:
    """Run the asymmetric-clock sweep."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    instances = asymmetric_clock_suite()
    if quick:
        instances = instances[:3]

    table = Table(
        columns=[
            "tau",
            "v",
            "d",
            "r",
            "stationary round n",
            "measured time",
            "measured round",
            "k* (Lemma 13)",
            "Theorem 3 bound",
            "within bound",
        ],
        title="Measured rendezvous vs the asymmetric-clock bounds",
    )
    rounds_ok = True
    times_ok = True
    ratios = []
    for instance in instances:
        result = solve_rendezvous(instance)
        tau = instance.attributes.time_unit
        measured_round = _round_of_time(result.time)
        n = guaranteed_discovery_round(instance.distance, instance.visibility)
        k_star = lemma13_round_bound(tau, n)
        time_bound = theorem3_time_bound(instance.distance, instance.visibility, tau)
        within = result.time <= time_bound
        rounds_ok = rounds_ok and measured_round <= k_star
        times_ok = times_ok and within
        ratios.append(result.time / time_bound)
        table.add_row(
            [
                tau,
                instance.attributes.speed,
                instance.distance,
                instance.visibility,
                n,
                result.time,
                measured_round,
                k_star,
                time_bound,
                within,
            ]
        )
    report.add_table(table)
    stats = summarize(ratios)
    report.add_note(f"time / Theorem 3 bound ratios: {stats.describe()}")
    report.add_check("every rendezvous happens no later than round k* of Lemma 13", rounds_ok)
    report.add_check("every rendezvous time is below the Theorem 3 bound", times_ok)
    report.add_check(
        "Algorithm 7 solved every asymmetric-clock instance (Theorem 3 feasibility)",
        all(r is not None for r in ratios),
    )
    report.add_note(
        "the Theorem 3 bound is a worst-case over clock drift alignments; measured times are "
        "typically orders of magnitude smaller, which matches the paper's framing of the bound "
        "as a feasibility certificate rather than a tight estimate"
    )
    return finalize_report(report, output_dir)
