"""Registry of all experiments.

Maps experiment identifiers (E01-E14, F01-F03) to their ``run`` functions
and metadata.  Used by the CLI, the run-all driver and the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

from ..analysis import ExperimentReport
from ..errors import ExperimentError
from . import (
    e01_search_bound,
    e02_timing_formulas,
    e03_round_lower_bound,
    e04_symmetric_clock_rv,
    e05_mirrored_rv,
    e06_feasibility_map,
    e07_schedule,
    e08_overlap,
    e09_async_rounds,
    e10_baselines,
    e11_ablation,
    e12_gathering,
    e13_near_symmetry,
    e14_fault_tolerance,
    f01_figure_rounds,
    f02_figure_active_phase,
    f03_figure_overlap,
)

__all__ = ["ExperimentEntry", "experiment_ids", "get_experiment", "run_experiment"]

RunFunction = Callable[..., ExperimentReport]


@dataclass(frozen=True, slots=True)
class ExperimentEntry:
    """One registered experiment."""

    experiment_id: str
    title: str
    paper_reference: str
    run: RunFunction


_MODULES = (
    e01_search_bound,
    e02_timing_formulas,
    e03_round_lower_bound,
    e04_symmetric_clock_rv,
    e05_mirrored_rv,
    e06_feasibility_map,
    e07_schedule,
    e08_overlap,
    e09_async_rounds,
    e10_baselines,
    e11_ablation,
    e12_gathering,
    e13_near_symmetry,
    e14_fault_tolerance,
    f01_figure_rounds,
    f02_figure_active_phase,
    f03_figure_overlap,
)

_REGISTRY: dict[str, ExperimentEntry] = {
    module.EXPERIMENT_ID: ExperimentEntry(
        experiment_id=module.EXPERIMENT_ID,
        title=module.TITLE,
        paper_reference=module.PAPER_REFERENCE,
        run=module.run,
    )
    for module in _MODULES
}


def experiment_ids() -> list[str]:
    """Sorted list of registered experiment identifiers."""
    return sorted(_REGISTRY)


def get_experiment(experiment_id: str) -> ExperimentEntry:
    """Look up an experiment by identifier (case insensitive)."""
    key = experiment_id.upper()
    try:
        return _REGISTRY[key]
    except KeyError as error:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: {', '.join(experiment_ids())}"
        ) from error


def run_experiment(
    experiment_id: str, output_dir: Optional[Path | str] = None, quick: bool = False
) -> ExperimentReport:
    """Run one experiment by identifier."""
    return get_experiment(experiment_id).run(output_dir=output_dir, quick=quick)
