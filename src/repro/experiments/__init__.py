"""The evaluation harness: one module per reproduced theorem, lemma or figure.

``run_all`` / ``repro experiments --all`` is *incremental* when given a
persistent store: a shared :class:`~repro.api.BatchRunner` serves every
experiment from one LRU plus the store, and the run manifest
(:mod:`repro.experiments.manifest`) records what each experiment solved
-- an interrupted or repeated sweep only solves what is missing, and
repeated runs verify result-fingerprint digests against the recorded
ones.
"""

from .base import active_runner, shared_runner, solve_specs
from .manifest import ExperimentRecorder, RunManifest, fingerprint_digest
from .registry import ExperimentEntry, experiment_ids, get_experiment, run_experiment
from .runall import (
    ExperimentRunInfo,
    RunAllSummary,
    run_all,
    run_all_resumable,
    write_summary,
)

__all__ = [
    "ExperimentEntry",
    "experiment_ids",
    "get_experiment",
    "run_experiment",
    "run_all",
    "run_all_resumable",
    "ExperimentRunInfo",
    "RunAllSummary",
    "write_summary",
    "solve_specs",
    "shared_runner",
    "active_runner",
    "ExperimentRecorder",
    "RunManifest",
    "fingerprint_digest",
]
