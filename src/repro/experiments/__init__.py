"""The evaluation harness: one module per reproduced theorem, lemma or figure."""

from .registry import ExperimentEntry, experiment_ids, get_experiment, run_experiment
from .runall import run_all, write_summary

__all__ = [
    "ExperimentEntry",
    "experiment_ids",
    "get_experiment",
    "run_experiment",
    "run_all",
    "write_summary",
]
