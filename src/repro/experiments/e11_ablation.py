"""E11 -- Ablation of the Search(k) design choices.

The paper chooses the per-annulus granularity ``rho_{j,k} = 2^{-3k+2j-1}``
so that every sub-round of round ``k`` has the same difficulty ratio
``delta^2/rho = 2^{k+1}``.  The ablation compares that balanced choice
against two perturbed variants of ``Search(k)``:

* a *coarse* variant with granularity ``4 rho`` -- it is cheaper per round
  but loses the coverage guarantee, and the experiment exhibits instances
  it misses in the round where the balanced algorithm succeeds;
* a *fine* variant with granularity ``rho / 4`` -- it keeps the guarantee
  but pays a measurably larger round duration, breaking the
  ``log(d^2/r) d^2/r`` total-time shape.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Optional

from ..algorithms import emit_search_annulus
from ..algorithms.base import FiniteMobilityAlgorithm
from ..algorithms.search_round import (
    annulus_granularity,
    annulus_inner_radius,
    annulus_outer_radius,
    terminal_wait_duration,
)
from ..analysis import ExperimentReport, Table
from ..core import search_round_duration
from ..geometry import ORIGIN, Vec2
from ..motion import MotionSegment, WaitMotion
from ..simulation import SearchInstance, fixed_horizon, simulate_search
from .base import finalize_report

EXPERIMENT_ID = "E11"
TITLE = "Ablation of the balanced per-annulus granularity of Search(k)"
PAPER_REFERENCE = "Algorithm 3 and the discussion before Theorem 1, Section 2"

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_REFERENCE", "run", "ModifiedSearchRounds"]


class ModifiedSearchRounds(FiniteMobilityAlgorithm):
    """Algorithm 4 truncated to ``rounds`` rounds with rescaled granularity."""

    name = "modified-search-rounds"

    def __init__(self, rounds: int, granularity_scale: float) -> None:
        if rounds < 1:
            raise ValueError("rounds must be positive")
        if granularity_scale <= 0.0:
            raise ValueError("granularity_scale must be positive")
        self.rounds = rounds
        self.granularity_scale = float(granularity_scale)

    def segments(self) -> Iterator[MotionSegment]:
        for k in range(1, self.rounds + 1):
            for j in range(2 * k):
                yield from emit_search_annulus(
                    annulus_inner_radius(k, j),
                    annulus_outer_radius(k, j),
                    annulus_granularity(k, j) * self.granularity_scale,
                )
            yield WaitMotion(ORIGIN, terminal_wait_duration(k))

    def describe(self) -> str:
        return f"Search rounds 1..{self.rounds} with granularity x{self.granularity_scale:g}"


def run(output_dir: Optional[Path | str] = None, quick: bool = False) -> ExperimentReport:
    """Run the granularity ablation."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    rounds = 2 if quick else 3

    # Part 1: per-round durations of the three variants.
    duration_table = Table(
        columns=["k", "balanced (paper)", "coarse (4 rho)", "fine (rho/4)", "fine / balanced"],
        title="Round durations under granularity rescaling",
    )
    fine_slower = True
    coarse_cheaper = True
    for k in range(1, rounds + 1):
        balanced = search_round_duration(k)
        coarse = ModifiedSearchRounds(k, 4.0).duration() - (
            ModifiedSearchRounds(k - 1, 4.0).duration() if k > 1 else 0.0
        )
        fine = ModifiedSearchRounds(k, 0.25).duration() - (
            ModifiedSearchRounds(k - 1, 0.25).duration() if k > 1 else 0.0
        )
        fine_slower = fine_slower and fine > balanced
        coarse_cheaper = coarse_cheaper and coarse < balanced
        duration_table.add_row([k, balanced, coarse, fine, fine / balanced])
    report.add_table(duration_table)
    report.add_check("the fine variant pays a strictly larger duration every round", fine_slower)
    report.add_check("the coarse variant is cheaper every round", coarse_cheaper)

    # Part 2: the coarse variant loses the coverage guarantee.  The probe
    # targets sit in the innermost annulus of the last round, exactly
    # halfway between two *coarse* circles (4 rho away from each) with a
    # visibility of 1.5 rho: the balanced spacing (2 rho) still covers
    # them, the coarse spacing (8 rho) does not, and they are placed on the
    # +y axis so the radial legs along +x never come close either.
    coverage_table = Table(
        columns=["d", "r", "balanced finds", "coarse finds"],
        title="Coverage within the same number of rounds",
    )
    coverage_gap_demonstrated = False
    balanced_always_finds = True
    k = rounds
    rho = annulus_granularity(k, 0)
    inner = annulus_inner_radius(k, 0)
    for midpoint_index in (0, 1):
        distance = inner + (8 * midpoint_index + 4) * rho
        visibility = 1.5 * rho
        instance = SearchInstance(target=Vec2(0.0, distance), visibility=visibility)
        horizon = fixed_horizon(
            max(ModifiedSearchRounds(k, 4.0).duration(), ModifiedSearchRounds(k, 1.0).duration())
            + 1.0
        )
        balanced_outcome = simulate_search(ModifiedSearchRounds(k, 1.0), instance, horizon)
        coarse_outcome = simulate_search(ModifiedSearchRounds(k, 4.0), instance, horizon)
        balanced_always_finds = balanced_always_finds and balanced_outcome.solved
        if balanced_outcome.solved and not coarse_outcome.solved:
            coverage_gap_demonstrated = True
        coverage_table.add_row(
            [distance, visibility, balanced_outcome.solved, coarse_outcome.solved]
        )
    report.add_table(coverage_table)
    report.add_check(
        "the balanced granularity finds every probe target within its guaranteed round",
        balanced_always_finds,
    )
    report.add_check(
        "there is a probe target the coarse variant misses in the same rounds "
        "(the coverage guarantee really needs the paper's granularity)",
        coverage_gap_demonstrated,
    )
    report.add_note(
        "the ablation confirms the design point: granularity finer than needed inflates the "
        "round duration (and hence the bound), coarser granularity breaks the coverage "
        "invariant that the Theorem 1 correctness argument relies on"
    )
    return finalize_report(report, output_dir)
