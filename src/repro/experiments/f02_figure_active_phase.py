"""F02 -- Figure 2: the structure of one active phase.

Figure 2 shows that the active phase of round ``n`` consists of
``SearchAll(n)`` (rounds ``Search(1) .. Search(n)``) immediately followed
by ``SearchAllRev(n)`` (the same rounds in reverse).  The experiment
regenerates that breakdown from the schedule, cross-checks it against the
actual segment stream of Algorithm 7, and renders the diagram.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from ..algorithms import SearchAll, SearchAllRev
from ..analysis import ExperimentReport, Table
from ..core import RoundSchedule, search_all_time, search_round_duration
from ..viz import active_phase_rows, plot_schedule_svg, render_schedule_ascii
from .base import finalize_report

EXPERIMENT_ID = "F02"
TITLE = "Figure 2: structure of the active phase of round n"
PAPER_REFERENCE = "Figure 2, Section 4"

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_REFERENCE", "run"]


def run(output_dir: Optional[Path | str] = None, quick: bool = False) -> ExperimentReport:
    """Regenerate Figure 2."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    n = 3 if quick else 4
    schedule = RoundSchedule(1.0)
    breakdown = schedule.active_phase_breakdown(n)

    table = Table(
        columns=["position", "sub-algorithm", "start", "end", "duration", "Lemma 2 duration"],
        title=f"Figure 2 interval data (round n = {n})",
    )
    durations_ok = True
    expected_order = [f"Search({k})" for k in list(range(1, n + 1)) + list(range(n, 0, -1))]
    order_ok = [label for label, _, _ in breakdown] == expected_order
    for position, (label, start, end) in enumerate(breakdown):
        k = int(label[7:-1])
        predicted = search_round_duration(k)
        durations_ok = durations_ok and abs((end - start) - predicted) <= 1e-9 * predicted
        table.add_row([position, label, start, end, end - start, predicted])
    report.add_table(table)

    half_duration = sum(end - start for _, start, end in breakdown[:n])
    report.add_check("the sub-algorithms appear in the order SearchAll(n) then SearchAllRev(n)", order_ok)
    report.add_check("every Search(k) block has its Lemma 2 duration", durations_ok)
    report.add_check(
        "the first half of the active phase lasts exactly S(n)",
        abs(half_duration - search_all_time(n)) <= 1e-9 * search_all_time(n),
    )
    report.add_check(
        "SearchAll(n) and SearchAllRev(n) cover the same walk length",
        abs(SearchAll(n).path_length() - SearchAllRev(n).path_length()) <= 1e-9,
    )
    rows = active_phase_rows(n)
    report.add_note("Figure 2 rendering (digits = round index k):\n" + render_schedule_ascii(rows))
    if output_dir is not None:
        plot_schedule_svg(rows, Path(output_dir) / "figure2.svg", title=f"Figure 2: active phase of round {n}")
    return finalize_report(report, output_dir)
