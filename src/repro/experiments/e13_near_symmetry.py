"""E13 -- The cost of near-symmetry.

The paper's bounds blow up as the symmetry-breaking advantage vanishes:
``1/mu`` as ``v -> 1`` and ``phi -> 0`` (Theorem 2), ``1/(1-v)`` for mirrored
robots (Lemma 7), and the round bound of Lemma 13 as ``tau -> 1``.  This
experiment quantifies that blow-up: for each attribute it sweeps the
difference ``epsilon`` toward zero and records both the analytic bound and
the simulated rendezvous time, checking that (a) the bound is monotone in the
advantage, (b) every simulated time stays below its bound, and (c) the
simulated time actually grows as the advantage shrinks (symmetry really is
the enemy, not just in the worst case).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from ..analysis import ExperimentReport, Table
from ..core import lemma13_round_bound, rendezvous_time_bound, solve_rendezvous
from ..geometry import Vec2
from ..simulation import RendezvousInstance
from ..workloads import near_symmetric_attributes
from .base import finalize_report

EXPERIMENT_ID = "E13"
TITLE = "Blow-up of bounds and times as the attribute advantage vanishes"
PAPER_REFERENCE = "Theorem 2, Lemma 7, Lemma 13 (behaviour as v, tau -> 1 and phi -> 0)"

__all__ = ["EXPERIMENT_ID", "TITLE", "PAPER_REFERENCE", "run"]

_SEPARATION = Vec2(1.1, 0.4)
_VISIBILITY = 0.35


def run(output_dir: Optional[Path | str] = None, quick: bool = False) -> ExperimentReport:
    """Run the near-symmetry sweep."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    epsilons = (0.5, 0.2, 0.05) if quick else (0.5, 0.2, 0.1, 0.05, 0.02)

    bounds_monotone = True
    always_below_bound = True
    growth_observed = {}
    for parameter in ("speed", "orientation"):
        table = Table(
            columns=["epsilon", "measured time", "bound", "ratio"],
            title=f"Shrinking advantage in {parameter}",
        )
        previous_bound = None
        times = []
        for epsilon in epsilons:
            attributes = near_symmetric_attributes(epsilon, parameter)
            instance = RendezvousInstance(
                separation=_SEPARATION, visibility=_VISIBILITY, attributes=attributes
            )
            result = solve_rendezvous(instance)
            bound = result.bound
            always_below_bound = always_below_bound and result.time < bound
            if previous_bound is not None:
                bounds_monotone = bounds_monotone and bound >= previous_bound - 1e-9
            previous_bound = bound
            times.append(result.time)
            table.add_row([epsilon, result.time, bound, result.time / bound])
        growth_observed[parameter] = times[-1] > times[0]
        report.add_table(table)

    # Clock advantage: the Lemma 13 round bound explodes as tau -> 1; the
    # simulation is only run for the moderate values (the bound-driven
    # horizon for tau = 0.98 would be astronomically large even though the
    # actual meeting is early, so the near-1 rows are analytic only).
    clock_table = Table(
        columns=["tau", "k* (Lemma 13)", "Theorem 3 bound", "measured time"],
        title="Shrinking clock advantage",
    )
    k_star_values = {}
    for tau in (0.5, 0.75, 0.9, 0.97, 0.997):
        k_star = lemma13_round_bound(tau, 1)
        k_star_values[tau] = k_star
        instance = RendezvousInstance(
            separation=_SEPARATION,
            visibility=_VISIBILITY,
            attributes=near_symmetric_attributes(1.0 - tau, "clock"),
        )
        bound = rendezvous_time_bound(instance)
        measured: object = "-"
        if tau <= 0.75:
            measured = solve_rendezvous(instance).time
        clock_table.add_row([tau, k_star, bound, measured])
    report.add_table(clock_table)

    report.add_check(
        "the Theorem 2 bound grows monotonically as the speed/orientation advantage shrinks",
        bounds_monotone,
    )
    report.add_check("every simulated rendezvous stays below its bound", always_below_bound)
    report.add_check(
        "the measured rendezvous time also grows as the advantage shrinks "
        "(speed and orientation sweeps)",
        all(growth_observed.values()),
    )
    report.add_check(
        "the Lemma 13 round bound blows up as tau approaches 1",
        k_star_values[0.9] < k_star_values[0.97] < k_star_values[0.997]
        and k_star_values[0.997] >= 100,
        f"k* = {k_star_values[0.9]}, {k_star_values[0.97]}, {k_star_values[0.997]} "
        "for tau = 0.9, 0.97, 0.997",
    )
    report.add_note(
        "k* is not monotone across the whole range (the 8(a+1) floor of the t <= 2/3 branch "
        "dominates for small tau); the blow-up happens only as tau -> 1, which is what the "
        "check asserts"
    )
    return finalize_report(report, output_dir)
