"""Robot model: hidden attributes, robots and canonical pairs."""

from .attributes import REFERENCE_ATTRIBUTES, RobotAttributes
from .pair import RobotPair, make_pair
from .robot import Robot

__all__ = [
    "REFERENCE_ATTRIBUTES",
    "RobotAttributes",
    "RobotPair",
    "make_pair",
    "Robot",
]
