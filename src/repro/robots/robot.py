"""A robot: attributes + start position + algorithm -> world trajectory.

The :class:`Robot` class is the glue between the algorithm layer (which
produces local-frame motion commands and knows nothing about attributes)
and the simulation layer (which consumes world-frame trajectories).  It is
deliberately thin: the interesting behaviour lives in the algorithm and in
the frame transform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..geometry import ORIGIN, ReferenceFrame, Vec2
from ..motion import LazyTrajectory, lazy_world_trajectory
from .attributes import REFERENCE_ATTRIBUTES, RobotAttributes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..algorithms.base import MobilityAlgorithm

__all__ = ["Robot"]


@dataclass(frozen=True, slots=True)
class Robot:
    """A mobile robot of the paper's model.

    Attributes:
        name: label used in traces and reports ("R" and "R-prime" by
            convention).
        start: world-frame start position.
        attributes: the hidden attribute vector.
    """

    name: str
    start: Vec2 = ORIGIN
    attributes: RobotAttributes = field(default_factory=lambda: REFERENCE_ATTRIBUTES)

    @property
    def frame(self) -> ReferenceFrame:
        """The robot's local-to-world reference frame."""
        return self.attributes.frame(self.start)

    @property
    def max_speed(self) -> float:
        """World-frame moving speed of the robot."""
        return self.attributes.speed

    def world_trajectory(self, algorithm: "MobilityAlgorithm") -> LazyTrajectory:
        """World-frame trajectory obtained by running ``algorithm``.

        The algorithm emits local-frame segments; they are mapped through
        the robot's frame lazily, so infinite algorithms are fine.
        """
        return lazy_world_trajectory(algorithm.segments(), self.frame)

    def describe(self) -> str:
        """Human-readable robot summary."""
        return f"{self.name} at ({self.start.x:.4g}, {self.start.y:.4g}) [{self.attributes.describe()}]"
