"""Robot attributes: the hidden parameters of the paper's model.

The four attributes of a robot relative to the reference robot R are:

* ``speed``        -- moving speed ``v > 0`` (R has speed 1),
* ``time_unit``    -- clock unit ``tau > 0`` (R has unit 1),
* ``orientation``  -- compass offset ``phi`` in ``[0, 2*pi)`` (R has 0),
* ``chirality``    -- ``+1`` or ``-1`` (R has +1).

The robots themselves *do not know* these values; they exist only in the
experimenter's (adversary's) description of an instance.  The algorithms
never read them -- this is enforced structurally: algorithm code receives
only a :class:`~repro.motion.builder.TrajectoryBuilder`, never the
attributes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import InvalidParameterError
from ..geometry import ReferenceFrame, Vec2, normalize_angle

__all__ = ["RobotAttributes", "REFERENCE_ATTRIBUTES"]


@dataclass(frozen=True, slots=True)
class RobotAttributes:
    """The hidden attribute vector ``(v, tau, phi, chi)`` of a robot."""

    speed: float = 1.0
    time_unit: float = 1.0
    orientation: float = 0.0
    chirality: int = 1

    def __post_init__(self) -> None:
        if not (self.speed > 0.0 and math.isfinite(self.speed)):
            raise InvalidParameterError(f"speed must be positive and finite, got {self.speed!r}")
        if not (self.time_unit > 0.0 and math.isfinite(self.time_unit)):
            raise InvalidParameterError(
                f"time_unit must be positive and finite, got {self.time_unit!r}"
            )
        if not math.isfinite(self.orientation):
            raise InvalidParameterError(f"orientation must be finite, got {self.orientation!r}")
        if self.chirality not in (-1, 1):
            raise InvalidParameterError(f"chirality must be +1 or -1, got {self.chirality!r}")

    # -- canonical form ---------------------------------------------------------
    def normalized(self) -> "RobotAttributes":
        """Copy with the orientation reduced to ``[0, 2*pi)``."""
        return RobotAttributes(
            speed=self.speed,
            time_unit=self.time_unit,
            orientation=normalize_angle(self.orientation),
            chirality=self.chirality,
        )

    def is_reference(self, tolerance: float = 1e-12) -> bool:
        """True when the attributes coincide with the reference robot R."""
        normalized = self.normalized()
        orientation_zero = (
            normalized.orientation <= tolerance
            or 2.0 * math.pi - normalized.orientation <= tolerance
        )
        return (
            abs(self.speed - 1.0) <= tolerance
            and abs(self.time_unit - 1.0) <= tolerance
            and orientation_zero
            and self.chirality == 1
        )

    # -- differences with the reference robot -------------------------------------
    def differs_in_speed(self, tolerance: float = 1e-12) -> bool:
        """True when the robot's speed differs from the reference speed 1."""
        return abs(self.speed - 1.0) > tolerance

    def differs_in_clock(self, tolerance: float = 1e-12) -> bool:
        """True when the robot's time unit differs from the reference unit 1."""
        return abs(self.time_unit - 1.0) > tolerance

    def differs_in_orientation(self, tolerance: float = 1e-12) -> bool:
        """True when the robot's compass differs from the reference compass."""
        normalized = self.normalized()
        return not (
            normalized.orientation <= tolerance
            or 2.0 * math.pi - normalized.orientation <= tolerance
        )

    def differs_in_chirality(self) -> bool:
        """True when the robot disagrees with the reference +y direction."""
        return self.chirality == -1

    # -- conversion --------------------------------------------------------------
    def frame(self, origin: Vec2) -> ReferenceFrame:
        """The robot's reference frame when it starts at ``origin``."""
        return ReferenceFrame(
            origin=origin,
            speed=self.speed,
            time_unit=self.time_unit,
            orientation=self.orientation,
            chirality=self.chirality,
        )

    def describe(self) -> str:
        """Short human-readable description of the attribute vector."""
        return (
            f"v={self.speed:.4g}, tau={self.time_unit:.4g}, "
            f"phi={self.orientation:.4g}, chi={self.chirality:+d}"
        )


#: Attributes of the reference robot R (the paper's WLOG normal form).
REFERENCE_ATTRIBUTES = RobotAttributes()
