"""Construction of the canonical two-robot configuration.

The paper always analyses rendezvous from the viewpoint of the reference
robot R: R sits at the world origin with speed 1, clock 1, orientation 0
and chirality +1, while R' sits at an unknown displacement ``d`` and
carries the attribute vector ``(v, tau, phi, chi)``.  ``make_pair`` builds
exactly that configuration; it is used by the simulator, the workload
generators and most tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidParameterError
from ..geometry import ORIGIN, Vec2
from .attributes import REFERENCE_ATTRIBUTES, RobotAttributes
from .robot import Robot

__all__ = ["RobotPair", "make_pair"]


@dataclass(frozen=True, slots=True)
class RobotPair:
    """The two robots of a rendezvous instance."""

    reference: Robot
    other: Robot

    @property
    def initial_distance(self) -> float:
        """Euclidean distance between the start positions."""
        return self.reference.start.distance_to(self.other.start)

    @property
    def separation(self) -> Vec2:
        """Vector from the reference robot to the other robot."""
        return self.other.start - self.reference.start

    def describe(self) -> str:
        """Human-readable pair summary."""
        return f"{self.reference.describe()} | {self.other.describe()}"


def make_pair(
    separation: Vec2,
    attributes: RobotAttributes,
    reference_start: Vec2 = ORIGIN,
) -> RobotPair:
    """Build the canonical pair: R at ``reference_start``, R' displaced by ``separation``.

    Args:
        separation: vector ``d`` from R to R'; must be non-zero (the paper
            assumes the robots start at *different* locations).
        attributes: hidden attributes of R'.
        reference_start: world position of R (defaults to the origin).
    """
    if separation.norm() == 0.0:
        raise InvalidParameterError("the robots must start at different locations (d > 0)")
    reference = Robot(name="R", start=reference_start, attributes=REFERENCE_ATTRIBUTES)
    other = Robot(name="R-prime", start=reference_start + separation, attributes=attributes)
    return RobotPair(reference=reference, other=other)
