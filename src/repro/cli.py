"""Command-line interface.

Four sub-commands::

    repro feasibility  --speed 1.0 --time-unit 0.5 --orientation 0 --chirality 1
    repro search       --distance 1.5 --bearing 0.8 --visibility 0.3
    repro rendezvous   --distance 1.5 --bearing 0.8 --visibility 0.3 --speed 0.7 ...
    repro experiments  --all [--quick] [--output results/]
    repro schedule     --rounds 4 --tau 0.5

(also available as ``python -m repro ...``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .core import classify_feasibility, solve_rendezvous, solve_search
from .core.schedule import RoundSchedule
from .errors import ReproError
from .experiments import experiment_ids, run_all, run_experiment, write_summary
from .geometry import Vec2
from .robots import RobotAttributes
from .simulation import RendezvousInstance, SearchInstance
from .viz import overlap_rows, render_schedule_ascii

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Symmetry Breaking in the Plane: Rendezvous by Robots with "
            "Unknown Attributes' (PODC 2019)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    feasibility = subparsers.add_parser("feasibility", help="apply the Theorem 4 feasibility test")
    _add_attribute_arguments(feasibility)

    search = subparsers.add_parser("search", help="simulate the universal search (Algorithm 4)")
    search.add_argument("--distance", type=float, required=True, help="target distance d")
    search.add_argument("--bearing", type=float, default=0.0, help="target bearing in radians")
    search.add_argument("--visibility", type=float, required=True, help="visibility radius r")

    rendezvous = subparsers.add_parser("rendezvous", help="simulate a rendezvous instance")
    rendezvous.add_argument("--distance", type=float, required=True, help="initial distance d")
    rendezvous.add_argument("--bearing", type=float, default=0.0, help="separation bearing in radians")
    rendezvous.add_argument("--visibility", type=float, required=True, help="visibility radius r")
    rendezvous.add_argument(
        "--horizon", type=float, default=None, help="explicit simulation horizon (needed for infeasible instances)"
    )
    rendezvous.add_argument(
        "--allow-infeasible", action="store_true", help="simulate even when Theorem 4 says infeasible"
    )
    _add_attribute_arguments(rendezvous)

    experiments = subparsers.add_parser("experiments", help="run the evaluation harness")
    experiments.add_argument("ids", nargs="*", help="experiment identifiers (e.g. E01 F03)")
    experiments.add_argument("--all", action="store_true", help="run every registered experiment")
    experiments.add_argument("--list", action="store_true", help="list available experiments")
    experiments.add_argument("--quick", action="store_true", help="reduced workloads for smoke runs")
    experiments.add_argument("--output", type=Path, default=None, help="directory for artefacts")

    schedule = subparsers.add_parser("schedule", help="print the Algorithm 7 schedule and overlaps")
    schedule.add_argument("--rounds", type=int, default=4, help="number of rounds to display")
    schedule.add_argument("--tau", type=float, default=0.5, help="clock ratio of the second robot")

    gather = subparsers.add_parser(
        "gather", help="simulate multi-robot gathering (extension beyond the paper)"
    )
    gather.add_argument(
        "--robot",
        action="append",
        required=True,
        metavar="X,Y,V,TAU,PHI,CHI",
        help="one swarm member as comma-separated position and attributes; repeat per robot",
    )
    gather.add_argument("--visibility", type=float, required=True, help="common visibility radius")
    gather.add_argument("--horizon", type=float, default=20000.0, help="per-pair simulation horizon")

    return parser


def _add_attribute_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--speed", type=float, default=1.0, help="speed v of robot R'")
    parser.add_argument("--time-unit", type=float, default=1.0, help="clock unit tau of robot R'")
    parser.add_argument("--orientation", type=float, default=0.0, help="orientation phi of robot R'")
    parser.add_argument("--chirality", type=int, default=1, choices=(-1, 1), help="chirality chi of robot R'")


def _attributes_from(namespace: argparse.Namespace) -> RobotAttributes:
    return RobotAttributes(
        speed=namespace.speed,
        time_unit=namespace.time_unit,
        orientation=namespace.orientation,
        chirality=namespace.chirality,
    )


def _command_feasibility(namespace: argparse.Namespace) -> int:
    verdict = classify_feasibility(_attributes_from(namespace))
    print(verdict.describe())
    return 0


def _command_search(namespace: argparse.Namespace) -> int:
    instance = SearchInstance(
        target=Vec2.polar(namespace.distance, namespace.bearing), visibility=namespace.visibility
    )
    report = solve_search(instance)
    print(report.summary())
    return 0


def _command_rendezvous(namespace: argparse.Namespace) -> int:
    instance = RendezvousInstance(
        separation=Vec2.polar(namespace.distance, namespace.bearing),
        visibility=namespace.visibility,
        attributes=_attributes_from(namespace),
    )
    report = solve_rendezvous(
        instance, horizon=namespace.horizon, allow_infeasible=namespace.allow_infeasible
    )
    print(report.summary())
    return 0


def _command_experiments(namespace: argparse.Namespace) -> int:
    if namespace.list:
        for identifier in experiment_ids():
            print(identifier)
        return 0
    if namespace.all:
        reports = run_all(output_dir=namespace.output, quick=namespace.quick)
    elif namespace.ids:
        reports = [
            run_experiment(identifier, output_dir=namespace.output, quick=namespace.quick)
            for identifier in namespace.ids
        ]
    else:
        print("nothing to run: pass experiment ids, --all or --list", file=sys.stderr)
        return 2
    for report in reports:
        print(report.to_text())
        print()
    if namespace.output is not None:
        summary = write_summary(reports, Path(namespace.output) / "summary.md")
        print(f"summary written to {summary}")
    return 0 if all(report.all_passed for report in reports) else 1


def _command_schedule(namespace: argparse.Namespace) -> int:
    print(RoundSchedule(1.0).describe(namespace.rounds))
    print()
    print(RoundSchedule(namespace.tau).describe(namespace.rounds))
    print()
    print(render_schedule_ascii(overlap_rows(namespace.rounds, namespace.tau)))
    return 0


def _parse_swarm_member(specification: str) -> tuple[Vec2, RobotAttributes]:
    parts = [part.strip() for part in specification.split(",")]
    if len(parts) != 6:
        raise ReproError(
            f"swarm member {specification!r} must have 6 comma-separated fields: x,y,v,tau,phi,chi"
        )
    x, y, speed, time_unit, orientation, chirality = (float(part) for part in parts)
    return Vec2(x, y), RobotAttributes(
        speed=speed, time_unit=time_unit, orientation=orientation, chirality=int(chirality)
    )


def _command_gather(namespace: argparse.Namespace) -> int:
    from .gathering import GatheringInstance, simulate_gathering, swarm_feasibility

    members = [_parse_swarm_member(specification) for specification in namespace.robot]
    instance = GatheringInstance.create(
        positions=[position for position, _ in members],
        attributes=[attributes for _, attributes in members],
        visibility=namespace.visibility,
    )
    print(swarm_feasibility(instance).describe())
    print()
    outcome = simulate_gathering(instance, horizon=namespace.horizon)
    print(outcome.describe())
    return 0


_COMMANDS = {
    "feasibility": _command_feasibility,
    "search": _command_search,
    "rendezvous": _command_rendezvous,
    "experiments": _command_experiments,
    "schedule": _command_schedule,
    "gather": _command_gather,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    namespace = parser.parse_args(argv)
    try:
        return _COMMANDS[namespace.command](namespace)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
