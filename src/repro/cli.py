"""Command-line interface.

Sub-commands::

    repro solve        --kind rendezvous --distance 1.5 --visibility 0.3 --speed 0.7 --json
    repro solve        --spec-file specs.json --backend analytic --processes 4
    repro solve        --spec-file specs.json --store .repro-store
    repro solve        --stdin-jsonl < requests.jsonl
    repro serve        --port 7767 --backend auto --store .repro-store [--workers 4] [--async]
    repro sweep        search-sweep-large [--connect HOST:PORT --subscribe] [--json]
    repro cluster      status --port 7767 [--json]
    repro feasibility  --speed 1.0 --time-unit 0.5 --orientation 0 --chirality 1
    repro search       --distance 1.5 --bearing 0.8 --visibility 0.3 [--json]
    repro rendezvous   --distance 1.5 --bearing 0.8 --visibility 0.3 --speed 0.7 ... [--json]
    repro experiments  --all [--quick] [--output results/] [--store DIR] [--expect-warm]
    repro store        stats|gc|export|import --store DIR [--file FILE] [--json]
    repro suites       [--json]
    repro schedule     --rounds 4 --tau 0.5
    repro gather       --robot X,Y,V,TAU,PHI,CHI ... --visibility 0.4

(also available as ``python -m repro ...``).

``solve`` is the facade entry point: it accepts a problem spec either as
flags or as a JSON file (one spec object or a list; ``-`` reads stdin),
dispatches it through the :mod:`repro.api` backend registry and prints
either a human summary or the JSON ``SolveResult`` envelope.  The older
``search`` / ``rendezvous`` sub-commands are kept as thin wrappers over
the same facade and grew a ``--json`` flag.

``--store DIR`` on ``solve`` and ``experiments`` enables the persistent
result store: envelopes solved in any earlier run answer from disk, and
fresh solves are recorded for the next one (the ``REPRO_STORE``
environment variable sets a default; ``--no-store`` overrides it).
``repro store`` inspects and maintains a store directory.

``serve`` runs the long-lived solver daemon: JSON-Lines over TCP, one
request per line (``solve`` / ``health`` / ``metrics`` verbs), request
coalescing and admission control via :mod:`repro.service`.  ``serve
--async`` swaps the thread-per-connection transport for the asyncio
event loop -- same wire format, far higher connection ceiling, plus the
streamed ``subscribe`` verb that ``repro sweep SUITE --connect ...
--subscribe`` drives: the whole suite goes out on one connection and
per-spec results stream back in completion order, ending in an
order-independent fingerprint digest.  ``serve --workers N`` shards the
same wire format over N supervised worker processes behind a
consistent-hash router (:mod:`repro.cluster`); with ``--async`` the
router also accepts the partitioned ``sweep`` verb that ``repro sweep
SUITE --connect ... --distributed`` drives -- each worker runs its spec
partition as one local batch plan, completions interleave back in
completion order, and ``--fold`` returns merged per-(kind, backend)
aggregate tables instead of per-spec envelopes.
``repro cluster status`` prints the per-shard health and metrics of a
running router.  SIGTERM and SIGINT both drain gracefully, so buffered
store segments are published before the process exits.  ``solve
--stdin-jsonl`` streams the same wire format through an in-process
service -- one response line per request line, no socket needed.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import signal
import sys
from pathlib import Path
from typing import Any, Callable, Iterator, Optional, Sequence

from .api import (
    BatchRunner,
    GatheringMember,
    GatheringProblem,
    ProblemSpec,
    RendezvousProblem,
    ResultStore,
    SearchProblem,
    backend_names,
    spec_from_dict,
)
from .api import solve as api_solve
from .core import classify_feasibility
from .core.schedule import RoundSchedule
from .errors import InvalidParameterError, ReproError
from .experiments import experiment_ids, run_all_resumable, write_summary
from .geometry import Vec2
from .robots import RobotAttributes
from .viz import overlap_rows, render_schedule_ascii

#: Environment variable that provides a default ``--store`` directory.
STORE_ENV_VAR = "REPRO_STORE"

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Symmetry Breaking in the Plane: Rendezvous by Robots with "
            "Unknown Attributes' (PODC 2019)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser(
        "solve", help="solve problem specs through the repro.api facade"
    )
    solve.add_argument(
        "--spec-file",
        type=str,
        default=None,
        metavar="FILE",
        help="JSON file holding one spec object or a list of specs ('-' reads stdin)",
    )
    solve.add_argument(
        "--kind",
        choices=("search", "rendezvous", "gathering"),
        default=None,
        help="problem kind when building the spec from flags",
    )
    solve.add_argument("--distance", type=float, default=None, help="initial distance d")
    solve.add_argument("--bearing", type=float, default=0.0, help="bearing in radians")
    solve.add_argument("--visibility", type=float, default=None, help="visibility radius r")
    solve.add_argument(
        "--horizon", type=float, default=None, help="explicit simulation horizon"
    )
    solve.add_argument(
        "--allow-infeasible",
        action="store_true",
        help="simulate even when Theorem 4 says infeasible (needs --horizon)",
    )
    solve.add_argument(
        "--robot",
        action="append",
        default=None,
        metavar="X,Y,V,TAU,PHI,CHI",
        help="gathering swarm member (repeat per robot; only with --kind gathering)",
    )
    solve.add_argument(
        "--fault-model",
        default=None,
        metavar="JSON",
        help=(
            "attach a fault model to every spec, as a JSON object, e.g. "
            '\'{"kind": "crash-stop", "robot": "other", "crash_time": 2.0}\' '
            "(kinds: none, crash-stop, crash-recovery, byzantine)"
        ),
    )
    solve.add_argument(
        "--trials",
        type=int,
        default=None,
        help="Monte-Carlo trials per spec (overrides the fault model's trials)",
    )
    solve.add_argument(
        "--mc-seed",
        type=int,
        default=None,
        help="Monte-Carlo base seed (overrides the fault model's mc_seed)",
    )
    _add_attribute_arguments(solve)
    solve.add_argument(
        "--backend",
        default="auto",
        help=f"solver backend (registered: {', '.join(backend_names())})",
    )
    solve.add_argument(
        "--processes", type=int, default=None, help="worker processes for multi-spec files"
    )
    solve.add_argument(
        "--json", action="store_true", help="emit the SolveResult envelope(s) as JSON"
    )
    solve.add_argument(
        "--stdin-jsonl",
        action="store_true",
        help=(
            "stream JSON-Lines requests from stdin through an in-process solver "
            "service (one response line per request line; the serve wire format)"
        ),
    )
    solve.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="send the solve(s) to a running repro serve daemon instead of solving here",
    )
    solve.add_argument(
        "--binary",
        action="store_true",
        help="with --connect: negotiate binary wire frames (falls back to JSON)",
    )
    _add_store_arguments(solve)

    feasibility = subparsers.add_parser("feasibility", help="apply the Theorem 4 feasibility test")
    _add_attribute_arguments(feasibility)
    feasibility.add_argument(
        "--json", action="store_true", help="emit the verdict as JSON"
    )

    search = subparsers.add_parser("search", help="simulate the universal search (Algorithm 4)")
    search.add_argument("--distance", type=float, required=True, help="target distance d")
    search.add_argument("--bearing", type=float, default=0.0, help="target bearing in radians")
    search.add_argument("--visibility", type=float, required=True, help="visibility radius r")
    search.add_argument(
        "--json", action="store_true", help="emit the SolveResult envelope as JSON"
    )

    rendezvous = subparsers.add_parser("rendezvous", help="simulate a rendezvous instance")
    rendezvous.add_argument("--distance", type=float, required=True, help="initial distance d")
    rendezvous.add_argument("--bearing", type=float, default=0.0, help="separation bearing in radians")
    rendezvous.add_argument("--visibility", type=float, required=True, help="visibility radius r")
    rendezvous.add_argument(
        "--horizon", type=float, default=None, help="explicit simulation horizon (needed for infeasible instances)"
    )
    rendezvous.add_argument(
        "--allow-infeasible", action="store_true", help="simulate even when Theorem 4 says infeasible"
    )
    _add_attribute_arguments(rendezvous)
    rendezvous.add_argument(
        "--json", action="store_true", help="emit the SolveResult envelope as JSON"
    )

    experiments = subparsers.add_parser("experiments", help="run the evaluation harness")
    experiments.add_argument("ids", nargs="*", help="experiment identifiers (e.g. E01 F03)")
    experiments.add_argument("--all", action="store_true", help="run every registered experiment")
    experiments.add_argument("--list", action="store_true", help="list available experiments")
    experiments.add_argument("--quick", action="store_true", help="reduced workloads for smoke runs")
    experiments.add_argument("--output", type=Path, default=None, help="directory for artefacts")
    experiments.add_argument(
        "--processes", type=int, default=None, help="worker processes for the shared runner"
    )
    experiments.add_argument(
        "--progress",
        action="store_true",
        help="stream per-result progress to stderr while sweeps run",
    )
    experiments.add_argument(
        "--expect-warm",
        action="store_true",
        help=(
            "fail when any spec had to be solved fresh (not served by the store/cache) "
            "or a result fingerprint diverged from the recorded run -- the CI resume check"
        ),
    )
    _add_store_arguments(experiments)

    store = subparsers.add_parser(
        "store", help="inspect and maintain a persistent result store"
    )
    store.add_argument(
        "action",
        choices=("stats", "gc", "export", "import"),
        help="stats: counts + streaming aggregate; gc: compact segments; "
        "export/import: ship a warm cache as one JSONL file",
    )
    store.add_argument(
        "--file",
        type=Path,
        default=None,
        metavar="FILE",
        help="JSONL file to export to / import from",
    )
    store.add_argument("--json", action="store_true", help="emit the outcome as JSON")
    _add_store_arguments(store)

    suites = subparsers.add_parser(
        "suites", help="list the named workload suites (for solve/benchmark sweeps)"
    )
    suites.add_argument("--json", action="store_true", help="emit the listing as JSON")

    sweep = subparsers.add_parser(
        "sweep",
        help=(
            "solve a named spec suite end to end and print its "
            "order-independent fingerprint digest"
        ),
    )
    sweep.add_argument("suite", help="suite name (see `repro suites`)")
    sweep.add_argument(
        "--backend",
        default="auto",
        help=f"backend for the sweep (registered: {', '.join(backend_names())})",
    )
    sweep.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="run the sweep against a running daemon/router instead of solving here",
    )
    sweep.add_argument(
        "--subscribe",
        action="store_true",
        help=(
            "with --connect: submit the whole suite on one connection and "
            "stream per-spec results back in completion order "
            "(needs `repro serve --async`)"
        ),
    )
    sweep.add_argument(
        "--distributed",
        action="store_true",
        help=(
            "with --connect: ship the suite as one partitioned sweep -- the "
            "cluster front partitions the unique specs across shards and each "
            "worker runs its partition as one local batch plan, all execution "
            "tiers active (needs `repro serve --workers N --async`)"
        ),
    )
    sweep.add_argument(
        "--fold",
        action="store_true",
        help=(
            "with --distributed: fold completions into per-(kind, backend) "
            "aggregate tables on the workers and merge them at the router, "
            "instead of streaming every result envelope back"
        ),
    )
    sweep.add_argument(
        "--binary",
        action="store_true",
        help="with --connect: negotiate binary wire frames (falls back to JSON)",
    )
    sweep.add_argument(
        "--processes", type=int, default=None, help="worker processes for a local sweep"
    )
    sweep.add_argument(
        "--progress",
        action="store_true",
        help="stream per-result progress to stderr while the sweep runs",
    )
    sweep.add_argument("--json", action="store_true", help="emit the outcome as JSON")
    _add_store_arguments(sweep)

    serve = subparsers.add_parser(
        "serve", help="run the JSON-Lines solver daemon (TCP, one request per line)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=7767, help="bind port (0 picks an ephemeral port)"
    )
    serve.add_argument(
        "--backend",
        default="auto",
        help=f"default backend for requests (registered: {', '.join(backend_names())})",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="maximum concurrent solves (admission control)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=128,
        help="requests allowed to queue for a solve slot before being refused",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "shard over N supervised worker processes behind a consistent-hash "
            "router (1 = the single-process daemon)"
        ),
    )
    serve.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help=(
            "serve on the asyncio transport: same wire format, far more "
            "concurrent connections, and the streamed `subscribe` sweep verb"
        ),
    )
    serve.add_argument(
        "--port-file",
        type=str,
        default=None,
        metavar="FILE",
        help="write the bound host:port to FILE once listening (for supervisors)",
    )
    serve.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "query a running daemon at --host/--port for its metrics document "
            "(frame-format counts, arena stats) and print it as JSON"
        ),
    )
    _add_store_arguments(serve)

    cluster = subparsers.add_parser(
        "cluster", help="inspect a running sharded cluster (see serve --workers)"
    )
    cluster.add_argument(
        "action", choices=("status",), help="status: per-shard health and metrics"
    )
    cluster.add_argument("--host", default="127.0.0.1", help="router address")
    cluster.add_argument("--port", type=int, default=7767, help="router port")
    cluster.add_argument("--json", action="store_true", help="emit the raw documents as JSON")

    schedule = subparsers.add_parser("schedule", help="print the Algorithm 7 schedule and overlaps")
    schedule.add_argument("--rounds", type=int, default=4, help="number of rounds to display")
    schedule.add_argument("--tau", type=float, default=0.5, help="clock ratio of the second robot")

    gather = subparsers.add_parser(
        "gather", help="simulate multi-robot gathering (extension beyond the paper)"
    )
    gather.add_argument(
        "--robot",
        action="append",
        required=True,
        metavar="X,Y,V,TAU,PHI,CHI",
        help="one swarm member as comma-separated position and attributes; repeat per robot",
    )
    gather.add_argument("--visibility", type=float, required=True, help="common visibility radius")
    gather.add_argument("--horizon", type=float, default=20000.0, help="per-pair simulation horizon")

    lint = subparsers.add_parser(
        "lint",
        help="run the AST invariant checker (determinism, locking, wire schema)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="restrict reported findings to these files/directories (default: whole package)",
    )
    lint.add_argument("--json", action="store_true", help="emit the machine-readable report")
    lint.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on any finding not in the baseline",
    )
    lint.add_argument(
        "--baseline",
        type=str,
        default=None,
        metavar="FILE",
        help="baseline file of accepted findings (default: lint-baseline.json next to pyproject)",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file to accept every current finding",
    )

    return parser


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        type=str,
        default=None,
        metavar="DIR",
        help=f"persistent result store directory (default: ${STORE_ENV_VAR} when set)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help=f"disable the persistent store even when ${STORE_ENV_VAR} is set",
    )


def _store_path_from(namespace: argparse.Namespace) -> Optional[str]:
    """Resolve the effective store directory: flag, then env, then None."""
    if namespace.no_store:
        if namespace.store is not None:
            raise InvalidParameterError("--store and --no-store are mutually exclusive")
        return None
    if namespace.store is not None:
        return namespace.store
    return os.environ.get(STORE_ENV_VAR) or None


def _add_attribute_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--speed", type=float, default=1.0, help="speed v of robot R'")
    parser.add_argument("--time-unit", type=float, default=1.0, help="clock unit tau of robot R'")
    parser.add_argument("--orientation", type=float, default=0.0, help="orientation phi of robot R'")
    parser.add_argument("--chirality", type=int, default=1, choices=(-1, 1), help="chirality chi of robot R'")


def _attributes_from(namespace: argparse.Namespace) -> RobotAttributes:
    return RobotAttributes(
        speed=namespace.speed,
        time_unit=namespace.time_unit,
        orientation=namespace.orientation,
        chirality=namespace.chirality,
    )


# -- the facade sub-command ---------------------------------------------------------


def _specs_from_file(path: str) -> tuple[list[ProblemSpec], bool]:
    """Parse a spec file; the flag reports whether the file held a JSON list.

    List-ness is preserved in the ``--json`` output: a file containing a
    one-element list still prints a one-element array, so downstream
    consumers see a stable shape regardless of batch size.
    """
    text = sys.stdin.read() if path == "-" else Path(path).read_text(encoding="utf-8")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise InvalidParameterError(f"invalid spec JSON in {path!r}: {error}") from error
    if isinstance(data, list):
        return [spec_from_dict(item) for item in data], True
    return [spec_from_dict(data)], False


def _spec_from_flags(namespace: argparse.Namespace) -> ProblemSpec:
    if namespace.kind is None:
        raise InvalidParameterError("pass --spec-file FILE or --kind with problem flags")
    if namespace.kind == "gathering":
        if not namespace.robot:
            raise InvalidParameterError("--kind gathering needs at least two --robot members")
        members = tuple(
            _gathering_member_from(specification) for specification in namespace.robot
        )
        if namespace.visibility is None:
            raise InvalidParameterError("--kind gathering needs --visibility")
        return GatheringProblem(
            members=members,
            visibility=namespace.visibility,
            horizon=namespace.horizon if namespace.horizon is not None else 20000.0,
        )
    if namespace.distance is None or namespace.visibility is None:
        raise InvalidParameterError(f"--kind {namespace.kind} needs --distance and --visibility")
    if namespace.kind == "search":
        return SearchProblem(
            distance=namespace.distance,
            visibility=namespace.visibility,
            bearing=namespace.bearing,
        )
    return RendezvousProblem(
        distance=namespace.distance,
        visibility=namespace.visibility,
        bearing=namespace.bearing,
        speed=namespace.speed,
        time_unit=namespace.time_unit,
        orientation=namespace.orientation,
        chirality=namespace.chirality,
        horizon=namespace.horizon,
        allow_infeasible=namespace.allow_infeasible,
    )


def _fault_overrides_from(namespace: argparse.Namespace) -> Optional[dict]:
    """The ``--fault-model`` / ``--trials`` / ``--mc-seed`` flags as one mapping."""
    overrides: dict = {}
    if namespace.fault_model is not None:
        try:
            parsed = json.loads(namespace.fault_model)
        except json.JSONDecodeError as error:
            raise InvalidParameterError(f"invalid --fault-model JSON: {error}") from error
        if not isinstance(parsed, dict):
            raise InvalidParameterError("--fault-model must be a JSON object")
        overrides.update(parsed)
    if namespace.trials is not None:
        overrides["trials"] = namespace.trials
    if namespace.mc_seed is not None:
        overrides["mc_seed"] = namespace.mc_seed
    return overrides or None


def _apply_fault_overrides(
    specs: list[ProblemSpec], namespace: argparse.Namespace
) -> list[ProblemSpec]:
    """Merge the fault flags into every spec (validated by the spec layer)."""
    overrides = _fault_overrides_from(namespace)
    if overrides is None:
        return specs
    from dataclasses import replace

    from .faults.model import FaultModel

    rebuilt: list[ProblemSpec] = []
    for spec in specs:
        if not hasattr(spec, "fault_model"):
            raise InvalidParameterError(
                f"spec kind {spec.kind!r} does not support a fault model"
            )
        merged = dict(spec.fault_model.to_dict()) if spec.fault_model is not None else {}
        merged.update(overrides)
        rebuilt.append(replace(spec, fault_model=FaultModel.from_dict(merged)))
    return rebuilt


def _command_solve(namespace: argparse.Namespace) -> int:
    if namespace.stdin_jsonl:
        if namespace.spec_file is not None:
            raise InvalidParameterError("--stdin-jsonl and --spec-file are mutually exclusive")
        return _solve_stdin_jsonl(namespace)
    if namespace.connect is not None:
        return _solve_connect(namespace)
    if namespace.binary:
        raise InvalidParameterError("--binary only applies with --connect")
    if namespace.spec_file is not None:
        specs, emit_list = _specs_from_file(namespace.spec_file)
    else:
        specs, emit_list = [_spec_from_flags(namespace)], False
    specs = _apply_fault_overrides(specs, namespace)
    runner = BatchRunner(
        backend=namespace.backend,
        processes=namespace.processes,
        store=_store_path_from(namespace),
    )
    results, stats = runner.run(specs)
    if namespace.json:
        if emit_list:
            print(json.dumps([result.to_dict() for result in results], indent=2, allow_nan=False))
        else:
            print(results[0].to_json(indent=2))
        # Cache effectiveness goes to stderr so stdout stays parseable.
        print(stats.describe(), file=sys.stderr)
    else:
        for result in results:
            print(result.summary())
            print()
        print(stats.describe())
    return 0


def _parse_address(text: str) -> tuple[str, int]:
    host, _, port_text = text.rpartition(":")
    if not host or not port_text.isdigit():
        raise InvalidParameterError(f"expected HOST:PORT, got {text!r}")
    return host, int(port_text)


def _solve_connect(namespace: argparse.Namespace) -> int:
    """Send the solve(s) to a running daemon/router over one connection."""
    from .api.result import SolveResult
    from .service import ServiceClient

    host, port = _parse_address(namespace.connect)
    if namespace.spec_file is not None:
        specs, emit_list = _specs_from_file(namespace.spec_file)
    else:
        specs, emit_list = [_spec_from_flags(namespace)], False
    specs = _apply_fault_overrides(specs, namespace)
    try:
        client = ServiceClient(host, port, binary=namespace.binary)
    except OSError as error:
        raise ReproError(f"cannot reach a daemon at {host}:{port}: {error}") from error
    envelopes: list[dict[str, Any]] = []
    with client:
        for spec in specs:
            response = client.request(
                {"op": "solve", "spec": spec.to_dict(), "backend": namespace.backend}
            )
            if not response.get("ok"):
                raise ReproError(
                    f"daemon refused the solve: {response.get('error')} "
                    f"({response.get('error_type')})"
                )
            envelopes.append(response["result"])
        wire = client.format
        sent, received = client.bytes_sent, client.bytes_received
    if namespace.json:
        if emit_list:
            print(json.dumps(envelopes, indent=2, allow_nan=False))
        else:
            print(json.dumps(envelopes[0], indent=2, allow_nan=False))
    else:
        for envelope in envelopes:
            print(SolveResult.from_dict(envelope).summary())
            print()
    print(
        f"connect {host}:{port} [{wire}]: {len(envelopes)} solve(s), "
        f"{sent} B sent, {received} B received",
        file=sys.stderr,
    )
    return 0


def _solve_stdin_jsonl(namespace: argparse.Namespace) -> int:
    """Stream the serve wire format through an in-process service.

    One request line in, one response line out, flushed immediately --
    identical requests coalesce through the service's runner exactly as
    they would against the daemon.  A metrics summary lands on stderr
    when the stream ends.
    """
    from .api import BatchRunner
    from .service import SolverService, encode_response, handle_line

    # An explicit runner so --processes keeps meaning what it does in
    # --spec-file mode; the store flushes once on drain, not per request.
    runner = BatchRunner(
        backend=namespace.backend,
        processes=namespace.processes,
        store=_store_path_from(namespace),
        flush_store=False,
    )
    service = SolverService(runner=runner, backend=namespace.backend)
    exit_code = 0
    try:
        for line in sys.stdin:
            if not line.strip():
                continue
            response = handle_line(service, line)
            if not response.get("ok"):
                exit_code = 1
            print(encode_response(response), flush=True)
    finally:
        service.drain()
    totals = service.metrics_snapshot()["totals"]
    print(
        f"stdin-jsonl: {totals['requests']} request(s), {totals['solves']} solved, "
        f"{totals['cache_hits']} cache hits, {totals['store_hits']} store hits, "
        f"{totals['coalesced']} coalesced, {totals['errors']} error(s)",
        file=sys.stderr,
    )
    return exit_code


@contextlib.contextmanager
def _graceful_signals(stop_async: Callable[[], None], name: str) -> Iterator[None]:
    """Route SIGTERM/SIGINT through a daemon's graceful stop.

    A supervisor stops a daemon with SIGTERM; without a handler the
    process dies without draining, losing buffered store segments.  The
    handler only *initiates* the stop (``stop_async`` spawns the real
    stop off the main thread): blocking inside a signal handler would
    deadlock the serve loop it is trying to unwind.  Handlers are
    restored on exit so nested servers (a cluster worker is a full
    ``repro serve``) never fight over them.
    """
    def _initiate(signum: int, frame: object) -> None:
        print(
            f"{name}: caught {signal.Signals(signum).name}, draining in-flight requests",
            file=sys.stderr,
            flush=True,
        )
        stop_async()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _initiate)
        except ValueError:  # pragma: no cover - not on the main thread
            pass
    try:
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def _write_port_file(namespace: argparse.Namespace, address: str) -> None:
    """Publish the bound address for supervisors (``--port-file``).

    Atomically: a supervisor polling the file must never read a
    truncated address, so the content lands in a same-directory temp
    file first and is renamed into place (rename is atomic on POSIX).
    """
    if not getattr(namespace, "port_file", None):
        return
    target = Path(namespace.port_file)
    temporary = target.with_name(f"{target.name}.{os.getpid()}.tmp")
    temporary.write_text(address + "\n", encoding="utf-8")
    try:
        os.replace(temporary, target)
    except OSError:
        with contextlib.suppress(OSError):
            temporary.unlink()
        raise


def _command_serve(namespace: argparse.Namespace) -> int:
    if namespace.metrics:
        return _serve_metrics(namespace)
    if namespace.workers < 1:
        raise InvalidParameterError(f"--workers must be >= 1, got {namespace.workers!r}")
    if namespace.workers > 1:
        return _command_serve_cluster(namespace)
    from .service import AsyncReproServer, ReproServer, SolverService

    service = SolverService(
        backend=namespace.backend,
        store=_store_path_from(namespace),
        max_inflight=namespace.max_inflight,
        queue_limit=namespace.queue_limit,
    )
    if namespace.use_async:
        server = AsyncReproServer(
            service=service, host=namespace.host, port=namespace.port
        )
        transport_text = ", asyncio"
    else:
        server = ReproServer(service=service, host=namespace.host, port=namespace.port)
        transport_text = ""
    # ``is not None``: an empty ResultStore has len() == 0 and is falsy.
    store_text = (
        f", store {service.runner.store.path}" if service.runner.store is not None else ""
    )
    print(
        f"repro serve: listening on {server.address} "
        f"(backend {namespace.backend}, max in-flight {namespace.max_inflight}"
        f"{transport_text}{store_text})",
        flush=True,
    )
    _write_port_file(namespace, server.address)
    # The handlers stay installed through the blocking stop() below: a
    # supervisor's follow-up signal during the drain must keep routing
    # into the (idempotent) stop instead of killing the flush mid-way.
    with _graceful_signals(server.stop_async, "repro serve"):
        try:
            server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - handler owns SIGINT
            print("repro serve: interrupted, draining in-flight requests", file=sys.stderr)
        finally:
            server.stop()
    return 0


def _serve_metrics(namespace: argparse.Namespace) -> int:
    """One-shot metrics probe against a running daemon or router."""
    from .service import ServiceClient

    try:
        with ServiceClient(namespace.host, namespace.port) as client:
            response = client.request({"op": "metrics"})
    except OSError as error:
        raise ReproError(
            f"cannot reach a daemon at {namespace.host}:{namespace.port}: {error}"
        ) from error
    if not response.get("ok"):
        raise ReproError(f"daemon refused metrics: {response.get('error')}")
    print(json.dumps(response["metrics"], indent=2, sort_keys=True, allow_nan=False))
    return 0


def _command_serve_cluster(namespace: argparse.Namespace) -> int:
    import threading

    from .cluster import ClusterSupervisor, boot_router

    supervisor = ClusterSupervisor(
        workers=namespace.workers,
        backend=namespace.backend,
        store=_store_path_from(namespace),
        max_inflight=namespace.max_inflight,
        queue_limit=namespace.queue_limit,
        async_workers=namespace.use_async,
    )
    # Workers are detached processes (they survive parent death), so the
    # signal handlers must cover the spawn window too: a SIGTERM while
    # the fleet is booting kills the workers instead of leaking them.
    # Once the router exists, signals route through its graceful stop.
    state: dict[str, Any] = {"router": None, "stop_requested": False}

    def _stop_cluster_async() -> None:
        # Flag first, read second: pairs with the post-construction
        # check below so a signal landing between supervisor.start()
        # and the router assignment still stops the process.
        state["stop_requested"] = True
        router = state["router"]
        if router is not None:
            router.stop_async()
        else:
            threading.Thread(
                target=lambda: supervisor.stop(drain=False), daemon=True
            ).start()

    with _graceful_signals(_stop_cluster_async, "repro serve"):
        try:
            router = boot_router(
                supervisor,
                use_async=namespace.use_async,
                host=namespace.host,
                port=namespace.port,
                backend=namespace.backend,
            )
        except ReproError:
            if state["stop_requested"]:
                # The signal tore the fleet down mid-boot; that is the
                # stop the caller asked for, not a crash.
                supervisor.stop(drain=False)
                return 0
            raise
        state["router"] = router
        if state["stop_requested"]:
            # The signal beat the assignment: its handler tore the fleet
            # down but could not see the router, so stop it here instead
            # of serving a dead fleet.
            router.stop()
            return 0
        print(
            f"repro serve: router on {router.address} sharding over "
            f"{namespace.workers} worker(s) "
            f"({', '.join(handle.address or '?' for handle in supervisor.handles)})",
            flush=True,
        )
        _write_port_file(namespace, router.address)
        try:
            router.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - handler owns SIGINT
            print("repro serve: interrupted, draining the cluster", file=sys.stderr)
        finally:
            router.stop()
    return 0


def _command_cluster(namespace: argparse.Namespace) -> int:
    from .cluster import CLUSTER_STATUS_OP
    from .service import request_lines

    try:
        status_line, metrics_line = request_lines(
            namespace.host,
            namespace.port,
            [json.dumps({"op": CLUSTER_STATUS_OP}, allow_nan=False), json.dumps({"op": "metrics"})],
        )
    except OSError as error:
        raise ReproError(
            f"cannot reach a router at {namespace.host}:{namespace.port}: {error}"
        ) from error
    status_response = json.loads(status_line)
    if not status_response.get("ok"):
        raise ReproError(
            f"router refused {CLUSTER_STATUS_OP}: {status_response.get('error')} "
            "(is this a single-process `repro serve` daemon?)"
        )
    status = status_response["cluster"]
    metrics = json.loads(metrics_line).get("metrics", {})
    if namespace.json:
        print(json.dumps({"cluster": status, "metrics": metrics}, indent=2, allow_nan=False))
        return 0
    print(
        f"router {namespace.host}:{namespace.port}: {status['status']}, "
        f"{status['alive']}/{status['workers']} worker(s) alive, "
        f"{status['worker_restarts']} restart(s), {status['reroutes']} reroute(s), "
        f"{status['router_coalesced']} coalesced at the router"
    )
    shard_metrics = {row["worker"]: row for row in metrics.get("shards", [])}
    for row in status["shards"]:
        counters = shard_metrics.get(row["worker"], {})
        worker_totals = (counters.get("metrics") or {}).get("totals", {})
        state = "up" if row["alive"] else "DOWN"
        if counters.get("degraded"):
            state += " (degraded)"
        print(
            f"  shard {row['worker']}: {state}  {row['address'] or '?'}  "
            f"pid {row['pid']}  restarts {row['restarts']}  "
            f"forwarded {counters.get('forwarded', 0)}  "
            f"failures {counters.get('failures', 0)}  "
            f"requests {worker_totals.get('requests', 0)} "
            f"(solves {worker_totals.get('solves', 0)}, "
            f"hits {worker_totals.get('cache_hits', 0) + worker_totals.get('store_hits', 0)})"
        )
    return 0


# -- classic sub-commands (thin wrappers over the facade) ----------------------------


def _command_feasibility(namespace: argparse.Namespace) -> int:
    verdict = classify_feasibility(_attributes_from(namespace))
    if namespace.json:
        print(
            json.dumps(
                {"feasible": verdict.feasible, "reasons": list(verdict.reasons)}, indent=2
            , allow_nan=False)
        )
    else:
        print(verdict.describe())
    return 0


def _command_search(namespace: argparse.Namespace) -> int:
    spec = SearchProblem(
        distance=namespace.distance,
        visibility=namespace.visibility,
        bearing=namespace.bearing,
    )
    result = api_solve(spec, backend="simulation")
    print(result.to_json(indent=2) if namespace.json else result.summary())
    return 0


def _command_rendezvous(namespace: argparse.Namespace) -> int:
    spec = RendezvousProblem(
        distance=namespace.distance,
        visibility=namespace.visibility,
        bearing=namespace.bearing,
        speed=namespace.speed,
        time_unit=namespace.time_unit,
        orientation=namespace.orientation,
        chirality=namespace.chirality,
        horizon=namespace.horizon,
        allow_infeasible=namespace.allow_infeasible,
    )
    result = api_solve(spec, backend="simulation")
    print(result.to_json(indent=2) if namespace.json else result.summary())
    return 0


def _command_experiments(namespace: argparse.Namespace) -> int:
    if namespace.list:
        for identifier in experiment_ids():
            print(identifier)
        return 0
    if not namespace.all and not namespace.ids:
        print("nothing to run: pass experiment ids, --all or --list", file=sys.stderr)
        return 2
    store_path = _store_path_from(namespace)
    if namespace.expect_warm and store_path is None:
        raise InvalidParameterError(
            f"--expect-warm needs a store to answer from: pass --store DIR "
            f"(or set ${STORE_ENV_VAR})"
        )
    reports, run_summary = run_all_resumable(
        output_dir=namespace.output,
        quick=namespace.quick,
        ids=None if namespace.all else namespace.ids,
        store=store_path,
        processes=namespace.processes,
        progress=_experiment_progress_printer() if namespace.progress else None,
    )
    if namespace.progress:
        print(file=sys.stderr)
    for report in reports:
        print(report.to_text())
        print()
    if store_path is not None:
        print(run_summary.describe())
        print()
    if namespace.output is not None:
        summary = write_summary(reports, Path(namespace.output) / "summary.md")
        print(f"summary written to {summary}")
    if namespace.expect_warm:
        if not run_summary.fully_warm:
            print(
                f"error: --expect-warm but {run_summary.fresh_solves} spec(s) were "
                "solved fresh instead of answering from the store",
                file=sys.stderr,
            )
            return 1
        if run_summary.fingerprint_mismatches:
            print(
                "error: --expect-warm but result fingerprints diverged in: "
                + ", ".join(run_summary.fingerprint_mismatches),
                file=sys.stderr,
            )
            return 1
    return 0 if all(report.all_passed for report in reports) else 1


def _experiment_progress_printer():
    """A streaming progress line fed by ``BatchRunner`` completions.

    Results arrive in completion order (the ``run_iter`` stream), so the
    line advances while a sweep is still solving -- not after it.
    """
    state = {"experiment": None, "done": 0}

    def show(experiment_id: str, completion) -> None:
        if experiment_id != state["experiment"]:
            if state["experiment"] is not None:
                print(file=sys.stderr)
            state["experiment"] = experiment_id
            state["done"] = 0
        state["done"] += 1
        print(
            f"\r{experiment_id}: {state['done']} result(s) "
            f"[last: {completion.source}, {completion.latency * 1e3:.1f} ms]",
            end="",
            file=sys.stderr,
            flush=True,
        )

    return show


def _command_store(namespace: argparse.Namespace) -> int:
    from .analysis import fold_envelopes

    store_path = _store_path_from(namespace)
    if store_path is None:
        raise InvalidParameterError(
            f"repro store needs --store DIR (or ${STORE_ENV_VAR} in the environment)"
        )
    # Only `import` may create the directory; the inspect/maintain
    # actions on a mistyped path should say so, not report an empty store.
    if namespace.action != "import" and not Path(store_path).is_dir():
        raise InvalidParameterError(f"store directory {store_path!r} does not exist")
    store = ResultStore(store_path)
    if namespace.action == "stats":
        stats = store.stats()
        aggregate = fold_envelopes(envelope for _, envelope in store.scan())
        if namespace.json:
            payload = {
                "path": stats.path,
                "segments": stats.segments,
                "records": stats.records,
                "unique": stats.unique,
                "duplicates": stats.duplicates,
                "skipped_lines": stats.skipped_lines,
                "total_bytes": stats.total_bytes,
                "backends": stats.backends,
                "groups": [
                    {
                        "kind": group.kind,
                        "backend": group.backend,
                        "results": group.count,
                        "solved": group.solved,
                        "unsolved": group.unsolved,
                        "bound_only": group.bound_only,
                        "infeasible": group.infeasible,
                        "mean_measured_time": group.measured_time.mean
                        if group.measured_time.count
                        else None,
                        "max_bound_ratio": group.bound_ratio.maximum
                        if group.bound_ratio.count
                        else None,
                    }
                    for _, group in sorted(aggregate.groups.items())
                ],
            }
            print(json.dumps(payload, indent=2, allow_nan=False))
        else:
            print(stats.describe())
            if aggregate.groups:
                print()
                print(aggregate.to_table().to_text())
        return 0
    if namespace.action == "gc":
        kept, removed = store.gc()
        if namespace.json:
            print(json.dumps({"action": "gc", "kept": kept, "removed_segments": removed}, allow_nan=False))
        else:
            print(f"compacted {removed} segment(s) into 1; {kept} live record(s) kept")
        return 0
    if namespace.file is None:
        raise InvalidParameterError(f"repro store {namespace.action} needs --file FILE")
    if namespace.action == "export":
        count = store.export(namespace.file)
        if namespace.json:
            print(
                json.dumps(
                    {"action": "export", "records": count, "file": str(namespace.file)}
                , allow_nan=False)
            )
        else:
            print(f"exported {count} record(s) to {namespace.file}")
        return 0
    added = store.import_file(namespace.file)
    if namespace.json:
        print(
            json.dumps(
                {
                    "action": "import",
                    "added": added,
                    "total": len(store),
                    "file": str(namespace.file),
                }
            , allow_nan=False)
        )
    else:
        print(f"imported {added} new record(s) from {namespace.file} ({len(store)} total)")
    return 0


def _command_suites(namespace: argparse.Namespace) -> int:
    import hashlib

    from .workloads import spec_suite, spec_suite_names

    rows = []
    for name in spec_suite_names():
        specs = spec_suite(name)
        if hasattr(specs, "digest"):
            # A lazy suite knows its own identity; asking it avoids
            # materializing 10^5 spec objects just to list the row.
            kinds = sorted(specs.kinds)
            digest = specs.digest()
            faulted = specs.faulted
        else:
            kinds = sorted({spec.kind for spec in specs})
            hashes = [spec.canonical_hash() for spec in specs]
            digest = hashlib.sha256("".join(hashes).encode("utf-8")).hexdigest()[:12]
            faulted = sum(
                1
                for spec in specs
                if getattr(spec, "fault_model", None) is not None
                and spec.fault_model.is_fault
            )
        rows.append(
            {
                "name": name,
                "specs": len(specs),
                "kinds": kinds,
                "faulted": faulted,
                "digest": digest,
            }
        )
    if namespace.json:
        print(json.dumps(rows, indent=2, allow_nan=False))
        return 0
    width = max(len(row["name"]) for row in rows)
    for row in rows:
        fault_note = f"  {row['faulted']:>3} faulted" if row["faulted"] else "            "
        print(
            f"{row['name']:<{width}}  {row['specs']:>5} specs{fault_note}  "
            f"[{', '.join(row['kinds'])}]  {row['digest']}"
        )
    return 0


def _command_sweep(namespace: argparse.Namespace) -> int:
    """Solve one named suite end to end and report its fingerprint digest.

    Four execution paths, one outcome shape: locally through the shared
    :class:`BatchRunner`, remotely one solve per round-trip, remotely
    streamed through the async daemon's ``subscribe`` verb, or shipped
    as one partitioned ``--distributed`` sweep that the cluster front
    spreads across its workers -- the digest is order-independent, so
    all of them agree bit-for-bit on the same suite (``--fold`` swaps it
    for the blob-hash fold digest, equally order-independent).
    """
    from .experiments.manifest import fingerprint_digest
    from .workloads import spec_suite

    specs = spec_suite(namespace.suite)
    if namespace.fold and not namespace.distributed:
        raise InvalidParameterError("--fold only applies with --distributed")
    if namespace.distributed and namespace.subscribe:
        raise InvalidParameterError(
            "--distributed and --subscribe are different wire verbs; pick one"
        )
    if namespace.connect is not None:
        outcome = _sweep_connect(namespace, specs)
    else:
        if namespace.subscribe or namespace.binary or namespace.distributed:
            raise InvalidParameterError(
                "--subscribe, --distributed and --binary only apply with --connect"
            )
        runner = BatchRunner(
            backend=namespace.backend,
            processes=namespace.processes,
            store=_store_path_from(namespace),
        )
        results, stats = runner.run(specs)
        outcome = {
            "suite": namespace.suite,
            "mode": "local",
            "total": stats.total,
            "unique": stats.unique,
            "errors": 0,
            "sources": {
                key: value
                for key, value in (
                    ("cache", stats.cache_hits),
                    ("store", stats.solved_from_store),
                    ("solved", stats.solved_fresh),
                )
                if value
            },
            "fingerprint_digest": fingerprint_digest(results),
            "wall_time_ms": round(stats.wall_time * 1e3, 3),
        }
    if namespace.json:
        print(json.dumps(outcome, indent=2, sort_keys=True, allow_nan=False))
    else:
        sources = ", ".join(
            f"{key}={value}" for key, value in sorted(outcome["sources"].items())
        )
        print(
            f"sweep {outcome['suite']} [{outcome['mode']}]: "
            f"{outcome['total']} spec(s) ({outcome['unique']} unique), "
            f"{outcome['errors']} error(s), {outcome['wall_time_ms']:.0f} ms "
            f"[{sources}]"
        )
        if outcome.get("partitions") is not None:
            shards = ", ".join(
                f"worker {row['worker']}: {row['completed']}/{row['specs']}"
                for row in outcome["partitions"]
            )
            print(
                f"fan-out {outcome['fanout']} [{shards}]; "
                f"repartitioned {outcome['repartitioned']}"
            )
        if "fold" in outcome:
            from .analysis.streaming import EnvelopeAggregate

            if outcome["fold"] is not None:
                table = EnvelopeAggregate.from_wire(outcome["fold"]).to_table(
                    title="Sweep results by kind and backend"
                )
                print(table.to_text())
            print(f"fold digest: {outcome['fold_digest']}")
        else:
            print(f"fingerprint digest: {outcome['fingerprint_digest']}")
    return 0 if outcome["errors"] == 0 else 1


def _sweep_connect(namespace: argparse.Namespace, specs: list) -> dict[str, Any]:
    """Run one suite against a daemon/router, streamed or per-request."""
    import time as _time

    from .api.result import SolveResult
    from .experiments.manifest import fingerprint_digest
    from .service import ServiceClient

    host, port = _parse_address(namespace.connect)
    try:
        client = ServiceClient(host, port, binary=namespace.binary)
    except OSError as error:
        raise ReproError(f"cannot reach a daemon at {host}:{port}: {error}") from error
    with client:
        if namespace.distributed:
            mode = "fold" if namespace.fold else "stream"
            stream = client.sweep(specs, backend=namespace.backend, mode=mode)
            fold_doc = None
            count = 0
            for record in stream:
                if record.get("op") == "partial":
                    fold_doc = record.get("fold")
                    continue
                count += 1
                if namespace.progress:
                    print(
                        f"  [{count}/{stream.ack['unique']}] seq={record['seq']} "
                        f"{record['key']['spec_hash'][:12]} via {record['served_by']}",
                        file=sys.stderr,
                    )
                if not record.get("ok"):
                    print(
                        f"  spec {record['key']['spec_hash'][:12]} failed: "
                        f"{record.get('error')}",
                        file=sys.stderr,
                    )
            summary = stream.summary
            assert summary is not None  # iterator stops only on the summary
            outcome = {
                "suite": namespace.suite,
                "mode": f"sweep/{mode}/{client.format}",
                "total": summary["total"],
                "unique": summary["unique"],
                "errors": summary["errors"],
                "sources": summary["sources"],
                "fanout": stream.ack.get("fanout"),
                "partitions": summary.get("partitions"),
                "repartitioned": summary.get("repartitioned", 0),
                "wall_time_ms": summary["wall_time_ms"],
            }
            if mode == "fold":
                outcome["fold"] = fold_doc
                outcome["fold_digest"] = summary.get("fold_digest")
            else:
                outcome["fingerprint_digest"] = summary["fingerprint_digest"]
            return outcome
        if namespace.subscribe:
            stream = client.subscribe(specs, backend=namespace.backend)
            errors = 0
            count = 0
            for record in stream:
                count += 1
                if namespace.progress:
                    print(
                        f"  [{count}/{stream.ack['unique']}] seq={record['seq']} "
                        f"{record['key']['spec_hash'][:12]} via {record['served_by']}",
                        file=sys.stderr,
                    )
                if not record.get("ok"):
                    errors += 1
                    print(
                        f"  spec {record['key']['spec_hash'][:12]} failed: "
                        f"{record.get('error')}",
                        file=sys.stderr,
                    )
            summary = stream.summary
            assert summary is not None  # iterator stops only on the summary
            return {
                "suite": namespace.suite,
                "mode": f"subscribe/{client.format}",
                "total": summary["total"],
                "unique": summary["unique"],
                "errors": summary["errors"],
                "sources": summary["sources"],
                "fingerprint_digest": summary["fingerprint_digest"],
                "wall_time_ms": summary["wall_time_ms"],
            }
        started = _time.perf_counter()
        results = []
        errors = 0
        sources: dict[str, int] = {}
        for index, spec in enumerate(specs):
            response = client.request(
                {"op": "solve", "spec": spec.to_dict(), "backend": namespace.backend}
            )
            if response.get("ok"):
                results.append(SolveResult.from_dict(response["result"]))
                source = response.get("served_by", "solve")
                sources[source] = sources.get(source, 0) + 1
            else:
                errors += 1
                sources["error"] = sources.get("error", 0) + 1
                print(f"  spec {index} failed: {response.get('error')}", file=sys.stderr)
            if namespace.progress:
                print(
                    f"  [{index + 1}/{len(specs)}] via {response.get('served_by', '?')}",
                    file=sys.stderr,
                )
        return {
            "suite": namespace.suite,
            "mode": f"connect/{client.format}",
            "total": len(specs),
            "unique": len(specs),
            "errors": errors,
            "sources": sources,
            "fingerprint_digest": fingerprint_digest(results),
            "wall_time_ms": round((_time.perf_counter() - started) * 1e3, 3),
        }


def _command_schedule(namespace: argparse.Namespace) -> int:
    print(RoundSchedule(1.0).describe(namespace.rounds))
    print()
    print(RoundSchedule(namespace.tau).describe(namespace.rounds))
    print()
    print(render_schedule_ascii(overlap_rows(namespace.rounds, namespace.tau)))
    return 0


def _parse_swarm_member(specification: str) -> tuple[Vec2, RobotAttributes]:
    parts = [part.strip() for part in specification.split(",")]
    if len(parts) != 6:
        raise ReproError(
            f"swarm member {specification!r} must have 6 comma-separated fields: x,y,v,tau,phi,chi"
        )
    x, y, speed, time_unit, orientation, chirality = (float(part) for part in parts)
    return Vec2(x, y), RobotAttributes(
        speed=speed, time_unit=time_unit, orientation=orientation, chirality=int(chirality)
    )


def _gathering_member_from(specification: str) -> GatheringMember:
    position, attributes = _parse_swarm_member(specification)
    return GatheringMember(
        x=position.x,
        y=position.y,
        speed=attributes.speed,
        time_unit=attributes.time_unit,
        orientation=attributes.orientation,
        chirality=attributes.chirality,
    )


def _command_gather(namespace: argparse.Namespace) -> int:
    from .gathering import GatheringInstance, simulate_gathering, swarm_feasibility

    members = [_parse_swarm_member(specification) for specification in namespace.robot]
    instance = GatheringInstance.create(
        positions=[position for position, _ in members],
        attributes=[attributes for _, attributes in members],
        visibility=namespace.visibility,
    )
    print(swarm_feasibility(instance).describe())
    print()
    outcome = simulate_gathering(instance, horizon=namespace.horizon)
    print(outcome.describe())
    return 0


def _command_lint(namespace: argparse.Namespace) -> int:
    from .lint import Baseline, run_lint

    package_root = Path(__file__).resolve().parent
    if namespace.baseline is not None:
        baseline_path = Path(namespace.baseline)
    else:
        # src/repro -> repo root; keep the baseline next to pyproject.
        baseline_path = package_root.parent.parent / "lint-baseline.json"
    baseline = Baseline.load(baseline_path)
    report = run_lint(
        package_root,
        paths=namespace.paths or None,
        baseline=baseline,
    )
    if namespace.write_baseline:
        Baseline.from_findings(report.findings).save(baseline_path)
        print(f"wrote {len(report.findings)} finding(s) to {baseline_path}", file=sys.stderr)
        return 0
    if namespace.json:
        print(report.to_json(strict=namespace.strict))
    else:
        print(report.render_text(strict=namespace.strict))
    return report.exit_code(strict=namespace.strict)


_COMMANDS = {
    "solve": _command_solve,
    "feasibility": _command_feasibility,
    "search": _command_search,
    "rendezvous": _command_rendezvous,
    "experiments": _command_experiments,
    "store": _command_store,
    "suites": _command_suites,
    "sweep": _command_sweep,
    "serve": _command_serve,
    "cluster": _command_cluster,
    "schedule": _command_schedule,
    "gather": _command_gather,
    "lint": _command_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    namespace = parser.parse_args(argv)
    try:
        return _COMMANDS[namespace.command](namespace)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
