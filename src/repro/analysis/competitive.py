"""Competitive-ratio style comparisons.

The paper's bounds are absolute, but a natural way of reading the results
(and of comparing against baselines in E10) is relative to the *offline
optimum*: a pair of robots that knew everything could simply walk toward
each other and meet after ``(d - r) / (1 + v)`` time units, and a searcher
that knew the target's location would reach it in ``d - r`` time units.
These helpers compute those yardsticks and the resulting ratios.
"""

from __future__ import annotations

from ..errors import InvalidParameterError
from ..robots import RobotAttributes

__all__ = [
    "offline_search_optimum",
    "offline_rendezvous_optimum",
    "search_competitive_ratio",
    "rendezvous_competitive_ratio",
]


def offline_search_optimum(distance: float, visibility: float) -> float:
    """Time an omniscient unit-speed searcher needs: ``max(d - r, 0)``."""
    if distance <= 0.0 or visibility <= 0.0:
        raise InvalidParameterError("distance and visibility must be positive")
    return max(distance - visibility, 0.0)


def offline_rendezvous_optimum(
    distance: float, visibility: float, attributes: RobotAttributes
) -> float:
    """Time two omniscient robots need: ``max(d - r, 0) / (1 + v)``.

    Both robots walk straight at each other at their full speeds; the gap
    closes at rate ``1 + v`` regardless of clocks, orientations or
    chirality (omniscient robots are not bound by symmetric strategies).
    """
    if distance <= 0.0 or visibility <= 0.0:
        raise InvalidParameterError("distance and visibility must be positive")
    return max(distance - visibility, 0.0) / (1.0 + attributes.speed)


def search_competitive_ratio(measured_time: float, distance: float, visibility: float) -> float:
    """Measured search time over the omniscient optimum."""
    optimum = offline_search_optimum(distance, visibility)
    if optimum == 0.0:
        return 1.0
    return measured_time / optimum


def rendezvous_competitive_ratio(
    measured_time: float, distance: float, visibility: float, attributes: RobotAttributes
) -> float:
    """Measured rendezvous time over the omniscient optimum."""
    optimum = offline_rendezvous_optimum(distance, visibility, attributes)
    if optimum == 0.0:
        return 1.0
    return measured_time / optimum
