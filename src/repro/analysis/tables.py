"""Plain-text, markdown and CSV table rendering.

The experiment harness reports everything as tables ("the same rows the
paper's theorems predict"); this module is a tiny dependency-free table
formatter shared by all experiments, the CLI and EXPERIMENTS.md generation.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..errors import InvalidParameterError

__all__ = ["Table"]


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


@dataclass
class Table:
    """A small column-ordered table of experiment results."""

    columns: Sequence[str]
    rows: list[list[object]] = field(default_factory=list)
    title: str = ""
    precision: int = 6

    def __post_init__(self) -> None:
        if not self.columns:
            raise InvalidParameterError("a table needs at least one column")

    # -- construction -------------------------------------------------------
    def add_row(self, values: Sequence[object] | Mapping[str, object]) -> None:
        """Append a row given as a sequence (column order) or mapping."""
        if isinstance(values, Mapping):
            row = [values.get(column, "") for column in self.columns]
        else:
            if len(values) != len(self.columns):
                raise InvalidParameterError(
                    f"expected {len(self.columns)} values, got {len(values)}"
                )
            row = list(values)
        self.rows.append(row)

    def extend(self, rows: Iterable[Sequence[object] | Mapping[str, object]]) -> None:
        """Append several rows."""
        for row in rows:
            self.add_row(row)

    # -- access --------------------------------------------------------------
    def column(self, name: str) -> list[object]:
        """All values of one column."""
        try:
            index = list(self.columns).index(name)
        except ValueError as error:
            raise InvalidParameterError(f"unknown column {name!r}") from error
        return [row[index] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    # -- rendering ------------------------------------------------------------
    def _formatted_rows(self) -> list[list[str]]:
        return [[_format_cell(value, self.precision) for value in row] for row in self.rows]

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering."""
        lines = []
        if self.title:
            lines.append(f"### {self.title}")
            lines.append("")
        header = "| " + " | ".join(self.columns) + " |"
        separator = "| " + " | ".join("---" for _ in self.columns) + " |"
        lines.append(header)
        lines.append(separator)
        for row in self._formatted_rows():
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def to_text(self) -> str:
        """Fixed-width plain-text rendering for terminals."""
        formatted = self._formatted_rows()
        widths = [len(column) for column in self.columns]
        for row in formatted:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for row in formatted:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering (raw values, not rounded)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(row)
        return buffer.getvalue()
