"""Analysis helpers: sweeps, statistics, tables, reports, competitive ratios."""

from .competitive import (
    offline_rendezvous_optimum,
    offline_search_optimum,
    rendezvous_competitive_ratio,
    search_competitive_ratio,
)
from .report import CheckResult, ExperimentReport, combine_markdown
from .statistics import SummaryStatistics, geometric_mean, log_log_slope, scaling_fit, summarize
from .streaming import (
    EnvelopeAggregate,
    GroupAggregate,
    StreamingStats,
    fold_envelopes,
    percentile,
    summarize_trials,
)
from .sweep import ParameterSweep, geometric_grid, linear_grid
from .tables import Table

__all__ = [
    "offline_rendezvous_optimum",
    "offline_search_optimum",
    "rendezvous_competitive_ratio",
    "search_competitive_ratio",
    "CheckResult",
    "ExperimentReport",
    "combine_markdown",
    "SummaryStatistics",
    "geometric_mean",
    "log_log_slope",
    "scaling_fit",
    "summarize",
    "ParameterSweep",
    "geometric_grid",
    "linear_grid",
    "Table",
    "StreamingStats",
    "GroupAggregate",
    "EnvelopeAggregate",
    "fold_envelopes",
    "percentile",
    "summarize_trials",
]
