"""Experiment reports: a named bundle of tables, notes and verdicts.

Every experiment produces an :class:`ExperimentReport`; the run-all driver
collects them into markdown (EXPERIMENTS.md style) and CSV artefacts, and
the benchmarks assert on their ``checks``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from ..errors import ExperimentError
from .tables import Table

__all__ = ["CheckResult", "ExperimentReport"]


@dataclass(frozen=True, slots=True)
class CheckResult:
    """One verifiable claim extracted from the paper, with its outcome."""

    name: str
    passed: bool
    detail: str = ""

    def describe(self) -> str:
        """Single-line rendering."""
        status = "PASS" if self.passed else "FAIL"
        suffix = f" -- {self.detail}" if self.detail else ""
        return f"[{status}] {self.name}{suffix}"


@dataclass
class ExperimentReport:
    """Output of one experiment run."""

    experiment_id: str
    title: str
    paper_reference: str
    tables: list[Table] = field(default_factory=list)
    checks: list[CheckResult] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    # -- construction -----------------------------------------------------------
    def add_table(self, table: Table) -> None:
        """Attach a result table."""
        self.tables.append(table)

    def add_check(self, name: str, passed: bool, detail: str = "") -> None:
        """Record a pass/fail claim check."""
        self.checks.append(CheckResult(name=name, passed=bool(passed), detail=detail))

    def add_note(self, note: str) -> None:
        """Attach a free-form note."""
        self.notes.append(note)

    # -- inspection ----------------------------------------------------------------
    @property
    def all_passed(self) -> bool:
        """True when every recorded check passed."""
        return all(check.passed for check in self.checks)

    def failed_checks(self) -> list[CheckResult]:
        """The checks that failed."""
        return [check for check in self.checks if not check.passed]

    def require_success(self) -> None:
        """Raise when any check failed (used by benchmarks)."""
        failures = self.failed_checks()
        if failures:
            details = "; ".join(check.describe() for check in failures)
            raise ExperimentError(f"experiment {self.experiment_id} failed: {details}")

    # -- rendering ------------------------------------------------------------------
    def to_markdown(self) -> str:
        """Markdown rendering of the whole report."""
        lines = [f"## {self.experiment_id}: {self.title}", "", f"*Paper reference:* {self.paper_reference}", ""]
        if self.notes:
            for note in self.notes:
                lines.append(f"- {note}")
            lines.append("")
        for table in self.tables:
            lines.append(table.to_markdown())
            lines.append("")
        if self.checks:
            lines.append("**Checks**")
            lines.append("")
            for check in self.checks:
                lines.append(f"- {check.describe()}")
            lines.append("")
        return "\n".join(lines)

    def to_text(self) -> str:
        """Plain-text rendering for terminals."""
        lines = [f"{self.experiment_id}: {self.title}", f"paper reference: {self.paper_reference}"]
        for note in self.notes:
            lines.append(f"note: {note}")
        for table in self.tables:
            lines.append("")
            lines.append(table.to_text())
        if self.checks:
            lines.append("")
            for check in self.checks:
                lines.append(check.describe())
        return "\n".join(lines)

    def write_artifacts(self, directory: Path | str) -> list[Path]:
        """Write markdown and CSV artefacts into ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written: list[Path] = []
        markdown_path = directory / f"{self.experiment_id.lower()}.md"
        markdown_path.write_text(self.to_markdown(), encoding="utf-8")
        written.append(markdown_path)
        for index, table in enumerate(self.tables):
            csv_path = directory / f"{self.experiment_id.lower()}_table{index}.csv"
            csv_path.write_text(table.to_csv(), encoding="utf-8")
            written.append(csv_path)
        return written


def combine_markdown(reports: Iterable[ExperimentReport]) -> str:
    """Concatenate several reports into one markdown document."""
    return "\n\n".join(report.to_markdown() for report in reports)


__all__.append("combine_markdown")
