"""Streaming aggregation of stored result envelopes.

The persistent :class:`~repro.api.store.ResultStore` can hold far more
envelopes than it is sensible to materialise as :class:`SolveResult`
objects at once.  This module folds envelopes -- in their JSON wire form,
one at a time -- into compact per-``(kind, backend)`` aggregates using
Welford's online algorithm, so summarising a million-record store costs
one pass and constant memory:

    from repro.api import ResultStore
    from repro.analysis import fold_envelopes

    store = ResultStore(".repro-store")
    aggregate = fold_envelopes(envelope for _, envelope in store.scan())
    print(aggregate.to_table().to_text())
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional

from .tables import Table

__all__ = [
    "StreamingStats",
    "GroupAggregate",
    "EnvelopeAggregate",
    "fold_envelopes",
    "percentile",
    "summarize_trials",
]


@dataclass
class StreamingStats:
    """Single-pass (Welford) mean/variance/extrema accumulator."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def push(self, value: float) -> None:
        """Fold one observation in (constant memory)."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def merge(self, other: "StreamingStats") -> None:
        """Fold another accumulator in (Chan's parallel combination)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def std(self) -> float:
        """Population standard deviation (0 for fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return math.sqrt(self._m2 / self.count)

    @property
    def variance(self) -> float:
        """Population variance (0 for fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe mapping (no infinities: empty extrema become None)."""
        empty = self.count == 0
        return {
            "count": self.count,
            "mean": self.mean if not empty else 0.0,
            "std": self.std,
            "min": None if empty else self.minimum,
            "max": None if empty else self.maximum,
        }

    def to_wire(self) -> dict[str, Any]:
        """Lossless JSON form for distributed merging.

        Unlike :meth:`to_dict` (which renders ``std`` for humans and
        drops the second moment), this carries ``m2`` itself, so an
        accumulator shipped across the wire merges exactly as if it had
        never left the process.
        """
        empty = self.count == 0
        return {
            "count": self.count,
            "mean": self.mean,
            "m2": self._m2,
            "min": None if empty else self.minimum,
            "max": None if empty else self.maximum,
        }

    @classmethod
    def from_wire(cls, doc: Mapping[str, Any]) -> "StreamingStats":
        """Rebuild an accumulator from its :meth:`to_wire` form."""
        count = int(doc.get("count", 0))
        if count == 0:
            return cls()
        return cls(
            count=count,
            mean=float(doc.get("mean", 0.0)),
            _m2=float(doc.get("m2", 0.0)),
            minimum=float(doc["min"]) if doc.get("min") is not None else math.inf,
            maximum=float(doc["max"]) if doc.get("max") is not None else -math.inf,
        )

    def describe(self) -> str:
        """Compact single-line rendering (mirrors ``SummaryStatistics``)."""
        if self.count == 0:
            return "n=0"
        return (
            f"n={self.count} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} max={self.maximum:.4g}"
        )


def percentile(sorted_values: "list[float] | tuple[float, ...]", fraction: float) -> float:
    """Linear-interpolation percentile of a pre-sorted sequence.

    Deterministic (pure arithmetic on the inputs, no RNG, no platform
    dependence), which is what lets Monte-Carlo envelopes be bit-identical
    across serial, pooled and served execution.
    """
    if not sorted_values:
        raise ValueError("percentile of an empty sequence")
    if not (0.0 <= fraction <= 1.0):
        raise ValueError(f"percentile fraction must lie in [0, 1], got {fraction!r}")
    last = len(sorted_values) - 1
    rank = fraction * last
    low = math.floor(rank)
    high = min(low + 1, last)
    weight = rank - low
    return sorted_values[low] + (sorted_values[high] - sorted_values[low]) * weight


def summarize_trials(values: Iterable[float]) -> dict[str, Any]:
    """Statistical envelope of a fixed-order trial sequence.

    Folds the observations through merged single-observation
    :class:`StreamingStats` accumulators -- the same mergeable path the
    distributed folds use -- and adds deterministic percentiles and a
    normal-approximation 95% confidence halfwidth.  The fold order is the
    caller's trial order, so the result is bitwise reproducible for a
    given seeded trial sequence.
    """
    observed = [float(value) for value in values]
    stats = StreamingStats()
    for value in observed:
        single = StreamingStats()
        single.push(value)
        stats.merge(single)
    envelope: dict[str, Any] = stats.to_dict()
    if not observed:
        envelope.update({"mean": None, "p50": None, "p90": None, "p99": None})
        envelope.update({"ci95_low": None, "ci95_high": None, "ci95_halfwidth": 0.0})
        return envelope
    ordered = sorted(observed)
    envelope["p50"] = percentile(ordered, 0.50)
    envelope["p90"] = percentile(ordered, 0.90)
    envelope["p99"] = percentile(ordered, 0.99)
    halfwidth = 0.0
    if stats.count >= 2:
        halfwidth = 1.96 * stats.std / math.sqrt(stats.count)
    envelope["ci95_halfwidth"] = halfwidth
    envelope["ci95_low"] = stats.mean - halfwidth
    envelope["ci95_high"] = stats.mean + halfwidth
    return envelope


@dataclass
class GroupAggregate:
    """Folded view of one ``(kind, backend)`` envelope group."""

    kind: str
    backend: str
    count: int = 0
    solved: int = 0
    unsolved: int = 0
    bound_only: int = 0
    infeasible: int = 0
    measured_time: StreamingStats = field(default_factory=StreamingStats)
    bound_ratio: StreamingStats = field(default_factory=StreamingStats)

    def push(self, envelope: Mapping[str, Any]) -> None:
        """Fold one wire-format envelope in."""
        self.count += 1
        solved = envelope.get("solved")
        if solved is True:
            self.solved += 1
        elif solved is False:
            self.unsolved += 1
        else:
            self.bound_only += 1
        if envelope.get("feasible") is False:
            self.infeasible += 1
        measured = envelope.get("measured_time")
        if isinstance(measured, (int, float)):
            self.measured_time.push(float(measured))
        ratio = envelope.get("bound_ratio")
        if isinstance(ratio, (int, float)):
            self.bound_ratio.push(float(ratio))

    def merge(self, other: "GroupAggregate") -> None:
        """Fold another group of the same ``(kind, backend)`` in.

        Counters add and the streaming accumulators combine via Chan's
        formula, so merging per-shard partials is equivalent (to float
        round-off in the moments; counters are exact) to having folded
        one stream.  ``other`` is left untouched.
        """
        self.count += other.count
        self.solved += other.solved
        self.unsolved += other.unsolved
        self.bound_only += other.bound_only
        self.infeasible += other.infeasible
        self.measured_time.merge(other.measured_time)
        self.bound_ratio.merge(other.bound_ratio)

    def to_wire(self) -> dict[str, Any]:
        """Lossless JSON form for shipping a partial aggregate."""
        return {
            "kind": self.kind,
            "backend": self.backend,
            "count": self.count,
            "solved": self.solved,
            "unsolved": self.unsolved,
            "bound_only": self.bound_only,
            "infeasible": self.infeasible,
            "measured_time": self.measured_time.to_wire(),
            "bound_ratio": self.bound_ratio.to_wire(),
        }

    @classmethod
    def from_wire(cls, doc: Mapping[str, Any]) -> "GroupAggregate":
        """Rebuild a group from its :meth:`to_wire` form."""
        return cls(
            kind=str(doc.get("kind", "?")),
            backend=str(doc.get("backend", "?")),
            count=int(doc.get("count", 0)),
            solved=int(doc.get("solved", 0)),
            unsolved=int(doc.get("unsolved", 0)),
            bound_only=int(doc.get("bound_only", 0)),
            infeasible=int(doc.get("infeasible", 0)),
            measured_time=StreamingStats.from_wire(doc.get("measured_time") or {}),
            bound_ratio=StreamingStats.from_wire(doc.get("bound_ratio") or {}),
        )


@dataclass
class EnvelopeAggregate:
    """All groups of a folded envelope stream."""

    groups: dict[tuple[str, str], GroupAggregate] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """Number of envelopes folded in."""
        return sum(group.count for group in self.groups.values())

    def push(self, envelope: Mapping[str, Any]) -> None:
        """Fold one wire-format envelope into its ``(kind, backend)`` group."""
        spec = envelope.get("spec")
        kind = spec.get("kind", "?") if isinstance(spec, Mapping) else "?"
        provenance = envelope.get("provenance")
        backend = (
            provenance.get("backend", "?") if isinstance(provenance, Mapping) else "?"
        )
        key = (str(kind), str(backend))
        group = self.groups.get(key)
        if group is None:
            group = self.groups[key] = GroupAggregate(kind=key[0], backend=key[1])
        group.push(envelope)

    def merge(self, other: "EnvelopeAggregate") -> None:
        """Fold another aggregate in, group by group (``other`` untouched)."""
        for key, group in other.groups.items():
            mine = self.groups.get(key)
            if mine is None:
                mine = self.groups[key] = GroupAggregate(
                    kind=group.kind, backend=group.backend
                )
            mine.merge(group)

    def to_wire(self) -> dict[str, Any]:
        """Lossless JSON form: groups in sorted key order."""
        return {
            "total": self.total,
            "groups": [self.groups[key].to_wire() for key in sorted(self.groups)],
        }

    @classmethod
    def from_wire(cls, doc: Mapping[str, Any]) -> "EnvelopeAggregate":
        """Rebuild an aggregate from its :meth:`to_wire` form."""
        aggregate = cls()
        for entry in doc.get("groups") or []:
            group = GroupAggregate.from_wire(entry)
            aggregate.groups[(group.kind, group.backend)] = group
        return aggregate

    def to_table(self, title: str = "Stored results by kind and backend") -> Table:
        """Render the aggregate as a :class:`~repro.analysis.tables.Table`."""
        table = Table(
            columns=[
                "kind",
                "backend",
                "results",
                "solved",
                "unsolved",
                "bound only",
                "infeasible",
                "mean time",
                "max time",
                "mean ratio",
                "max ratio",
            ],
            title=title,
        )
        for key in sorted(self.groups):
            group = self.groups[key]
            measured = group.measured_time
            ratio = group.bound_ratio
            table.add_row(
                [
                    group.kind,
                    group.backend,
                    group.count,
                    group.solved,
                    group.unsolved,
                    group.bound_only,
                    group.infeasible,
                    measured.mean if measured.count else "",
                    measured.maximum if measured.count else "",
                    ratio.mean if ratio.count else "",
                    ratio.maximum if ratio.count else "",
                ]
            )
        return table


def fold_envelopes(
    envelopes: Iterable[Mapping[str, Any]],
    aggregate: Optional[EnvelopeAggregate] = None,
) -> EnvelopeAggregate:
    """Fold an envelope stream into per-group aggregates, one at a time.

    Accepts any iterable of wire-format envelopes (e.g. ``envelope for
    _, envelope in store.scan()``) and never holds more than one live.
    Passing an existing ``aggregate`` continues a previous fold, so
    several stores can be summarised into one view.
    """
    if aggregate is None:
        aggregate = EnvelopeAggregate()
    for envelope in envelopes:
        aggregate.push(envelope)
    return aggregate
