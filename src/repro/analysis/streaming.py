"""Streaming aggregation of stored result envelopes.

The persistent :class:`~repro.api.store.ResultStore` can hold far more
envelopes than it is sensible to materialise as :class:`SolveResult`
objects at once.  This module folds envelopes -- in their JSON wire form,
one at a time -- into compact per-``(kind, backend)`` aggregates using
Welford's online algorithm, so summarising a million-record store costs
one pass and constant memory:

    from repro.api import ResultStore
    from repro.analysis import fold_envelopes

    store = ResultStore(".repro-store")
    aggregate = fold_envelopes(envelope for _, envelope in store.scan())
    print(aggregate.to_table().to_text())
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional

from .tables import Table

__all__ = ["StreamingStats", "GroupAggregate", "EnvelopeAggregate", "fold_envelopes"]


@dataclass
class StreamingStats:
    """Single-pass (Welford) mean/variance/extrema accumulator."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def push(self, value: float) -> None:
        """Fold one observation in (constant memory)."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def merge(self, other: "StreamingStats") -> None:
        """Fold another accumulator in (Chan's parallel combination)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def std(self) -> float:
        """Population standard deviation (0 for fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return math.sqrt(self._m2 / self.count)

    def describe(self) -> str:
        """Compact single-line rendering (mirrors ``SummaryStatistics``)."""
        if self.count == 0:
            return "n=0"
        return (
            f"n={self.count} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} max={self.maximum:.4g}"
        )


@dataclass
class GroupAggregate:
    """Folded view of one ``(kind, backend)`` envelope group."""

    kind: str
    backend: str
    count: int = 0
    solved: int = 0
    unsolved: int = 0
    bound_only: int = 0
    infeasible: int = 0
    measured_time: StreamingStats = field(default_factory=StreamingStats)
    bound_ratio: StreamingStats = field(default_factory=StreamingStats)

    def push(self, envelope: Mapping[str, Any]) -> None:
        """Fold one wire-format envelope in."""
        self.count += 1
        solved = envelope.get("solved")
        if solved is True:
            self.solved += 1
        elif solved is False:
            self.unsolved += 1
        else:
            self.bound_only += 1
        if envelope.get("feasible") is False:
            self.infeasible += 1
        measured = envelope.get("measured_time")
        if isinstance(measured, (int, float)):
            self.measured_time.push(float(measured))
        ratio = envelope.get("bound_ratio")
        if isinstance(ratio, (int, float)):
            self.bound_ratio.push(float(ratio))


@dataclass
class EnvelopeAggregate:
    """All groups of a folded envelope stream."""

    groups: dict[tuple[str, str], GroupAggregate] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """Number of envelopes folded in."""
        return sum(group.count for group in self.groups.values())

    def push(self, envelope: Mapping[str, Any]) -> None:
        """Fold one wire-format envelope into its ``(kind, backend)`` group."""
        spec = envelope.get("spec")
        kind = spec.get("kind", "?") if isinstance(spec, Mapping) else "?"
        provenance = envelope.get("provenance")
        backend = (
            provenance.get("backend", "?") if isinstance(provenance, Mapping) else "?"
        )
        key = (str(kind), str(backend))
        group = self.groups.get(key)
        if group is None:
            group = self.groups[key] = GroupAggregate(kind=key[0], backend=key[1])
        group.push(envelope)

    def to_table(self, title: str = "Stored results by kind and backend") -> Table:
        """Render the aggregate as a :class:`~repro.analysis.tables.Table`."""
        table = Table(
            columns=[
                "kind",
                "backend",
                "results",
                "solved",
                "unsolved",
                "bound only",
                "infeasible",
                "mean time",
                "max time",
                "mean ratio",
                "max ratio",
            ],
            title=title,
        )
        for key in sorted(self.groups):
            group = self.groups[key]
            measured = group.measured_time
            ratio = group.bound_ratio
            table.add_row(
                [
                    group.kind,
                    group.backend,
                    group.count,
                    group.solved,
                    group.unsolved,
                    group.bound_only,
                    group.infeasible,
                    measured.mean if measured.count else "",
                    measured.maximum if measured.count else "",
                    ratio.mean if ratio.count else "",
                    ratio.maximum if ratio.count else "",
                ]
            )
        return table


def fold_envelopes(
    envelopes: Iterable[Mapping[str, Any]],
    aggregate: Optional[EnvelopeAggregate] = None,
) -> EnvelopeAggregate:
    """Fold an envelope stream into per-group aggregates, one at a time.

    Accepts any iterable of wire-format envelopes (e.g. ``envelope for
    _, envelope in store.scan()``) and never holds more than one live.
    Passing an existing ``aggregate`` continues a previous fold, so
    several stores can be summarised into one view.
    """
    if aggregate is None:
        aggregate = EnvelopeAggregate()
    for envelope in envelopes:
        aggregate.push(envelope)
    return aggregate
