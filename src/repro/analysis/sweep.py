"""Parameter sweeps.

Experiments are mostly Cartesian sweeps over a handful of parameters
(distance, visibility, speed, orientation, clock ratio).  ``ParameterSweep``
builds the grid, labels each point and iterates deterministically, which
keeps the experiment modules small and the benchmarks reproducible.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from ..errors import InvalidParameterError

__all__ = ["ParameterSweep", "geometric_grid", "linear_grid"]


def linear_grid(start: float, stop: float, count: int) -> list[float]:
    """``count`` evenly spaced values from ``start`` to ``stop`` inclusive."""
    if count < 1:
        raise InvalidParameterError(f"count must be positive, got {count!r}")
    if count == 1:
        return [start]
    step = (stop - start) / (count - 1)
    return [start + step * index for index in range(count)]


def geometric_grid(start: float, stop: float, count: int) -> list[float]:
    """``count`` geometrically spaced values from ``start`` to ``stop`` inclusive."""
    if count < 1:
        raise InvalidParameterError(f"count must be positive, got {count!r}")
    if start <= 0.0 or stop <= 0.0:
        raise InvalidParameterError("geometric grids need positive endpoints")
    if count == 1:
        return [start]
    ratio = (stop / start) ** (1.0 / (count - 1))
    return [start * ratio**index for index in range(count)]


@dataclass
class ParameterSweep:
    """A Cartesian product of named parameter axes."""

    axes: Mapping[str, Sequence[object]]
    fixed: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.axes:
            raise InvalidParameterError("a sweep needs at least one axis")
        for name, values in self.axes.items():
            if not list(values):
                raise InvalidParameterError(f"axis {name!r} has no values")

    @property
    def size(self) -> int:
        """Number of points in the sweep."""
        total = 1
        for values in self.axes.values():
            total *= len(list(values))
        return total

    def points(self) -> Iterator[dict[str, object]]:
        """Iterate all points as dictionaries (axes merged with fixed values)."""
        names = list(self.axes)
        value_lists = [list(self.axes[name]) for name in names]
        for combination in itertools.product(*value_lists):
            point = dict(self.fixed)
            point.update(dict(zip(names, combination)))
            yield point

    def __iter__(self) -> Iterator[dict[str, object]]:
        return self.points()

    def __len__(self) -> int:
        return self.size

    def describe(self) -> str:
        """Compact description of the sweep extent."""
        axes_text = ", ".join(f"{name}({len(list(values))})" for name, values in self.axes.items())
        return f"sweep over {axes_text}: {self.size} points"
