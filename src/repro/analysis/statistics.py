"""Summary statistics over experiment measurements.

A thin layer over numpy restricted to what the experiments actually
report: central tendency, spread, extremes, and regression of measured
times against the paper's predicted scaling shapes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import InvalidParameterError

__all__ = ["SummaryStatistics", "summarize", "log_log_slope", "scaling_fit"]


@dataclass(frozen=True, slots=True)
class SummaryStatistics:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def describe(self) -> str:
        """Compact single-line rendering."""
        return (
            f"n={self.count} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} median={self.median:.4g} max={self.maximum:.4g}"
        )


def summarize(values: Sequence[float]) -> SummaryStatistics:
    """Summary statistics of a non-empty sample."""
    if not values:
        raise InvalidParameterError("cannot summarise an empty sample")
    array = np.asarray(values, dtype=float)
    return SummaryStatistics(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=0)),
        minimum=float(array.min()),
        median=float(np.median(array)),
        maximum=float(array.max()),
    )


def log_log_slope(x_values: Sequence[float], y_values: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    Used to verify scaling shapes, e.g. that the measured search time grows
    roughly like ``(d^2/r)^1`` (slope close to 1 in log-log space once the
    logarithmic factor is divided out).
    """
    if len(x_values) != len(y_values):
        raise InvalidParameterError("x and y must have the same length")
    if len(x_values) < 2:
        raise InvalidParameterError("need at least two points for a slope")
    x = np.log(np.asarray(x_values, dtype=float))
    y = np.log(np.asarray(y_values, dtype=float))
    if np.any(~np.isfinite(x)) or np.any(~np.isfinite(y)):
        raise InvalidParameterError("all values must be positive and finite")
    slope, _intercept = np.polyfit(x, y, 1)
    return float(slope)


def scaling_fit(
    difficulties: Sequence[float], times: Sequence[float]
) -> tuple[float, float]:
    """Fit ``time ~ c * log2(x) * x`` and report ``(c, relative_rms_error)``.

    This is the paper's predicted shape for the universal search time as a
    function of the difficulty ``x = d^2/r``.  A small relative error means
    the measured times follow the predicted shape; the constant ``c`` can
    then be compared against the proof's ``6(pi+1)`` worst case.
    """
    if len(difficulties) != len(times):
        raise InvalidParameterError("difficulties and times must have the same length")
    if len(difficulties) < 2:
        raise InvalidParameterError("need at least two points for a fit")
    x = np.asarray(difficulties, dtype=float)
    y = np.asarray(times, dtype=float)
    if np.any(x <= 1.0):
        raise InvalidParameterError("the shape fit needs difficulties above 1")
    basis = np.log2(x) * x
    constant = float(np.sum(basis * y) / np.sum(basis * basis))
    predictions = constant * basis
    relative_rms = float(np.sqrt(np.mean(((y - predictions) / y) ** 2)))
    return constant, relative_rms


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used for speed-up summaries)."""
    if not values:
        raise InvalidParameterError("cannot take the geometric mean of an empty sample")
    array = np.asarray(values, dtype=float)
    if np.any(array <= 0.0):
        raise InvalidParameterError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(array))))


__all__.append("geometric_mean")
