"""Numeric constants shared across the library.

The values mirror the constants appearing in the paper's algorithms and
analysis (Algorithms 1-7 and Lemmas 2, 8), plus the numerical tolerances
used by the continuous-time simulator.
"""

from __future__ import annotations

import math

#: 2(pi + 1) -- the time needed by ``SearchCircle(delta)`` per unit radius
#: (Lemma 2): move out (delta), trace the circle (2*pi*delta), move back
#: (delta) gives 2(pi + 1) * delta.
SEARCH_CIRCLE_FACTOR: float = 2.0 * (math.pi + 1.0)

#: 3(pi + 1) -- the constant in the duration of one round of ``Search(k)``
#: and in the terminal wait of Algorithm 3 (Lemma 2).
SEARCH_ROUND_FACTOR: float = 3.0 * (math.pi + 1.0)

#: 6(pi + 1) -- the constant of the Theorem 1 search bound.
THEOREM1_FACTOR: float = 6.0 * (math.pi + 1.0)

#: 12(pi + 1) -- constant of S(n), the duration of ``SearchAll(n)``
#: (equation (1) in the paper): S(n) = 12(pi+1) * n * 2^n.
SEARCH_ALL_FACTOR: float = 12.0 * (math.pi + 1.0)

#: 24(pi + 1) -- constant of the phase start times I(n) and A(n) (Lemma 8).
PHASE_FACTOR: float = 24.0 * (math.pi + 1.0)

#: Default absolute tolerance on distances (used when comparing gap values
#: against the visibility radius and when checking geometric invariants).
DISTANCE_TOLERANCE: float = 1e-9

#: Default absolute tolerance on times reported by the event detector.
TIME_TOLERANCE: float = 1e-9

#: Default relative tolerance used by closed-form formula comparisons.
FORMULA_RTOL: float = 1e-9

#: Number of segments used when a circle must be approximated by sampling
#: (visualisation only -- the simulator always uses exact arcs).
CIRCLE_SAMPLES: int = 256

#: Machine-level guard against degenerate zero-length constructions.
EPSILON: float = 1e-12
