"""Checked-in baseline of accepted findings.

The baseline is a committed JSON file mapping finding keys (stable
content hashes of ``rule + path + message`` -- deliberately **not**
line numbers, so unrelated edits above a finding don't churn the file)
to occurrence counts.  ``repro lint --strict`` fails only on findings
*not* in the baseline, which lets a rule land before the last legacy
occurrence is fixed without losing the gate on regressions.

Format (version 1)::

    {
      "version": 1,
      "entries": {
        "<16-hex key>": {"rule": "R001", "path": "...", "message": "...", "count": 1},
        ...
      }
    }

``rule``/``path``/``message`` are denormalised into each entry purely
for human review of the committed file; only the key and count are
consulted when matching.  A finding occurring N times on one
path+message (e.g. the same call repeated) baselines all N only when
``count >= N``; extra occurrences beyond the recorded count are new.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List

from .findings import Finding

__all__ = ["Baseline", "BASELINE_VERSION"]

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """Accepted-finding keys with occurrence counts."""

    counts: Counter = field(default_factory=Counter)
    meta: dict = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        version = data.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path} "
                f"(expected {BASELINE_VERSION})"
            )
        counts: Counter = Counter()
        meta: dict = {}
        for key, entry in data.get("entries", {}).items():
            counts[key] = int(entry.get("count", 1))
            meta[key] = {
                "rule": entry.get("rule", ""),
                "path": entry.get("path", ""),
                "message": entry.get("message", ""),
            }
        return cls(counts=counts, meta=meta)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            baseline.counts[finding.key] += 1
            baseline.meta.setdefault(
                finding.key,
                {
                    "rule": finding.rule,
                    "path": finding.path,
                    "message": finding.message,
                },
            )
        return baseline

    def save(self, path: Path) -> None:
        entries = {}
        for key in sorted(self.counts):
            info = self.meta.get(key, {})
            entries[key] = {
                "rule": info.get("rule", ""),
                "path": info.get("path", ""),
                "message": info.get("message", ""),
                "count": self.counts[key],
            }
        payload = {"version": BASELINE_VERSION, "entries": entries}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n",
            encoding="utf-8",
        )

    def partition(self, findings: Iterable[Finding]) -> tuple[List[Finding], List[Finding]]:
        """Split findings into (new, baselined).

        Occurrences of one key beyond its recorded count are *new* --
        a second copy of a baselined bug is still a regression.
        Baselined findings come back marked ``baselined=True``.
        """
        import dataclasses

        budget = Counter(self.counts)
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            if budget[finding.key] > 0:
                budget[finding.key] -= 1
                baselined.append(dataclasses.replace(finding, baselined=True))
            else:
                new.append(finding)
        return new, baselined

    def __len__(self) -> int:
        return sum(self.counts.values())
