"""The pluggable rule architecture of ``repro lint``.

A rule is a class with an ``id``, a one-line ``title``, a default fix
``hint`` and a ``check(project)`` generator yielding
:class:`~repro.lint.findings.Finding` objects for the whole project.
Rules see the entire :class:`~repro.lint.analyzer.Project` -- the
import graph, the tainted set, every module's AST -- so cross-module
contracts (the wire schema) are first-class, not bolted on.

Registering is one decorator::

    @register_rule
    class MyRule(Rule):
        id = "R042"
        ...

The runner instantiates every registered rule, runs them in id order
and applies inline/file suppressions afterwards, so a rule never needs
suppression logic of its own.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Type

from .analyzer import ModuleInfo, Project
from .findings import Finding

__all__ = ["RULES", "Rule", "register_rule", "all_rules", "enclosing_functions"]


class Rule:
    """Base class: subclass, set the metadata, implement :meth:`check`."""

    id: str = "R000"
    title: str = ""
    hint: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleInfo,
        node: ast.AST,
        message: str,
        hint: Optional[str] = None,
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=module.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=self.hint if hint is None else hint,
        )


#: id -> rule class, in registration order.
RULES: dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls
    return cls


def all_rules() -> list[Rule]:
    """One instance of every registered rule, in id order."""
    # Import the rule modules lazily so the registry is populated on
    # first use without import cycles.
    from . import determinism, locking, serialization, wire  # noqa: F401

    return [RULES[rule_id]() for rule_id in sorted(RULES)]


def enclosing_functions(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    """Map every node to its nearest enclosing function def (or None).

    Shared by the rules that care whether code runs inside
    ``__init__``/``__post_init__`` (R002's construction exemption,
    R005's frozen-mutation window).
    """
    parents: dict[ast.AST, ast.AST] = {}

    def visit(node: ast.AST, function: Optional[ast.AST]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                parents[child] = function  # the *outer* function of a nested def
                visit(child, child)
            else:
                if function is not None:
                    parents[child] = function
                visit(child, function)

    visit(tree, None)
    return parents
