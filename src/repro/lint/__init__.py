"""``repro lint`` -- AST-based invariant checking for the repro tree.

The repo's three load-bearing contracts are dynamic-test-expensive and
cheap to break silently:

* **determinism** -- fingerprints must be bit-identical across the
  serial, pooled, batched, served and clustered tiers, so nothing on a
  fingerprint-feeding path may consult a clock, an unseeded RNG, the
  process identity or set iteration order;
* **lock discipline** -- shared mutable state published to other
  threads must only be written under the lock that readers take (the
  PR-4 kernel compiled-chunk cache shipped without this and returned
  corrupted trajectories under concurrency);
* **wire schema** -- four transports (threaded daemon, asyncio daemon,
  threaded router, async cluster front) speak one verb table and one
  response shape per verb, and the binary tag codec must stay
  symmetric (the PR-3 ``inf``-in-JSON bug was this class: one encoder
  silently emitting non-RFC output).

This package encodes those contracts once as static rules and checks
every change against them mechanically:

========  ====================================================
 R001     nondeterminism inside the fingerprint-tainted set
 R002     unlocked writes to lock-guarded attributes
 R003     wire-schema drift between transports / codec asymmetry
 R004     ``json.dumps`` without ``allow_nan=False``
 R005     frozen-dataclass mutation outside ``__post_init__``
========  ====================================================

Entry points: the CLI (``repro lint [--json] [--strict] [paths ...]``),
:func:`run_lint` for programmatic use, and the rule registry
:data:`~repro.lint.rules.RULES` for extension.  Findings are
suppressed inline with ``# repro-lint: disable=RXXX`` on (or directly
above) the offending line, or absorbed into a checked-in baseline file
so adoption is incremental; ``--strict`` fails on any non-baselined
finding.
"""

from __future__ import annotations

from .analyzer import LintConfig, ModuleInfo, Project
from .baseline import Baseline
from .findings import Finding
from .rules import RULES, Rule
from .runner import LintReport, run_lint

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintReport",
    "ModuleInfo",
    "Project",
    "RULES",
    "Rule",
    "run_lint",
]
