"""R004 (JSON cleanliness) and R005 (frozen-spec mutation).

**R004** -- the PR-3 bug class.  Python's ``json.dumps`` happily emits
``Infinity``/``NaN`` tokens, which are not JSON: the store, the wire
and every ``--json`` consumer downstream then chokes (or worse,
silently round-trips a value the analytic formulas amplified into
``inf``).  ``allow_nan=False`` turns that silent corruption into an
immediate ``ValueError`` at the serialisation boundary -- the contract
every ``json.dumps`` on a float-carrying payload must opt into.  A
payload that provably carries no floats (a literal of strings, ints,
bools and Nones all the way down) is exempt; ``allow_nan=True`` is
flagged as an explicit opt-*out* of RFC-clean JSON.

**R005** -- the frozen dataclasses (specs, results, fault models) are
frozen *because* their canonical hashes are computed once; mutation
after construction silently desynchronises an object from its hash.
``object.__setattr__`` is the only way around ``frozen=True`` and is
legitimate exactly once: inside ``__init__`` / ``__post_init__`` /
``__setstate__`` of the owning class, coercing fields during
construction.  Every call anywhere else is a finding.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .analyzer import ModuleInfo, Project
from .findings import Finding
from .rules import Rule, register_rule

__all__ = ["FrozenMutationRule", "JsonCleanlinessRule"]

_SAFE_CONSTANTS = (str, int, bool, type(None))

#: Functions whose call opens a construction window for R005.
_CONSTRUCTION_FUNCTIONS = frozenset(
    {"__init__", "__post_init__", "__new__", "__setstate__"}
)


def _literal_is_float_free(node: ast.AST) -> bool:
    """True when a payload expression provably carries no floats.

    Conservative: anything dynamic (a name, a call, a comprehension, an
    f-string) might carry a float, so only literals of safe constants
    qualify.  ``True``/``False`` are ints in Python but JSON-safe.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, _SAFE_CONSTANTS) and not isinstance(
            node.value, float
        )
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        return all(_literal_is_float_free(item) for item in node.elts)
    if isinstance(node, ast.Dict):
        return all(
            key is not None and _literal_is_float_free(key)
            for key in node.keys
        ) and all(_literal_is_float_free(value) for value in node.values)
    return False


@register_rule
class JsonCleanlinessRule(Rule):
    id = "R004"
    title = "json.dumps without allow_nan=False on a float-carrying payload"
    hint = "pass allow_nan=False so non-finite floats fail loudly instead of emitting non-RFC JSON"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.iter_modules():
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                dotted = module.resolve_call(node.func)
                if dotted not in ("json.dumps", "json.dump"):
                    continue
                allow_nan: Optional[ast.expr] = None
                for keyword in node.keywords:
                    if keyword.arg == "allow_nan":
                        allow_nan = keyword.value
                if allow_nan is not None:
                    if isinstance(allow_nan, ast.Constant) and allow_nan.value is False:
                        continue
                    yield self.finding(
                        module,
                        node,
                        f"{dotted}(..., allow_nan=True) explicitly opts into "
                        "non-RFC Infinity/NaN tokens",
                        hint="use allow_nan=False; encode non-finite values as null upstream",
                    )
                    continue
                if node.args and _literal_is_float_free(node.args[0]):
                    continue  # provably float-free payload
                yield self.finding(
                    module,
                    node,
                    f"{dotted}() without allow_nan=False can emit non-RFC "
                    "Infinity/NaN tokens (the PR-3 inf-in-JSON bug class)",
                )


@register_rule
class FrozenMutationRule(Rule):
    id = "R005"
    title = "frozen-dataclass mutation outside construction"
    hint = "use dataclasses.replace(...) to build a new frozen instance"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.iter_modules():
            yield from self._check_module(module)

    def _check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        # nearest enclosing function name for every call node
        stack: list[str] = []

        def visit(node: ast.AST) -> Iterator[Finding]:
            is_function = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            if is_function:
                stack.append(node.name)
            try:
                if isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr == "__setattr__"
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "object"
                    ):
                        enclosing = stack[-1] if stack else "<module>"
                        if enclosing not in _CONSTRUCTION_FUNCTIONS:
                            yield self.finding(
                                module,
                                node,
                                "object.__setattr__ outside __init__/"
                                "__post_init__ mutates a frozen dataclass "
                                f"after construction (in {enclosing}())",
                            )
                for child in ast.iter_child_nodes(node):
                    yield from visit(child)
            finally:
                if is_function:
                    stack.pop()

        yield from visit(module.tree)
