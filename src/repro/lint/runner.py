"""Run every rule over a parsed project and report the verdict.

``run_lint`` is the single entry point behind ``repro lint``, the CI
gate and the test-suite self-check.  The pipeline is deliberately
boring: parse, run rules in id order, drop inline-suppressed findings,
split the rest against the baseline, sort.  Exit semantics live in
:meth:`LintReport.exit_code` so the CLI and ``benchmarks/lint_smoke.py``
cannot drift from each other.

The ``--json`` schema (consumed by ``benchmarks/lint_smoke.py``; keep
in sync with README) is::

    {
      "version": 1,
      "strict": bool,
      "counts": {"R001": n, ...},       # new findings per rule
      "total": int,                     # new + baselined
      "new": int,
      "baselined": int,
      "suppressed": int,                # dropped by inline comments
      "findings": [Finding.to_dict()...]  # new first, then baselined
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from .analyzer import LintConfig, Project
from .baseline import Baseline
from .findings import Finding
from .rules import all_rules

__all__ = ["LintReport", "run_lint", "REPORT_VERSION"]

REPORT_VERSION = 1


@dataclass
class LintReport:
    """Everything one lint run produced, pre-partitioned."""

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0

    @property
    def findings(self) -> List[Finding]:
        return self.new + self.baselined

    @property
    def counts(self) -> dict:
        counts: dict = {}
        for finding in self.new:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def exit_code(self, strict: bool = False) -> int:
        """0 when clean; 1 when strict and any non-baselined finding."""
        if strict and self.new:
            return 1
        return 0

    def to_dict(self, strict: bool = False) -> dict:
        return {
            "version": REPORT_VERSION,
            "strict": strict,
            "counts": self.counts,
            "total": len(self.new) + len(self.baselined),
            "new": len(self.new),
            "baselined": len(self.baselined),
            "suppressed": self.suppressed,
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def to_json(self, strict: bool = False) -> str:
        return json.dumps(
            self.to_dict(strict=strict),
            indent=2,
            sort_keys=True,
            allow_nan=False,
        )

    def render_text(self, strict: bool = False) -> str:
        lines = [finding.render() for finding in self.findings]
        summary = (
            f"repro lint: {len(self.new)} new, {len(self.baselined)} baselined, "
            f"{self.suppressed} suppressed"
        )
        if strict and self.new:
            summary += " -- FAIL (strict)"
        lines.append(summary)
        return "\n".join(lines)


def _normalize_filters(
    package_root: Path, paths: Optional[Sequence[str]]
) -> Optional[List[str]]:
    """Turn CLI path arguments into ``repro/...``-relative prefixes."""
    if not paths:
        return None
    prefixes: List[str] = []
    anchor = package_root.parent  # .../src
    for raw in paths:
        candidate = Path(raw)
        if candidate.is_absolute():
            try:
                rel = candidate.relative_to(anchor)
            except ValueError:
                rel = candidate
        else:
            # accept "src/repro/api", "repro/api" and "api" alike
            parts = candidate.parts
            if parts[:2] == ("src", package_root.name):
                rel = Path(*parts[1:])
            elif parts[:1] == (package_root.name,):
                rel = candidate
            else:
                rel = Path(package_root.name, *parts)
        prefixes.append(rel.as_posix().rstrip("/"))
    return prefixes


def _matches(finding: Finding, prefixes: Optional[List[str]]) -> bool:
    if prefixes is None:
        return True
    return any(
        finding.path == prefix or finding.path.startswith(prefix + "/")
        for prefix in prefixes
    )


def run_lint(
    package_root: Path,
    *,
    config: Optional[LintConfig] = None,
    paths: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint ``package_root`` (a package directory, e.g. ``src/repro``).

    ``paths`` restricts *reported* findings to the given files or
    directories; the whole package is still parsed so cross-module
    rules (taint reachability, the wire schema) see everything.
    """
    project = Project(Path(package_root), config=config)
    prefixes = _normalize_filters(Path(package_root), paths)
    kept: List[Finding] = []
    suppressed = 0
    for rule in all_rules():
        for finding in rule.check(project):
            module = project.module_for_path(finding.path)
            if module is not None and module.is_suppressed(finding.rule, finding.line):
                suppressed += 1
                continue
            if not _matches(finding, prefixes):
                continue
            kept.append(finding)
    kept.sort(key=lambda finding: finding.sort_key())
    if baseline is None:
        baseline = Baseline()
    new, baselined = baseline.partition(kept)
    return LintReport(new=new, baselined=baselined, suppressed=suppressed)
