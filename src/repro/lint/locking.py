"""R002 -- lock discipline on classes that own a lock.

The PR-4 bug class: the vectorized kernel's shared compiled-chunk
cache owned a lock, took it on some paths, and mutated
``_CacheEntry.chunks`` plus the cache mapping on others -- concurrent
solves of the same algorithm read corrupted trajectories.  The
invariant this rule enforces is the one that bug violated:

    In any class owning a ``threading.Lock`` / ``RLock`` /
    ``Condition`` attribute, an attribute that is **written under**
    ``with self._lock:`` anywhere must never be written outside it.

"Written" covers plain/augmented attribute assignment
(``self.x = ...``, ``self.n += 1``), item assignment and deletion on
an attribute (``self.cache[key] = ...``, ``del self.cache[key]``) and
the common container mutators (``self.items.append(...)``,
``.update``, ``.pop``, ...).  Construction is exempt: writes inside
``__init__`` / ``__post_init__`` / ``__new__`` happen before the
object is published to other threads.  A class that never takes its
lock around a given attribute is not flagged for that attribute --
loop-confined asyncio state legitimately owns no lock, and this rule
must not force one on it.

Helper methods that are only ever *called with the lock held* are the
known static blind spot: suppress them inline with a justification
(``# repro-lint: disable=R002 -- caller holds self._lock``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .analyzer import ModuleInfo, Project
from .findings import Finding
from .rules import Rule, register_rule

__all__ = ["LockDisciplineRule"]

#: Constructors whose attribute assignment makes a class lock-owning.
LOCK_CONSTRUCTORS: frozenset[str] = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
    }
)

#: Method names treated as mutations of the receiver container.
#: Deliberately excludes ``set``/``clear`` (threading.Event methods)
#: -- an Event is itself a synchronisation primitive.
MUTATING_METHODS: frozenset[str] = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "discard",
        "remove",
        "pop",
        "popitem",
        "setdefault",
        "update",
        "move_to_end",
    }
)

#: Methods where unlocked writes are construction/teardown, not racing.
EXEMPT_METHODS: frozenset[str] = frozenset(
    {"__init__", "__post_init__", "__new__", "__del__", "__setstate__", "__exit__"}
)


@dataclass
class _AttrWrites:
    """Where one ``self.<attr>`` is written inside one class."""

    locked: list[ast.AST] = field(default_factory=list)
    unlocked: list[tuple[ast.AST, str]] = field(default_factory=list)  # (node, method)


def _self_attr_of_write(node: ast.AST) -> Optional[str]:
    """The attribute name if ``node`` writes ``self.<attr>`` somehow."""
    targets: list[ast.AST] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target] if node.target is not None else []
    elif isinstance(node, ast.Delete):
        targets = list(node.targets)
    elif isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATING_METHODS
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
        ):
            return func.value.attr
        return None
    else:
        return None
    for target in targets:
        # self.attr = ... / self.attr += ...
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return target.attr
        # self.attr[key] = ... / del self.attr[key]
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Attribute)
            and isinstance(target.value.value, ast.Name)
            and target.value.value.id == "self"
        ):
            return target.value.attr
    return None


def _lock_attrs_of_class(cls: ast.ClassDef, module: ModuleInfo) -> set[str]:
    locks: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        dotted = module.resolve_call(node.value.func)
        if dotted not in LOCK_CONSTRUCTORS:
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                locks.add(target.attr)
    return locks


def _with_holds_lock(node: ast.AST, lock_attrs: set[str]) -> bool:
    for item in node.items:
        expr = item.context_expr
        # ``with self._lock:`` or ``with self._lock.acquire_timeout(...):``
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in lock_attrs
        ):
            return True
    return False


@register_rule
class LockDisciplineRule(Rule):
    id = "R002"
    title = "unlocked write to a lock-guarded attribute"
    hint = "move the write under the owning `with self.<lock>:` block"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.iter_modules():
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(module, node)

    def _check_class(self, module: ModuleInfo, cls: ast.ClassDef) -> Iterator[Finding]:
        lock_attrs = _lock_attrs_of_class(cls, module)
        if not lock_attrs:
            return
        writes: dict[str, _AttrWrites] = {}
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            self._visit(method, lock_attrs, writes, under_lock=False, method_name="")
        for attr, record in sorted(writes.items()):
            if attr in lock_attrs:
                continue
            if not record.locked:
                continue  # never guarded anywhere: not this rule's business
            for node, method_name in record.unlocked:
                if method_name in EXEMPT_METHODS:
                    continue
                yield self.finding(
                    module,
                    node,
                    f"self.{attr} is written under a lock elsewhere in "
                    f"{cls.name} but written without it in {method_name}()",
                )

    def _visit(
        self,
        node: ast.AST,
        lock_attrs: set[str],
        writes: dict[str, _AttrWrites],
        under_lock: bool,
        method_name: str,
    ) -> None:
        """Record every ``self.<attr>`` write in ``node`` with its lock state."""
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A (nested) def runs later, not under the caller's lock.
            for stmt in node.body:
                self._visit(stmt, lock_attrs, writes, False, node.name)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inside = under_lock or _with_holds_lock(node, lock_attrs)
            for item in node.items:
                self._visit(item.context_expr, lock_attrs, writes, under_lock, method_name)
            for stmt in node.body:
                self._visit(stmt, lock_attrs, writes, inside, method_name)
            return
        attr = _self_attr_of_write(node)
        if attr is not None:
            self._record(writes, attr, node, under_lock, method_name)
        for child in ast.iter_child_nodes(node):
            self._visit(child, lock_attrs, writes, under_lock, method_name)

    @staticmethod
    def _record(
        writes: dict[str, _AttrWrites],
        attr: str,
        node: ast.AST,
        under_lock: bool,
        method_name: str,
    ) -> None:
        record = writes.setdefault(attr, _AttrWrites())
        if under_lock:
            record.locked.append(node)
        else:
            record.unlocked.append((node, method_name))
