"""R003 -- wire-schema drift between the serving transports.

Four transports answer the same verbs: the threaded daemon, the
asyncio daemon, the threaded shard router and the async cluster front
(plus the client consuming the stream records).  The schema they must
agree on is extracted mechanically -- nothing here is a hardcoded list
of today's verbs:

* the **verb table**: every module-level ``*_OP = "literal"`` constant
  in the protocol module (plus ``HELLO_OP`` from the frames module and
  the literal core verbs ``handle_request`` compares), is the single
  declaration point;
* **handled sets**: the verbs each dispatcher function actually
  compares against the request ``op``;
* **response shapes**: for each verb, every ``{"ok": ..., "op": VERB,
  ...}`` dict literal built anywhere in the wire modules, with keys
  added later via ``response["key"] = ...`` in the same function
  counted as optional;
* the **binary tag codec**: the tag bytes ``_encode_into`` emits
  versus the tags ``_decode_from`` and ``_skip_from`` accept.

Findings: a dispatcher handling a verb that is not declared in the
protocol module (verbs must be declared once, next to the wire
documentation), a declared verb nothing handles or consumes anywhere
(dead schema), two transports answering the same verb with different
required response keys, and encode/decode/skip tag asymmetry in the
frame codec.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .analyzer import ModuleInfo, Project
from .findings import Finding
from .rules import Rule, register_rule

__all__ = ["WireSchemaRule"]


@dataclass
class _ResponseShape:
    """One ``{"ok": ..., "op": VERB}`` dict literal and its keys."""

    module: ModuleInfo
    node: ast.Dict
    function: str
    required: frozenset[str]
    optional: frozenset[str] = frozenset()


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _collect_op_constants(module: ModuleInfo) -> dict[str, str]:
    """Module-level ``NAME_OP = "verb"`` constants: name -> value."""
    constants: dict[str, str] = {}
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = _const_str(node.value)
            if (
                isinstance(target, ast.Name)
                and target.id.endswith("_OP")
                and value is not None
            ):
                constants[target.id] = value
    return constants


class _VerbResolver:
    """Resolve an expression to a verb string through the constant table."""

    def __init__(self, constants: dict[str, str]) -> None:
        self.constants = constants

    def resolve(self, node: ast.AST) -> Optional[str]:
        literal = _const_str(node)
        if literal is not None:
            return literal
        if isinstance(node, ast.Name):
            return self.constants.get(node.id)
        if isinstance(node, ast.Attribute):  # protocol.SWEEP_OP
            return self.constants.get(node.attr)
        return None


def _compared_verbs(
    function: ast.AST, resolver: _VerbResolver, subject: str = "op"
) -> dict[str, ast.AST]:
    """Verbs compared against the name ``subject`` inside ``function``."""
    verbs: dict[str, ast.AST] = {}
    for node in ast.walk(function):
        if not isinstance(node, ast.Compare):
            continue
        involves_subject = (
            isinstance(node.left, ast.Name) and node.left.id == subject
        ) or any(
            isinstance(cmp, ast.Name) and cmp.id == subject for cmp in node.comparators
        )
        if not involves_subject:
            continue
        candidates: list[ast.AST] = [node.left, *node.comparators]
        for candidate in candidates:
            if isinstance(candidate, (ast.Tuple, ast.List, ast.Set)):
                candidates.extend(candidate.elts)
                continue
            verb = resolver.resolve(candidate)
            if verb is not None:
                verbs.setdefault(verb, node)
    return verbs


def _functions(module: ModuleInfo) -> dict[str, ast.AST]:
    found: dict[str, ast.AST] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            found.setdefault(node.name, node)
    return found


def _response_shapes(
    module: ModuleInfo, resolver: _VerbResolver
) -> dict[str, list[_ResponseShape]]:
    """Every ``{"ok": ..., "op": VERB, ...}`` literal, by verb.

    A dict assigned to a variable collects the keys later added with
    ``var["key"] = ...`` in the same function as *optional* keys; a
    dict built inline (in a ``return``) has none.
    """
    shapes: dict[str, list[_ResponseShape]] = {}
    seen: set[int] = set()
    for function in ast.walk(module.tree):
        if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        # var name -> keys added with ``var["key"] = ...`` in this function
        added: dict[str, set[str]] = {}
        var_of: dict[int, str] = {}
        literals: list[ast.Dict] = []
        for node in ast.walk(function):
            if isinstance(node, ast.Assign):
                if isinstance(node.value, ast.Dict):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            var_of[id(node.value)] = target.id
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        key = _const_str(target.slice)
                        if key is not None:
                            added.setdefault(target.value.id, set()).add(key)
            elif (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.value, ast.Dict)
                and isinstance(node.target, ast.Name)
            ):
                var_of[id(node.value)] = node.target.id
            if isinstance(node, ast.Dict) and id(node) not in seen:
                seen.add(id(node))
                literals.append(node)
        for literal in literals:
            keys: dict[str, ast.AST] = {}
            for key_node, value_node in zip(literal.keys, literal.values):
                key = _const_str(key_node) if key_node is not None else None
                if key is not None:
                    keys[key] = value_node
            if "ok" not in keys or "op" not in keys:
                continue
            verb = resolver.resolve(keys["op"])
            if verb is None:
                continue
            var = var_of.get(id(literal))
            shapes.setdefault(verb, []).append(
                _ResponseShape(
                    module=module,
                    node=literal,
                    function=function.name,
                    required=frozenset(keys),
                    optional=frozenset(added.get(var, set())) if var else frozenset(),
                )
            )
    return shapes


def _compatible(shape: _ResponseShape, reference: _ResponseShape) -> bool:
    """True when two shapes of one verb can answer interchangeably."""
    missing = reference.required - shape.required - shape.optional
    extra = shape.required - reference.required - reference.optional
    return not missing and not extra


def _tag_bytes_emitted(function: ast.AST) -> set[int]:
    """Tag bytes ``_encode_into`` appends (``out += b"X"`` and packs)."""
    tags: set[int] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            if isinstance(node.value, ast.Constant) and isinstance(
                node.value.value, bytes
            ):
                raw = node.value.value
                if len(raw) == 1:
                    tags.add(raw[0])
    return tags


def _tag_bytes_accepted(function: ast.AST, subject: str = "tag") -> set[int]:
    """Tag bytes a decoder compares ``tag`` against (ints or b"X")."""
    tags: set[int] = set()
    for node in ast.walk(function):
        if not isinstance(node, ast.Compare):
            continue
        involves = (
            isinstance(node.left, ast.Name) and node.left.id == subject
        ) or any(
            isinstance(cmp, ast.Name) and cmp.id == subject for cmp in node.comparators
        )
        if not involves:
            continue
        candidates: list[ast.AST] = [node.left, *node.comparators]
        for candidate in candidates:
            if isinstance(candidate, (ast.Tuple, ast.List, ast.Set)):
                candidates.extend(candidate.elts)
            elif isinstance(candidate, ast.Constant):
                if isinstance(candidate.value, int):
                    tags.add(candidate.value)
                elif isinstance(candidate.value, bytes) and len(candidate.value) == 1:
                    tags.add(candidate.value[0])
    return tags


@register_rule
class WireSchemaRule(Rule):
    id = "R003"
    title = "wire-schema drift between transports"
    hint = "declare the verb once in service/protocol.py and reuse the shared builder"

    def check(self, project: Project) -> Iterator[Finding]:
        config = project.config
        protocol = project.get(config.protocol_module)
        if protocol is None:
            return  # a tree without a protocol module has no wire schema
        frames = project.get(config.frames_module)

        constants: dict[str, str] = {}
        declared_in_protocol: set[str] = set()
        for module in (protocol, frames):
            if module is None:
                continue
            found = _collect_op_constants(module)
            constants.update(found)
            declared_in_protocol.update(found.values())
        # Constants defined elsewhere still resolve comparisons/builders,
        # but do NOT count as declared -- that is exactly the drift this
        # rule exists to catch.
        foreign_constants: dict[str, str] = {}
        for module in project.iter_modules():
            if module in (protocol, frames):
                continue
            foreign_constants.update(_collect_op_constants(module))
        resolver = _VerbResolver({**foreign_constants, **constants})

        # The literal core verbs of the protocol's own dispatcher are
        # declarations too (the protocol module IS the declaration site).
        handled: dict[str, dict[str, ast.AST]] = {}
        for module_name, function_name in config.dispatchers:
            module = project.get(module_name)
            if module is None:
                continue
            function = _functions(module).get(function_name)
            if function is None:
                continue
            handled[module_name] = _compared_verbs(function, resolver)
        protocol_handled = handled.get(config.protocol_module, {})
        declared = declared_in_protocol | set(protocol_handled)

        # -- handled-but-undeclared --------------------------------------------
        for module_name, verbs in handled.items():
            module = project.get(module_name)
            assert module is not None
            for verb, node in sorted(verbs.items()):
                if verb not in declared:
                    yield self.finding(
                        module,
                        node,
                        f"verb {verb!r} is handled by {module_name} but not "
                        f"declared in {config.protocol_module}",
                    )

        # -- collect response shapes + consumers across the wire modules -------
        shapes: dict[str, list[_ResponseShape]] = {}
        consumed: set[str] = set()
        for module_name in config.wire_modules:
            module = project.get(module_name)
            if module is None:
                continue
            for verb, module_shapes in _response_shapes(module, resolver).items():
                shapes.setdefault(verb, []).extend(module_shapes)
            for function in ast.walk(module.tree):
                if isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    consumed.update(_compared_verbs(function, resolver))

        # -- declared-but-unhandled --------------------------------------------
        handled_anywhere = consumed | {
            verb for verbs in handled.values() for verb in verbs
        }
        emitted = set(shapes)
        for verb in sorted(declared):
            if verb not in handled_anywhere and verb not in emitted:
                yield self.finding(
                    protocol,
                    protocol.tree,
                    f"verb {verb!r} is declared but no transport handles, "
                    "emits or consumes it",
                    hint="remove the dead verb or wire it into a dispatcher",
                )

        # -- divergent response keys across transports -------------------------
        # The protocol module's builders are canonical; a verb may have
        # several legitimate canonical variants (a subscribe summary and
        # a sweep summary differ by design).  Drift is a shape in
        # *another* module incompatible with every canonical variant --
        # different transports answering one verb with different keys.
        for verb, verb_shapes in sorted(shapes.items()):
            canonical = [s for s in verb_shapes if s.module is protocol]
            others = [s for s in verb_shapes if s.module is not protocol]
            if not canonical:
                # No protocol builder: the first emitting module's
                # variants become the reference for cross-module checks.
                modules_in_order: list[ModuleInfo] = []
                for shape in others:
                    if shape.module not in modules_in_order:
                        modules_in_order.append(shape.module)
                if len(modules_in_order) < 2:
                    continue
                canonical = [s for s in others if s.module is modules_in_order[0]]
                others = [s for s in others if s.module is not modules_in_order[0]]
            for other in others:
                if any(_compatible(other, reference) for reference in canonical):
                    continue
                reference = canonical[0]
                missing = reference.required - other.required - other.optional
                extra = other.required - reference.required - reference.optional
                detail = []
                if missing:
                    detail.append(f"missing {sorted(missing)}")
                if extra:
                    detail.append(f"extra {sorted(extra)}")
                yield self.finding(
                    other.module,
                    other.node,
                    f"response for verb {verb!r} in "
                    f"{other.module.name}.{other.function}() diverges from "
                    f"{reference.module.name}.{reference.function}(): "
                    f"{', '.join(detail) or 'incompatible key sets'}",
                    hint="answer every transport with the shared protocol builder",
                )

        # -- binary tag codec symmetry -----------------------------------------
        if frames is not None:
            yield from self._check_codec(frames)

    def _check_codec(self, frames: ModuleInfo) -> Iterator[Finding]:
        functions = _functions(frames)
        encoder = functions.get("_encode_into")
        decoder = functions.get("_decode_from")
        skipper = functions.get("_skip_from")
        if encoder is None or decoder is None:
            return
        emitted = _tag_bytes_emitted(encoder)
        decoded = _tag_bytes_accepted(decoder)
        if not emitted or not decoded:
            return
        for tag in sorted(emitted - decoded):
            yield self.finding(
                frames,
                encoder,
                f"frame tag {chr(tag)!r} (0x{tag:02x}) is encoded but "
                "_decode_from does not accept it",
                hint="add the tag to _decode_from (and _skip_from)",
            )
        for tag in sorted(decoded - emitted):
            yield self.finding(
                frames,
                decoder,
                f"frame tag {chr(tag)!r} (0x{tag:02x}) is decoded but "
                "_encode_into never emits it",
                hint="remove the dead tag or emit it from _encode_into",
            )
        if skipper is not None:
            skipped = _tag_bytes_accepted(skipper)
            for tag in sorted(decoded - skipped):
                yield self.finding(
                    frames,
                    skipper,
                    f"frame tag {chr(tag)!r} (0x{tag:02x}) is decoded but "
                    "_skip_from cannot skip it (raw-span forwarding would "
                    "desync)",
                    hint="teach _skip_from the tag",
                )
