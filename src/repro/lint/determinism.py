"""R001 -- nondeterminism inside the fingerprint-tainted set.

The fingerprint contract (bit-identical envelopes across the serial,
pooled, batched, served and clustered tiers -- and across *processes*,
which is what the store and the cluster replay) dies the moment a
value on a fingerprint-feeding path consults:

* a clock (``time.time`` / ``perf_counter`` / ``monotonic``,
  ``datetime.now``),
* an unseeded RNG (module-level ``random.*``, ``numpy.random.*``,
  ``numpy.random.default_rng()`` with no seed, ``os.urandom``,
  ``secrets``, ``random.SystemRandom``),
* process identity (``uuid.uuid1``/``uuid4``, builtin ``hash()`` --
  salted per process by PYTHONHASHSEED -- and ``id()``),
* unordered ``set`` iteration (order varies across processes with the
  hash salt; ``sorted(...)`` is the fix, and exempts the site).

Seeded construction is explicitly fine: ``random.Random(seed)`` and
``numpy.random.default_rng(seed)`` are how the Monte-Carlo backend
earns its determinism.

The rule fires **only inside the tainted set** -- modules reachable
along import edges from canonical spec hashing, result fingerprints,
Monte-Carlo trial seeding and manifest digests.  Transport code
measuring request latency with ``perf_counter`` is untainted and never
flagged (fingerprints neutralise ``wall_time``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from .analyzer import ModuleInfo, Project
from .findings import Finding
from .rules import Rule, register_rule

__all__ = ["NondeterminismRule"]

#: Calls that are nondeterministic regardless of arguments.
FORBIDDEN_CALLS: dict[str, str] = {
    "time.time": "wall clock",
    "time.time_ns": "wall clock",
    "time.perf_counter": "monotonic clock",
    "time.perf_counter_ns": "monotonic clock",
    "time.monotonic": "monotonic clock",
    "time.monotonic_ns": "monotonic clock",
    "datetime.datetime.now": "wall clock",
    "datetime.datetime.utcnow": "wall clock",
    "datetime.date.today": "wall clock",
    "os.urandom": "OS entropy",
    "secrets.token_bytes": "OS entropy",
    "secrets.token_hex": "OS entropy",
    "secrets.token_urlsafe": "OS entropy",
    "secrets.randbits": "OS entropy",
    "secrets.choice": "OS entropy",
    "random.SystemRandom": "OS entropy",
    "uuid.uuid1": "host/process identity",
    "uuid.uuid4": "OS entropy",
}

#: Module-level functions of the global (process-seeded) RNGs.
_GLOBAL_RNG_FUNCS = (
    "random",
    "randint",
    "uniform",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "randrange",
    "getrandbits",
    "randbytes",
    "gauss",
    "normalvariate",
    "lognormvariate",
    "expovariate",
    "betavariate",
    "gammavariate",
    "triangular",
    "vonmisesvariate",
    "paretovariate",
    "weibullvariate",
    "seed",
)
UNSEEDED_RANDOM_CALLS: frozenset[str] = frozenset(
    {f"random.{name}" for name in _GLOBAL_RNG_FUNCS}
    | {f"numpy.random.{name}" for name in _GLOBAL_RNG_FUNCS}
    | {"numpy.random.rand", "numpy.random.randn", "numpy.random.permutation"}
)

#: Builtins that leak the per-process hash salt / heap layout.
FORBIDDEN_BUILTINS: dict[str, str] = {
    "hash": "salted per process by PYTHONHASHSEED",
    "id": "heap-layout dependent",
}


def _is_set_expr(node: ast.AST) -> bool:
    """An expression whose iteration order is hash-salt dependent."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        # set algebra: flag only when an operand is itself a set expr
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@register_rule
class NondeterminismRule(Rule):
    id = "R001"
    title = "nondeterminism inside the fingerprint-tainted set"
    hint = "derive the value from the spec hash / seed, or move it off the fingerprint path"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.iter_modules():
            if not project.is_tainted(module):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        sorted_wrapped: set[ast.AST] = set()
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("sorted", "len", "min", "max", "sum", "any", "all")
            ):
                # Order-independent consumers: iterating a set through
                # these is deterministic, so their arguments are exempt.
                sorted_wrapped.update(node.args)

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter) and node.iter not in sorted_wrapped:
                    yield self.finding(
                        module,
                        node.iter,
                        "iteration over a set is hash-salt ordered "
                        "(differs across processes)",
                        hint="wrap the iterable in sorted(...)",
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for generator in node.generators:
                    if _is_set_expr(generator.iter) and generator.iter not in sorted_wrapped:
                        yield self.finding(
                            module,
                            generator.iter,
                            "comprehension over a set is hash-salt ordered "
                            "(differs across processes)",
                            hint="wrap the iterable in sorted(...)",
                        )

    def _check_call(self, module: ModuleInfo, node: ast.Call) -> Iterator[Finding]:
        if isinstance(node.func, ast.Name):
            reason = FORBIDDEN_BUILTINS.get(node.func.id)
            if reason is not None and node.func.id not in module.aliases:
                yield self.finding(
                    module,
                    node,
                    f"builtin {node.func.id}() on a fingerprint-feeding path "
                    f"({reason})",
                    hint="use hashlib over a canonical encoding instead",
                )
            if node.func.id in ("list", "tuple") and node.args:
                if _is_set_expr(node.args[0]):
                    yield self.finding(
                        module,
                        node,
                        f"{node.func.id}() over a set is hash-salt ordered "
                        "(differs across processes)",
                        hint="use sorted(...) instead",
                    )
        dotted = module.resolve_call(node.func)
        if dotted is None:
            return
        reason = FORBIDDEN_CALLS.get(dotted)
        if reason is not None:
            yield self.finding(
                module,
                node,
                f"{dotted}() on a fingerprint-feeding path ({reason})",
            )
            return
        if dotted in UNSEEDED_RANDOM_CALLS:
            yield self.finding(
                module,
                node,
                f"{dotted}() uses the process-global RNG "
                "(unseeded across worker processes)",
                hint="use a random.Random(seed) / numpy default_rng(seed) instance",
            )
            return
        if dotted == "numpy.random.default_rng" and not node.args and not node.keywords:
            yield self.finding(
                module,
                node,
                "numpy.random.default_rng() without a seed draws OS entropy",
                hint="pass an explicit seed derived from the spec hash",
            )
