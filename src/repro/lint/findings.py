"""The finding record every lint rule emits.

A finding is one violation at one source location.  Its identity for
baseline matching deliberately excludes the line number -- baselined
debt must not resurface every time an unrelated edit shifts a file --
and includes the message, so a *new* violation of the same rule in the
same file is never hidden by an old entry for a different symbol.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Finding"]


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: the rule id (``R001`` ... ``R005``).
        path: path of the offending file, relative to the package root's
            parent (``repro/api/spec.py``).
        line / col: 1-based line and 0-based column of the violation.
        message: one-line statement of the violation.
        hint: one-line fix suggestion.
        baselined: set by the runner when a checked-in baseline entry
            absorbs this finding (``--strict`` ignores it then).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    baselined: bool = field(default=False, compare=False)

    @property
    def key(self) -> str:
        """Line-independent identity used for baseline matching."""
        blob = f"{self.rule}\x00{self.path}\x00{self.message}"
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        """The human-facing one-liner: ``path:line:col: RXXX message``."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f"  [fix: {self.hint}]"
        if self.baselined:
            text += "  (baselined)"
        return text

    def to_dict(self) -> dict[str, Any]:
        """The ``--json`` wire shape of one finding."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "key": self.key,
            "baselined": self.baselined,
        }

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)
