"""Project analysis: module discovery, import graph, tainted set.

The analyzer parses every module under one package root into an AST
once, resolves the intra-package import graph (top-level *and*
deferred function-local imports -- the serving tier defers heavily),
and computes the **fingerprint-tainted set**: every module reachable
along import edges from the determinism roots (canonical spec hashing,
result fingerprints, Monte-Carlo trial seeding, manifest digests).
Rules fire on reachability, not on a hardcoded file list, so a new
module that starts feeding fingerprints is covered the moment anything
on the tainted path imports it.

Suppressions are source comments, parsed here once for all rules::

    something_noisy()  # repro-lint: disable=R001 -- justification

applies to its own line and the line directly below (so a multi-line
call can carry the comment on its opening line), and::

    # repro-lint: disable-file=R004

within the first ten lines of a file suppresses a rule file-wide.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

__all__ = ["LintConfig", "ModuleInfo", "Project"]

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+)")
_SUPPRESS_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Z0-9,\s]+)")


@dataclass(frozen=True)
class LintConfig:
    """What the rules treat as roots and wire modules.

    Everything is a dotted module name with the package prefix
    (``repro.api.spec``); tests point these at fixture trees.
    """

    #: Modules whose import closure is the fingerprint-tainted set:
    #: canonical spec hashing, result fingerprints, Monte-Carlo trial
    #: seeding and manifest digests.
    taint_roots: tuple[str, ...] = (
        "repro.api.spec",
        "repro.api.result",
        "repro.faults.montecarlo",
        "repro.experiments.manifest",
    )
    #: Where the verb table lives (``*_OP`` constants + the literal core
    #: verbs of ``handle_request``).
    protocol_module: str = "repro.service.protocol"
    #: The binary tag codec whose encode/decode/skip tag sets must agree.
    frames_module: str = "repro.service.frames"
    #: Modules that build wire responses; R003 cross-checks the response
    #: key set of each verb across all of them.
    wire_modules: tuple[str, ...] = (
        "repro.service.protocol",
        "repro.service.daemon",
        "repro.service.aio",
        "repro.service.client",
        "repro.cluster.router",
    )
    #: ``module -> dispatcher function names``: where request verbs are
    #: compared against the ``op`` of an incoming request.
    dispatchers: tuple[tuple[str, str], ...] = (
        ("repro.service.protocol", "handle_request"),
        ("repro.cluster.router", "_dispatch"),
    )


@dataclass
class ModuleInfo:
    """One parsed module: source, AST, aliases and suppressions."""

    name: str  #: dotted, package-prefixed ("repro.api.spec")
    path: Path  #: absolute path on disk
    rel_path: str  #: display/baseline path ("repro/api/spec.py")
    source: str
    tree: ast.Module
    #: imported-name -> dotted target ("np" -> "numpy",
    #: "perf_counter" -> "time.perf_counter") for call resolution.
    aliases: dict[str, str] = field(default_factory=dict)
    #: intra-package modules this module imports (dotted names).
    imports: set[str] = field(default_factory=set)
    #: line -> rule ids suppressed on that line ("*" = all).
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: rule ids suppressed for the whole file.
    file_suppressions: set[str] = field(default_factory=set)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_suppressions or "*" in self.file_suppressions:
            return True
        for at in (line, line - 1):
            rules = self.suppressions.get(at)
            if rules and (rule in rules or "*" in rules):
                return True
        return False

    def resolve_call(self, node: ast.AST) -> Optional[str]:
        """Dotted name of a call target, through the module's aliases.

        ``time.time()`` -> ``"time.time"``; with ``import numpy as np``,
        ``np.random.rand()`` -> ``"numpy.random.rand"``; with
        ``from time import perf_counter``, ``perf_counter()`` ->
        ``"time.perf_counter"``.  Returns None for dynamic targets.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        head = self.aliases.get(current.id, current.id)
        parts.append(head)
        return ".".join(reversed(parts))


def _parse_suppressions(
    source: str,
) -> tuple[dict[int, set[str]], set[str]]:
    per_line: dict[int, set[str]] = {}
    per_file: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "repro-lint" not in line:
            continue
        match = _SUPPRESS_RE.search(line)
        if match:
            rules = {item.strip() for item in match.group(1).split(",") if item.strip()}
            per_line.setdefault(lineno, set()).update(rules)
        match = _SUPPRESS_FILE_RE.search(line)
        if match and lineno <= 10:
            per_file.update(
                item.strip() for item in match.group(1).split(",") if item.strip()
            )
    return per_line, per_file


class Project:
    """Every module under one package root, parsed and cross-linked.

    Args:
        package_root: the directory of the package itself (the one
            containing the top-level ``__init__.py``) -- ``src/repro``
            in this repo, a fixture tree in the rule tests.
        config: root/wire-module names; defaults match this repo.
    """

    def __init__(self, package_root: Path, config: Optional[LintConfig] = None) -> None:
        self.package_root = Path(package_root).resolve()
        self.package = self.package_root.name
        self.config = config if config is not None else LintConfig()
        self.modules: dict[str, ModuleInfo] = {}
        self.parse_errors: list[tuple[str, str]] = []
        self._discover()
        for module in self.modules.values():
            self._link(module)
        self.tainted: frozenset[str] = self._taint_closure()

    # -- discovery -------------------------------------------------------------
    def _module_name(self, path: Path) -> str:
        rel = path.relative_to(self.package_root)
        parts = [self.package, *rel.parts[:-1]]
        if rel.name != "__init__.py":
            parts.append(rel.stem)
        return ".".join(parts)

    def _discover(self) -> None:
        for path in sorted(self.package_root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            source = path.read_text(encoding="utf-8")
            name = self._module_name(path)
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as error:
                self.parse_errors.append((name, str(error)))
                continue
            per_line, per_file = _parse_suppressions(source)
            rel_path = str(Path(self.package, *path.relative_to(self.package_root).parts))
            self.modules[name] = ModuleInfo(
                name=name,
                path=path,
                rel_path=rel_path,
                source=source,
                tree=tree,
                suppressions=per_line,
                file_suppressions=per_file,
            )

    # -- import resolution -----------------------------------------------------
    def _resolve_relative(self, module: ModuleInfo, level: int) -> list[str]:
        """The package parts a level-``level`` relative import is rooted at."""
        parts = module.name.split(".")
        # For "repro.api.spec", the containing package is ["repro", "api"];
        # for a package __init__ ("repro.api"), it is the package itself.
        if module.path.name == "__init__.py":
            package_parts = parts
        else:
            package_parts = parts[:-1]
        cut = len(package_parts) - (level - 1)
        return package_parts[: max(cut, 0)]

    def _note_import(self, module: ModuleInfo, target: str) -> None:
        """Record an intra-package import edge if the target exists."""
        if target in self.modules:
            module.imports.add(target)

    def _link(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        module.aliases[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        module.aliases[head] = head
                    self._note_import(module, alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = self._resolve_relative(module, node.level)
                else:
                    base = []
                target_parts = list(base)
                if node.module:
                    target_parts += node.module.split(".")
                target = ".".join(target_parts)
                self._note_import(module, target)
                for alias in node.names:
                    bound = alias.asname or alias.name
                    full = f"{target}.{alias.name}" if target else alias.name
                    module.aliases[bound] = full
                    # "from . import submodule" / "from .pkg import submodule"
                    self._note_import(module, full)

    # -- taint -----------------------------------------------------------------
    def _taint_closure(self) -> frozenset[str]:
        roots = [name for name in self.config.taint_roots if name in self.modules]
        seen: set[str] = set()
        stack = list(roots)
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.modules[name].imports - seen)
        return frozenset(seen)

    def is_tainted(self, module: ModuleInfo) -> bool:
        return module.name in self.tainted

    def get(self, name: str) -> Optional[ModuleInfo]:
        return self.modules.get(name)

    def module_for_path(self, rel_path: str) -> Optional[ModuleInfo]:
        """Look a module up by its display path ("repro/api/spec.py")."""
        for module in self.modules.values():
            if module.rel_path == rel_path:
                return module
        return None

    def iter_modules(self) -> Iterable[ModuleInfo]:
        return self.modules.values()
