"""Length-prefixed binary frames for the serving wire.

The JSON-Lines protocol (:mod:`repro.service.protocol`) stays the
default and the only thing an unsuspecting client ever sees.  A client
that wants the warm path to skip JSON entirely sends one ordinary JSON
line first::

    {"op": "hello", "format": "binary"}

and, on an ``ok`` answer confirming ``"format": "binary"``, both
directions of that connection switch to binary frames::

    header   6 B   magic (1 B), version (1 B), payload length (u32 BE)
    payload        one envelope dict in the tag codec below

The payload codec is deliberately tiny -- msgpack is not a dependency
of this project, so the envelope dicts are encoded with a hand-rolled
tagged format covering exactly the JSON value model (plus ``bytes``)::

    'N'                    None          'T' / 'F'   booleans
    'i' + int64 BE         integers      'f' + float64 BE   floats
    's' + u32 + utf-8      strings       'y' + u32 + raw    bytes
    'l' + u32 + items      lists
    'd' + u32 + pairs      dicts (string keys, sorted -- encoding is
                           deterministic, like the JSON side's
                           ``sort_keys=True``)

Two properties the serving tier leans on:

* **forward-without-re-encoding** -- :func:`decode_payload` can return
  selected top-level dict values as opaque :class:`Raw` byte spans, and
  :func:`encode_payload` splices :class:`Raw` values back verbatim.
  The shard router uses this to forward a worker's ``result`` without
  ever materialising it, and the daemon's hot cache replays a
  pre-encoded result for repeat requests.
* **clean failure** -- a malformed *payload* raises :class:`FrameError`
  from the codec, which a transport answers with an error frame while
  the connection survives; only a corrupted *header* (wrong magic,
  absurd length) is unsyncable and closes the connection.
"""

from __future__ import annotations

import struct
from typing import Any, FrozenSet, Optional

from ..errors import ReproError

__all__ = [
    "FORMAT_BINARY",
    "FORMAT_JSON",
    "FORMATS",
    "FrameError",
    "HEADER_SIZE",
    "HELLO_OP",
    "MAX_FRAME_BYTES",
    "Raw",
    "decode_header",
    "decode_payload",
    "encode_frame",
    "encode_payload",
    "materialize_raw",
    "pack_frame",
    "read_frame",
]

#: The negotiation verb and the formats it can answer.
HELLO_OP = "hello"
FORMAT_JSON = "json"
FORMAT_BINARY = "binary"
FORMATS = (FORMAT_JSON, FORMAT_BINARY)

_MAGIC = 0xB6
_VERSION = 1
_HEADER = struct.Struct("!BBI")

#: Upper bound on one frame's payload; anything bigger is a corrupted
#: header, not a request (the largest real envelope is a metrics
#: document, well under a megabyte).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")
_U32 = struct.Struct("!I")


class FrameError(ReproError):
    """A binary frame or its payload could not be encoded or decoded."""


class Raw:
    """A pre-encoded payload span, spliced verbatim by the encoder."""

    __slots__ = ("data",)

    def __init__(self, data: bytes) -> None:
        self.data = data

    def decode(self) -> Any:
        """Materialise the span back into Python objects."""
        return decode_payload(self.data)


# -- payload codec -------------------------------------------------------------


def _encode_into(out: bytearray, value: Any) -> None:
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif isinstance(value, Raw):
        out += value.data
    elif isinstance(value, int):
        out += b"i"
        try:
            out += _I64.pack(value)
        except struct.error as error:
            raise FrameError(f"integer out of int64 range: {value!r}") from error
    elif isinstance(value, float):
        out += b"f"
        out += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += b"s"
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out += b"y"
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, (list, tuple)):
        out += b"l"
        out += _U32.pack(len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, dict):
        out += b"d"
        out += _U32.pack(len(value))
        try:
            keys = sorted(value)
        except TypeError as error:
            raise FrameError("dict keys must all be strings") from error
        for key in keys:
            if not isinstance(key, str):
                raise FrameError(f"dict keys must be strings, got {type(key).__name__}")
            raw = key.encode("utf-8")
            out += b"s"
            out += _U32.pack(len(raw))
            out += raw
            _encode_into(out, value[key])
    else:
        raise FrameError(f"cannot encode {type(value).__name__} in a frame payload")


def encode_payload(value: Any) -> bytes:
    """Encode one envelope value into payload bytes (deterministic)."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def _need(data: bytes, pos: int, count: int) -> None:
    if pos + count > len(data):
        raise FrameError("truncated frame payload")


def _decode_from(data: bytes, pos: int) -> tuple[Any, int]:
    _need(data, pos, 1)
    tag = data[pos]
    pos += 1
    if tag == 0x4E:  # 'N'
        return None, pos
    if tag == 0x54:  # 'T'
        return True, pos
    if tag == 0x46:  # 'F'
        return False, pos
    if tag == 0x69:  # 'i'
        _need(data, pos, 8)
        return _I64.unpack_from(data, pos)[0], pos + 8
    if tag == 0x66:  # 'f'
        _need(data, pos, 8)
        return _F64.unpack_from(data, pos)[0], pos + 8
    if tag == 0x73:  # 's'
        _need(data, pos, 4)
        (length,) = _U32.unpack_from(data, pos)
        pos += 4
        _need(data, pos, length)
        try:
            text = bytes(data[pos : pos + length]).decode("utf-8")
        except UnicodeDecodeError as error:
            raise FrameError(f"invalid utf-8 in frame string: {error}") from error
        return text, pos + length
    if tag == 0x79:  # 'y'
        _need(data, pos, 4)
        (length,) = _U32.unpack_from(data, pos)
        pos += 4
        _need(data, pos, length)
        return bytes(data[pos : pos + length]), pos + length
    if tag == 0x6C:  # 'l'
        _need(data, pos, 4)
        (count,) = _U32.unpack_from(data, pos)
        pos += 4
        items = []
        for _ in range(count):
            item, pos = _decode_from(data, pos)
            items.append(item)
        return items, pos
    if tag == 0x64:  # 'd'
        _need(data, pos, 4)
        (count,) = _U32.unpack_from(data, pos)
        pos += 4
        obj: dict[str, Any] = {}
        for _ in range(count):
            key, pos = _decode_from(data, pos)
            if not isinstance(key, str):
                raise FrameError("frame dict key is not a string")
            obj[key], pos = _decode_from(data, pos)
        return obj, pos
    raise FrameError(f"unknown frame payload tag 0x{tag:02x}")


def _skip_from(data: bytes, pos: int) -> int:
    """Advance past one encoded value without materialising it."""
    _need(data, pos, 1)
    tag = data[pos]
    pos += 1
    if tag in (0x4E, 0x54, 0x46):
        return pos
    if tag in (0x69, 0x66):
        _need(data, pos, 8)
        return pos + 8
    if tag in (0x73, 0x79):
        _need(data, pos, 4)
        (length,) = _U32.unpack_from(data, pos)
        pos += 4
        _need(data, pos, length)
        return pos + length
    if tag == 0x6C:
        _need(data, pos, 4)
        (count,) = _U32.unpack_from(data, pos)
        pos += 4
        for _ in range(count):
            pos = _skip_from(data, pos)
        return pos
    if tag == 0x64:
        _need(data, pos, 4)
        (count,) = _U32.unpack_from(data, pos)
        pos += 4
        for _ in range(count):
            pos = _skip_from(data, pos)
            pos = _skip_from(data, pos)
        return pos
    raise FrameError(f"unknown frame payload tag 0x{tag:02x}")


def decode_payload(data: bytes, raw_keys: Optional[FrozenSet[str]] = None) -> Any:
    """Decode payload bytes back into Python objects.

    With ``raw_keys`` and a top-level dict payload, values under those
    keys come back as :class:`Raw` spans instead of materialised
    objects -- the zero-re-encoding path for forwarding and caching.
    """
    if raw_keys and data[:1] == b"d":
        (count,) = _U32.unpack_from(data, 1)
        pos = 5
        obj: dict[str, Any] = {}
        for _ in range(count):
            key, pos = _decode_from(data, pos)
            if not isinstance(key, str):
                raise FrameError("frame dict key is not a string")
            if key in raw_keys:
                end = _skip_from(data, pos)
                obj[key] = Raw(bytes(data[pos:end]))
                pos = end
            else:
                obj[key], pos = _decode_from(data, pos)
        if pos != len(data):
            raise FrameError("trailing bytes after frame payload")
        return obj
    value, pos = _decode_from(data, 0)
    if pos != len(data):
        raise FrameError("trailing bytes after frame payload")
    return value


def materialize_raw(response: Any) -> Any:
    """A copy of a response dict with top-level :class:`Raw` spans decoded.

    The JSON side of a transport calls this before ``json.dumps`` on
    responses that crossed the binary fast path (e.g. a router
    forwarding a binary worker's answer to a JSON client).
    """
    if not isinstance(response, dict):
        return response
    if not any(isinstance(value, Raw) for value in response.values()):
        return response
    return {
        key: value.decode() if isinstance(value, Raw) else value
        for key, value in response.items()
    }


# -- framing -------------------------------------------------------------------


#: Size of the fixed frame header in bytes (magic, version, length).
HEADER_SIZE = _HEADER.size


def pack_frame(payload: bytes) -> bytes:
    """Prefix encoded payload bytes with the frame header."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame payload of {len(payload)} bytes exceeds the maximum")
    return _HEADER.pack(_MAGIC, _VERSION, len(payload)) + payload


def decode_header(header: bytes) -> int:
    """Validate one frame header and return its payload length.

    Shared by the blocking :func:`read_frame` and the asyncio transport
    (:mod:`repro.service.aio`), so a corrupted header fails identically
    on both.
    """
    magic, version, length = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise FrameError(f"bad frame magic 0x{magic:02x}")
    if version != _VERSION:
        raise FrameError(f"unsupported frame version {version}")
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds the maximum")
    return length


def encode_frame(value: Any) -> bytes:
    """One envelope value as a complete wire frame."""
    return pack_frame(encode_payload(value))


def read_frame(stream: Any) -> Optional[bytes]:
    """Read one frame's payload from a file-like stream.

    Returns None on a clean EOF at a frame boundary.  Raises
    :class:`FrameError` for a corrupted header or a mid-frame EOF --
    both unsyncable, the connection must close.
    """
    header = stream.read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise FrameError("connection closed mid-frame-header")
    length = decode_header(header)
    payload = stream.read(length)
    if len(payload) < length:
        raise FrameError("connection closed mid-frame")
    return payload
