"""``repro.service`` -- the long-lived, latency-aware serving tier.

Built on the planner/executor split (:mod:`repro.exec`) and the
thread-safe :class:`~repro.api.batch.BatchRunner`:

* :mod:`repro.service.service`  -- :class:`SolverService`: one shared
  runner (locked LRU + store tier), in-flight request coalescing by
  ``(backend, spec hash)``, admission control (bounded in-flight +
  bounded queue), per-backend metrics and graceful drain;
* :mod:`repro.service.metrics`  -- :class:`ServiceMetrics`: request /
  hit-rate / latency-percentile accounting;
* :mod:`repro.service.protocol` -- the JSON-Lines wire format (one
  request per line, one response per line; ``solve`` / ``health`` /
  ``metrics`` verbs) shared by every transport;
* :mod:`repro.service.daemon`   -- :class:`ReproServer`: the ``repro
  serve`` TCP daemon, one thread per connection, stdlib only;
* :mod:`repro.service.frames`   -- the negotiated binary wire frames
  (length-prefixed, hand-rolled tag codec) that skip JSON on the warm
  path;
* :mod:`repro.service.client`   -- :class:`ServiceClient`: persistent
  connections with transparent binary negotiation and streamed
  subscriptions;
* :mod:`repro.service.aio`      -- :class:`AsyncReproServer`: the
  ``repro serve --async`` asyncio transport -- same verbs byte-for-byte,
  an order of magnitude more concurrent connections, plus the
  ``subscribe`` streamed-sweep verb.

Quickstart::

    from repro.api import SearchProblem
    from repro.service import SolverService

    with SolverService(backend="auto", store=".repro-store") as service:
        served = service.request(SearchProblem(distance=1.5, visibility=0.3))
        print(served.result.summary(), served.source, served.latency)
"""

from ..errors import ServiceProtocolError
from .aio import AsyncLineServer, AsyncReproServer
from .client import ServiceClient, SubscribeStream
from .daemon import ReproServer, TransportMetrics, hot_solve_key, request_lines
from .frames import FORMAT_BINARY, FORMAT_JSON, FrameError, decode_payload, encode_frame
from .metrics import ServiceMetrics
from .protocol import (
    COMPLETION_OP,
    SUBSCRIBE_OP,
    SUMMARY_OP,
    encode_response,
    handle_line,
    handle_request,
)
from .service import ServedResult, SolverService

__all__ = [
    "AsyncLineServer",
    "AsyncReproServer",
    "COMPLETION_OP",
    "FORMAT_BINARY",
    "FORMAT_JSON",
    "FrameError",
    "ReproServer",
    "SUBSCRIBE_OP",
    "SUMMARY_OP",
    "ServedResult",
    "ServiceClient",
    "ServiceMetrics",
    "ServiceProtocolError",
    "SolverService",
    "SubscribeStream",
    "TransportMetrics",
    "decode_payload",
    "encode_frame",
    "encode_response",
    "handle_line",
    "handle_request",
    "hot_solve_key",
    "request_lines",
]
