"""Thread-safe request metrics for the serving tier.

One :class:`ServiceMetrics` instance aggregates per-backend counters
(requests, fresh solves, LRU/store hits, in-flight coalescing, errors,
rejections) and a bounded latency window from which p50/p99 are computed
on demand.  Everything is guarded by one lock -- updates are a few
dict/deque operations, far cheaper than any solve.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Optional

__all__ = ["ServiceMetrics"]

#: Completion sources that count as answered-without-solving.
_HIT_SOURCES = frozenset({"cache", "store"})


def _percentile(ordered: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


class _BackendMetrics:
    __slots__ = (
        "requests",
        "solves",
        "cache_hits",
        "store_hits",
        "coalesced",
        "errors",
        "rejected",
        "latencies",
        "latency_max",
    )

    def __init__(self, window: int) -> None:
        self.requests = 0
        self.solves = 0
        self.cache_hits = 0
        self.store_hits = 0
        self.coalesced = 0
        self.errors = 0
        self.rejected = 0
        self.latencies: deque[float] = deque(maxlen=window)
        self.latency_max = 0.0

    @property
    def hit_rate(self) -> float:
        answered = self.requests - self.errors
        if answered <= 0:
            return 0.0
        return (self.cache_hits + self.store_hits + self.coalesced) / answered

    def snapshot(self) -> dict[str, Any]:
        ordered = sorted(self.latencies)
        # An empty window (e.g. a backend that has only recorded
        # rejections) reports every statistic as null: "not measured"
        # must never read as "measured 0.0 ms".
        latency: dict[str, Any] = {
            "window": len(ordered),
            "mean_ms": None,
            "p50_ms": None,
            "p99_ms": None,
            "max_ms": None,
        }
        if ordered:
            latency.update(
                mean_ms=round(1e3 * sum(ordered) / len(ordered), 3),
                p50_ms=round(1e3 * _percentile(ordered, 0.50), 3),
                p99_ms=round(1e3 * _percentile(ordered, 0.99), 3),
                max_ms=round(1e3 * self.latency_max, 3),
            )
        return {
            "requests": self.requests,
            "solves": self.solves,
            "cache_hits": self.cache_hits,
            "store_hits": self.store_hits,
            "coalesced": self.coalesced,
            "errors": self.errors,
            "rejected": self.rejected,
            "hit_rate": round(self.hit_rate, 4),
            "latency": latency,
        }


class ServiceMetrics:
    """Per-backend request/latency/hit-rate accounting.

    Args:
        window: number of most-recent per-request latencies kept per
            backend for the p50/p99 estimates (counters are exact and
            unbounded).
    """

    def __init__(self, window: int = 2048) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window!r}")
        self._window = window
        self._lock = threading.Lock()
        self._backends: dict[str, _BackendMetrics] = {}
        self._rejected = 0
        self._started = time.time()

    def _backend(self, name: str) -> _BackendMetrics:
        entry = self._backends.get(name)
        if entry is None:
            entry = self._backends[name] = _BackendMetrics(self._window)
        return entry

    # -- recording -------------------------------------------------------------
    def record(self, backend: str, source: str, latency: float) -> None:
        """Record one answered request: where it was served from, how long."""
        with self._lock:
            entry = self._backend(backend)
            entry.requests += 1
            if source == "coalesced":
                entry.coalesced += 1
            elif source == "cache":
                entry.cache_hits += 1
            elif source == "store":
                entry.store_hits += 1
            else:
                entry.solves += 1
            entry.latencies.append(latency)
            entry.latency_max = max(entry.latency_max, latency)

    def record_error(self, backend: str, latency: float) -> None:
        """Record one request that raised instead of answering."""
        with self._lock:
            entry = self._backend(backend)
            entry.requests += 1
            entry.errors += 1
            entry.latencies.append(latency)
            entry.latency_max = max(entry.latency_max, latency)

    def record_rejected(self, backend: Optional[str] = None) -> None:
        """Record one request refused by admission control.

        With a ``backend`` the rejection is also attributed to that
        backend's entry -- which may therefore exist with rejections
        only and an empty latency window (admission refuses *before*
        any latency is measured; rejections never count as requests).
        """
        with self._lock:
            self._rejected += 1
            if backend is not None:
                self._backend(backend).rejected += 1

    # -- reading ---------------------------------------------------------------
    def coalesced_total(self, backend: Optional[str] = None) -> int:
        with self._lock:
            if backend is not None:
                entry = self._backends.get(backend)
                return entry.coalesced if entry else 0
            return sum(entry.coalesced for entry in self._backends.values())

    def snapshot(self) -> dict[str, Any]:
        """One JSON-safe metrics document (what the ``metrics`` verb ships)."""
        with self._lock:
            backends = {
                name: entry.snapshot() for name, entry in sorted(self._backends.items())
            }
            totals = {
                "requests": sum(b["requests"] for b in backends.values()),
                "solves": sum(b["solves"] for b in backends.values()),
                "cache_hits": sum(b["cache_hits"] for b in backends.values()),
                "store_hits": sum(b["store_hits"] for b in backends.values()),
                "coalesced": sum(b["coalesced"] for b in backends.values()),
                "errors": sum(b["errors"] for b in backends.values()),
                "rejected": self._rejected,
            }
            return {
                "uptime_s": round(time.time() - self._started, 3),
                "totals": totals,
                "backends": backends,
            }
