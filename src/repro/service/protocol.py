"""The JSON-Lines request/response protocol of the serving tier.

One request per line, one response per line.  The same functions back
the TCP daemon (:mod:`repro.service.daemon`) and the CLI's in-process
``repro solve --stdin-jsonl``, so the wire format is defined exactly
once.

Requests (one JSON object per line)::

    {"op": "solve", "spec": {...}, "backend": "auto", "id": 7}
    {...bare spec object with a "kind" field...}      # shorthand solve
    {"op": "health"}
    {"op": "metrics"}
    {"op": "hello", "format": "binary"}                # upgrade offer
    {"op": "shutdown"}                                 # daemon only

Responses always carry ``ok`` and echo any request ``id``::

    {"ok": true,  "op": "solve", "result": {envelope},
     "served_by": "solve|cache|store|coalesced", "latency_ms": 1.93}
    {"ok": true,  "op": "health",  "health": {...}}
    {"ok": true,  "op": "metrics", "metrics": {...}}
    {"ok": false, "op": "...", "error": "...", "error_type": "..."}

A malformed line never kills a connection: it answers ``ok: false``
and the stream continues.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from ..errors import ReproError
from .frames import FORMAT_JSON, FORMATS, HELLO_OP
from .service import SolverService

__all__ = [
    "completion_record",
    "decode_request",
    "error_response",
    "handle_request",
    "handle_line",
    "hello_response",
    "normalize_request",
    "parse_subscribe",
    "parse_sweep",
    "subscribe_ack",
    "subscribe_summary",
    "sweep_ack",
    "sweep_partial",
    "sweep_summary",
    "CLUSTER_STATUS_OP",
    "COMPLETION_OP",
    "PARTIAL_OP",
    "SHUTDOWN_OP",
    "SUBSCRIBE_OP",
    "SUMMARY_OP",
    "SWEEP_OP",
    "SWEEP_MODES",
]

#: The daemon-level verb; :func:`handle_request` answers it but leaves
#: actually stopping the server to the transport layer.
SHUTDOWN_OP = "shutdown"

#: Router-only verb: one document with the shard table, health and
#: restart counters (the ``repro cluster status`` CLI reads it).  Only
#: the cluster fronts answer it; a bare worker daemon rejects it like
#: any unknown verb.
CLUSTER_STATUS_OP = "cluster-status"

#: The streamed-sweep verb: one request carrying a whole spec suite,
#: answered with an ack, then one ``completion`` record per unique key
#: in completion order, then one ``summary`` record.  Needs a streaming
#: transport -- the asyncio servers of :mod:`repro.service.aio` and the
#: async cluster front; the thread-per-connection daemon refuses it
#: cleanly (one response per request is its whole contract).
SUBSCRIBE_OP = "subscribe"

#: The partitioned-sweep verb: like ``subscribe``, one request carrying
#: a whole spec suite -- but executed as **one** local batch plan (all
#: five tiers active, kernel batch included) instead of per-spec routing.
#: Against a worker the suite *is* the shard's partition; against the
#: async cluster front the router partitions the suite across shards by
#: routing key and ships one sweep per worker.  ``mode`` selects the
#: reply shape: ``stream`` (per-spec completion records, then a summary
#: with the true ``fingerprint_digest``) or ``fold`` (one ``partial``
#: record carrying merged per-``(kind, backend)`` aggregates plus
#: per-result blob hashes, then a summary with the ``fold_digest``).
SWEEP_OP = "sweep"

#: Reply modes a sweep request may ask for.
SWEEP_MODES = ("stream", "fold")

#: ``op`` of each streamed per-spec record of a subscription.
COMPLETION_OP = "completion"

#: ``op`` of a fold-mode aggregate record (one per worker sweep; the
#: cluster front merges them and forwards exactly one to the client).
PARTIAL_OP = "partial"

#: ``op`` of the terminating record of a subscription.
SUMMARY_OP = "summary"


def error_response(
    op: str, error: BaseException, request_id: Any = None
) -> dict[str, Any]:
    """The wire shape of a failed request -- defined exactly once."""
    response: dict[str, Any] = {
        "ok": False,
        "op": op,
        "error": str(error),
        "error_type": type(error).__name__,
    }
    if request_id is not None:
        response["id"] = request_id
    return response


# Backwards-compatible alias for the pre-cluster private name.
_error_response = error_response


def decode_request(line: str) -> tuple[Optional[dict[str, Any]], Optional[dict[str, Any]]]:
    """Decode one request line into an object: ``(data, error_response)``.

    Exactly one of the two is non-None; every transport (the daemon,
    the shard router, ``--stdin-jsonl``) shares this decoding so
    malformed-line behavior cannot drift between them.
    """
    try:
        data = json.loads(line)
    except json.JSONDecodeError as error:
        return None, error_response("?", ReproError(f"invalid request JSON: {error}"))
    if not isinstance(data, dict):
        return None, error_response(
            "?", ReproError(f"request must be a JSON object, got {type(data).__name__}")
        )
    return data, None


def normalize_request(data: dict[str, Any]) -> tuple[Any, dict[str, Any], Any]:
    """Resolve ``(op, data, request_id)``, applying the bare-spec shorthand.

    A bare spec may carry an ``id`` like any other request; it belongs
    to the envelope, not the spec, so it is lifted out before the spec
    is validated (a spec with an ``id`` field would be rejected as an
    unknown field).
    """
    request_id = data.get("id")
    op = data.get("op")
    if op is None and "kind" in data:
        op = "solve"
        spec = {key: value for key, value in data.items() if key != "id"}
        data = {"spec": spec, "id": request_id}
    return op, data, request_id


def hello_response(data: dict[str, Any], request_id: Any) -> dict[str, Any]:
    """Answer a wire-format negotiation; raises for an unknown format.

    The response confirms the format the **rest of this connection**
    will speak; the transport layer watches for a confirmed ``binary``
    and switches both directions after writing the (JSON) answer.
    """
    requested = data.get("format", FORMAT_JSON)
    if requested not in FORMATS:
        raise ReproError(
            f"unknown wire format {requested!r}; supported: {', '.join(FORMATS)}"
        )
    response: dict[str, Any] = {
        "ok": True,
        "op": HELLO_OP,
        "format": requested,
        "formats": list(FORMATS),
    }
    if request_id is not None:
        response["id"] = request_id
    return response


def handle_request(service: SolverService, data: Any) -> dict[str, Any]:
    """Answer one decoded request object; never raises."""
    if not isinstance(data, dict):
        return _error_response(
            "?", ReproError(f"request must be a JSON object, got {type(data).__name__}")
        )
    op, data, request_id = normalize_request(data)
    try:
        if op == "solve":
            return _solve_response(service, data, request_id)
        if op == "health":
            return {"ok": True, "op": "health", "health": service.health()}
        if op == "metrics":
            return {"ok": True, "op": "metrics", "metrics": service.metrics_snapshot()}
        if op == HELLO_OP:
            return hello_response(data, request_id)
        if op == SHUTDOWN_OP:
            return {"ok": True, "op": SHUTDOWN_OP, "stopping": True}
        if op == SUBSCRIBE_OP:
            raise ReproError(
                "subscribe streams results over one connection and needs the "
                "asyncio transport; start the daemon with `repro serve --async`"
            )
        if op == SWEEP_OP:
            raise ReproError(
                "sweep streams a partitioned suite over one connection and "
                "needs the asyncio transport; start the daemon with "
                "`repro serve --async` (add --workers N for a fleet)"
            )
        raise ReproError(
            f"unknown op {op!r}; expected solve, health, metrics, "
            f"{HELLO_OP} or {SHUTDOWN_OP}"
        )
    except ReproError as error:
        return _error_response(str(op), error, request_id)
    except Exception as error:  # noqa: BLE001 - a request must never kill the stream
        return _error_response(str(op), error, request_id)


def _solve_response(
    service: SolverService, data: dict[str, Any], request_id: Any
) -> dict[str, Any]:
    from ..api.spec import spec_from_dict

    spec_data = data.get("spec")
    if not isinstance(spec_data, dict):
        raise ReproError('solve request needs a "spec" object')
    backend = data.get("backend")
    if backend is not None and not isinstance(backend, str):
        raise ReproError('"backend" must be a string backend name')
    spec = spec_from_dict(spec_data)
    served = service.request(spec, backend=backend)
    response: dict[str, Any] = {
        "ok": True,
        "op": "solve",
        "result": served.result.to_dict(),
        "served_by": served.source,
        "latency_ms": round(served.latency * 1e3, 3),
    }
    if request_id is not None:
        response["id"] = request_id
    return response


def handle_line(service: SolverService, line: str) -> dict[str, Any]:
    """Decode one request line and answer it; never raises."""
    data, decode_error = decode_request(line)
    if decode_error is not None:
        return decode_error
    return handle_request(service, data)


def encode_response(response: dict[str, Any]) -> str:
    """One response as its wire line (no trailing newline)."""
    return json.dumps(response, sort_keys=True, separators=(",", ":"), allow_nan=False)


# -- the subscribe stream ------------------------------------------------------
#
# Every record shape of a subscription is built here, so the asyncio
# daemon, the async cluster front and the client all agree on the wire
# format (JSON lines and binary frames carry the same dicts).


def _parse_spec_suite(data: dict[str, Any], verb: str) -> tuple[list[Any], Optional[str]]:
    """Shared suite validation for subscribe and sweep requests."""
    from ..api.spec import spec_from_dict

    specs_data = data.get("specs")
    if not isinstance(specs_data, list) or not specs_data:
        raise ReproError(f'{verb} request needs a non-empty "specs" list')
    backend = data.get("backend")
    if backend is not None and not isinstance(backend, str):
        raise ReproError('"backend" must be a string backend name')
    specs = []
    for index, item in enumerate(specs_data):
        if not isinstance(item, dict):
            raise ReproError(
                f"specs[{index}] must be a spec object, got {type(item).__name__}"
            )
        try:
            specs.append(spec_from_dict(item))
        except ReproError as error:
            raise ReproError(f"specs[{index}]: {error}") from error
    return specs, backend


def parse_subscribe(data: dict[str, Any]) -> tuple[list[Any], Optional[str]]:
    """Validate a subscribe request: ``(specs, backend_override)``.

    Raises :class:`~repro.errors.ReproError` naming the offending entry,
    so an invalid suite is refused with a single ``ok: false`` response
    before any stream starts.
    """
    return _parse_spec_suite(data, "subscribe")


def parse_sweep(data: dict[str, Any]) -> tuple[list[Any], Optional[str], str]:
    """Validate a sweep request: ``(specs, backend_override, mode)``."""
    specs, backend = _parse_spec_suite(data, "sweep")
    mode = data.get("mode", "stream")
    if mode not in SWEEP_MODES:
        raise ReproError(
            f"unknown sweep mode {mode!r}; expected one of: {', '.join(SWEEP_MODES)}"
        )
    return specs, backend, mode


def subscribe_ack(
    request_id: Any,
    total: int,
    unique: int,
    backend: str,
    *,
    fanout: Optional[int] = None,
) -> dict[str, Any]:
    """The first response of an accepted subscription.

    ``fanout`` reports the *effective* per-subscription concurrency (the
    router's ``sweep_fanout`` clipped to the unique count), so a
    throughput-capped run is diagnosable from the wire instead of being
    silently ceilinged.
    """
    ack: dict[str, Any] = {
        "ok": True,
        "op": SUBSCRIBE_OP,
        "total": total,
        "unique": unique,
        "backend": backend,
    }
    if fanout is not None:
        ack["fanout"] = fanout
    if request_id is not None:
        ack["id"] = request_id
    return ack


def sweep_ack(
    request_id: Any,
    total: int,
    unique: int,
    backend: str,
    mode: str,
    fanout: int,
    partitions: Optional[list[dict[str, Any]]] = None,
) -> dict[str, Any]:
    """The first response of an accepted sweep.

    ``fanout`` is the number of concurrent partition streams; when the
    cluster front answers, ``partitions`` lists each shard's slice
    (``{"worker": id, "specs": n}``) so skew is visible before a single
    result arrives.
    """
    ack: dict[str, Any] = {
        "ok": True,
        "op": SWEEP_OP,
        "total": total,
        "unique": unique,
        "backend": backend,
        "mode": mode,
        "fanout": fanout,
    }
    if partitions is not None:
        ack["partitions"] = partitions
    if request_id is not None:
        ack["id"] = request_id
    return ack


def completion_record(completion: Any, request_id: Any, seq: int) -> dict[str, Any]:
    """One streamed per-spec record, tagged with key, source tier and seq."""
    backend, spec_hash = completion.key
    record: dict[str, Any] = {
        "ok": completion.ok,
        "op": COMPLETION_OP,
        "seq": seq,
        "key": {"backend": backend, "spec_hash": spec_hash},
        "served_by": completion.source,
        "latency_ms": round(completion.latency * 1e3, 3),
    }
    if completion.result is not None:
        record["result"] = completion.result.to_dict()
    if completion.failure is not None:
        record["error"] = completion.failure.message
        record["error_type"] = completion.failure.error_type
    if request_id is not None:
        record["id"] = request_id
    return record


def subscribe_summary(
    request_id: Any,
    records: int,
    errors: int,
    total: int,
    unique: int,
    fingerprint_digest: str,
    sources: dict[str, int],
    wall_time_ms: float,
) -> dict[str, Any]:
    """The terminating record: counts plus the order-independent digest."""
    summary: dict[str, Any] = {
        "ok": True,
        "op": SUMMARY_OP,
        "records": records,
        "errors": errors,
        "total": total,
        "unique": unique,
        "fingerprint_digest": fingerprint_digest,
        "sources": dict(sorted(sources.items())),
        "wall_time_ms": round(wall_time_ms, 3),
    }
    if request_id is not None:
        summary["id"] = request_id
    return summary


def sweep_partial(
    request_id: Any,
    fold: dict[str, Any],
    blob_hashes: Optional[list[str]],
    sources: dict[str, int],
    records: int,
    errors: int,
    failures: Optional[list[dict[str, Any]]] = None,
) -> dict[str, Any]:
    """One fold-mode aggregate record.

    ``fold`` is an ``EnvelopeAggregate.to_wire()`` document;
    ``blob_hashes`` carries one 64-hex-char fingerprint-blob hash per
    fresh result (~10× smaller than the envelopes they stand in for) so
    the coordinator can compute the set-equality ``fold_digest`` without
    ever seeing an envelope.  The cluster front passes ``None`` for the
    record it forwards to the client -- the key is omitted there, and
    the digest in the summary is the client-facing proof.
    """
    record: dict[str, Any] = {
        "ok": True,
        "op": PARTIAL_OP,
        "records": records,
        "errors": errors,
        "sources": dict(sorted(sources.items())),
        "fold": fold,
    }
    if blob_hashes is not None:
        record["blob_hashes"] = list(blob_hashes)
    if failures:
        record["failures"] = list(failures)
    if request_id is not None:
        record["id"] = request_id
    return record


def sweep_summary(
    request_id: Any,
    records: int,
    errors: int,
    total: int,
    unique: int,
    mode: str,
    tiers: dict[str, int],
    wall_time_ms: float,
    fingerprint_digest: Optional[str] = None,
    fold_digest: Optional[str] = None,
    partitions: Optional[list[dict[str, Any]]] = None,
    repartitioned: Optional[int] = None,
) -> dict[str, Any]:
    """The terminating record of a sweep.

    ``tiers`` counts completions per execution tier (``cache`` /
    ``store`` / ``batch`` / ``pool`` / ``serial``); when the cluster
    front answers, they are fleet-wide sums, so the batch-tier claim is
    observable on the wire.  Exactly one of ``fingerprint_digest``
    (stream mode -- bit-identical to a local ``BatchRunner.run``) and
    ``fold_digest`` (fold mode) is set.  ``partitions`` reports final
    per-shard accounting and ``repartitioned`` the number of specs moved
    to surviving workers after a mid-sweep death.
    """
    tiers = dict(sorted(tiers.items()))
    summary: dict[str, Any] = {
        "ok": True,
        "op": SUMMARY_OP,
        "records": records,
        "errors": errors,
        "total": total,
        "unique": unique,
        "mode": mode,
        "tiers": tiers,
        "sources": tiers,
        "wall_time_ms": round(wall_time_ms, 3),
    }
    if fingerprint_digest is not None:
        summary["fingerprint_digest"] = fingerprint_digest
    if fold_digest is not None:
        summary["fold_digest"] = fold_digest
    if partitions is not None:
        summary["partitions"] = partitions
    if repartitioned is not None:
        summary["repartitioned"] = repartitioned
    if request_id is not None:
        summary["id"] = request_id
    return summary
